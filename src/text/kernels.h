// Vectorized similarity kernels over columnar data (ISSUE 7 tentpole).
//
// Every kernel here has a retained scalar reference (text/similarity.h,
// embed/vector_ops.h, ml/mlp.cc) and a differential test
// (tests/text/kernels_differential_test.cc) proving agreement. The contract
// per kernel is either:
//
//   * BIT-EXACT — identical double arithmetic to the reference, same
//     operation order, same empty-input special cases. These kernels are
//     safe to wire into golden-pinned matcher paths. All set similarities,
//     the banded Levenshtein, Jaro/Jaro-Winkler/Monge-Elkan, the span
//     float ops, and the batched affine fall in this class.
//   * TOLERANCE — float re-association is the speedup (multi-accumulator
//     reductions), with a documented bound. Only DotBlocked is in this
//     class; it must NOT be wired into matcher feature paths.
//
// See docs/kernels.md for the layout, the tolerance policy, and the recipe
// for adding a kernel. tools/rlbench_lint.py's `kernels` rule bans map
// lookups and heap allocation inside kernels.cc loop bodies; keep new
// kernels allocation-free (stack buffers, caller-provided scratch).
#ifndef RLBENCH_SRC_TEXT_KERNELS_H_
#define RLBENCH_SRC_TEXT_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace rlbench::text::kernels {

// --- Sorted-set merge scans ----------------------------------------------
//
// Columnar token columns store sorted unique ids (uint32 ranks of the
// global hash vocabulary), q-gram columns store sorted unique uint64
// hashes. Because rank interning is a monotone bijection on the hashes,
// intersection counts over id spans equal TokenSet::IntersectionSize over
// the original hash sets — the similarity values are bit-identical.

/// |A∩B| of two sorted unique uint32 spans (two-pointer merge).
[[nodiscard]] size_t IntersectSortedU32(std::span<const uint32_t> a,
                                        std::span<const uint32_t> b);

/// |A∩B| of two sorted unique uint64 spans (two-pointer merge).
[[nodiscard]] size_t IntersectSortedU64(std::span<const uint64_t> a,
                                        std::span<const uint64_t> b);

// --- Set similarities from counts ----------------------------------------
//
// Exactly the arithmetic of text/similarity.cc, factored over
// (|A∩B|, |A|, |B|) so one merge scan feeds many similarities.

/// BIT-EXACT vs text::CosineSimilarity.
[[nodiscard]] double CosineFromCounts(size_t inter, size_t size_a,
                                      size_t size_b);
/// BIT-EXACT vs text::JaccardSimilarity.
[[nodiscard]] double JaccardFromCounts(size_t inter, size_t size_a,
                                       size_t size_b);
/// BIT-EXACT vs text::DiceSimilarity.
[[nodiscard]] double DiceFromCounts(size_t inter, size_t size_a,
                                    size_t size_b);
/// BIT-EXACT vs text::OverlapSimilarity.
[[nodiscard]] double OverlapFromCounts(size_t inter, size_t size_a,
                                       size_t size_b);
/// BIT-EXACT vs text::ContainmentSimilarity (directed |A∩B| / |A|).
[[nodiscard]] double ContainmentFromCounts(size_t inter, size_t size_a,
                                           size_t size_b);

/// The ESDE per-variant triple (Cosine, Dice, Jaccard) from ONE merge scan;
/// the scalar path recomputes the intersection three times.
struct SetSims {
  double cosine = 0.0;
  double dice = 0.0;
  double jaccard = 0.0;
};

[[nodiscard]] SetSims SetFamilyFromCounts(size_t inter, size_t size_a,
                                          size_t size_b);
[[nodiscard]] SetSims SetFamilySortedU32(std::span<const uint32_t> a,
                                         std::span<const uint32_t> b);
[[nodiscard]] SetSims SetFamilySortedU64(std::span<const uint64_t> a,
                                         std::span<const uint64_t> b);

/// BIT-EXACT vs text::JaccardSimilarity over the equivalent token sets.
[[nodiscard]] double JaccardSortedU32(std::span<const uint32_t> a,
                                      std::span<const uint32_t> b);
[[nodiscard]] double OverlapSortedU32(std::span<const uint32_t> a,
                                      std::span<const uint32_t> b);
[[nodiscard]] double ContainmentSortedU32(std::span<const uint32_t> a,
                                          std::span<const uint32_t> b);

/// One (A, B) set pair of a batched sweep: raw pointers + lengths into the
/// columnar id pools (32 bytes, so a pair array streams well).
struct U32SetPair {
  const uint32_t* a = nullptr;
  const uint32_t* b = nullptr;
  uint32_t size_a = 0;
  uint32_t size_b = 0;
};

/// Batched Jaccard over sorted unique id spans: out[i] is BIT-EXACT equal
/// to JaccardSortedU32({pairs[i].a, pairs[i].size_a},
/// {pairs[i].b, pairs[i].size_b}). One call amortizes per-pair call
/// overhead across the sweep, and on AVX2 hosts small sets (the common
/// case for per-record token sets) take an all-lanes membership path
/// instead of the serial two-pointer merge; the intersection count is an
/// integer either way, so the double arithmetic is unchanged. Requires ids
/// < 0xFFFFFFFF (rank interning guarantees ranks are far below that; the
/// top id value is reserved as the SIMD sentinel). `out` must hold n
/// doubles.
void JaccardSortedU32Batch(const U32SetPair* pairs, size_t n, double* out);

// --- Edit distance with a banded early-exit buffer -----------------------

/// Levenshtein distance, EXACT (equal to text::LevenshteinDistance for all
/// inputs): common prefix/suffix stripping, then the Myers bit-parallel
/// scan when the shorter operand fits one 64-bit word (the Magellan path
/// truncates to 48 chars, so this is the hot case), else an Ukkonen band
/// of doubling half-width over stack buffers. Strings longer than
/// kLevenshteinStackCap after stripping fall back to the scalar reference.
[[nodiscard]] size_t LevenshteinBanded(std::string_view a, std::string_view b);

/// BIT-EXACT vs text::LevenshteinSimilarity (same normalisation formula
/// over the exact distance).
[[nodiscard]] double LevenshteinSimilarityBanded(std::string_view a,
                                                 std::string_view b);

/// Longest stripped operand the banded kernel handles on the stack.
inline constexpr size_t kLevenshteinStackCap = 128;

// --- Jaro family without per-pair allocation -----------------------------

/// BIT-EXACT vs text::JaroSimilarity. Uses uint64 match bitmasks instead of
/// two heap vector<bool>; strings longer than 64 bytes fall back to the
/// scalar reference (Magellan truncates to 48 chars, so the hot path never
/// allocates).
[[nodiscard]] double JaroKernel(std::string_view a, std::string_view b);

/// BIT-EXACT vs text::JaroWinklerSimilarity.
[[nodiscard]] double JaroWinklerKernel(std::string_view a, std::string_view b);

/// BIT-EXACT vs text::MongeElkanSimilarity over the same token lists.
/// Operates on string_view spans into the columnar token arena, so the
/// per-pair CapTokens copy of the row path disappears.
[[nodiscard]] double MongeElkanKernel(std::span<const std::string_view> a,
                                      std::span<const std::string_view> b);

// --- Attribute-value kernels over precomputed columns --------------------

/// BIT-EXACT vs text::NumericSimilarity(a, b) when (ok_*, x, y) were
/// produced by ParseNumeric on the raw values; the per-pair strtod parse is
/// hoisted to one parse per record at store-build time.
[[nodiscard]] double NumericFromParsed(bool ok_a, double x, bool ok_b,
                                       double y);

/// Parse helper matching text::NumericSimilarity's parse step (strip ASCII
/// whitespace, strtod over the full token, reject non-finite). Returns
/// false (and leaves *out untouched) when the value is not numeric.
[[nodiscard]] bool ParseNumeric(std::string_view value, double* out);

/// BIT-EXACT vs text::ExactMatchSimilarity when both views are the
/// lower-cased originals (the per-pair ToLowerAscii copies are hoisted to
/// store-build time).
[[nodiscard]] double ExactMatchLowered(std::string_view lowered_a,
                                       std::string_view lowered_b);

// --- Dense float kernels --------------------------------------------------

/// BIT-EXACT vs embed::Dot (single accumulator, ascending index).
[[nodiscard]] double DotSpan(std::span<const float> a,
                             std::span<const float> b);

/// TOLERANCE kernel: 4-accumulator re-associated dot. Relative error vs
/// DotSpan is bounded by ~|a|·eps·(Σ|a_i b_i| / |Σ a_i b_i|); the
/// differential test asserts 1e-6 relative on unit-scale inputs. Not for
/// matcher feature paths.
[[nodiscard]] double DotBlocked(std::span<const float> a,
                                std::span<const float> b);

/// BIT-EXACT vs embed::CosineSimilarity01 over equal vectors.
[[nodiscard]] double CosineSimilarity01Span(std::span<const float> a,
                                            std::span<const float> b);

/// BIT-EXACT vs embed::EuclideanSimilarity.
[[nodiscard]] double EuclideanSimilaritySpan(std::span<const float> a,
                                             std::span<const float> b);

/// BIT-EXACT vs embed::WassersteinSimilarity when fed coordinate-sorted
/// copies of the vectors (the per-pair sort is hoisted to store build).
[[nodiscard]] double WassersteinFromSorted(std::span<const float> sorted_a,
                                           std::span<const float> sorted_b);

// --- Batched affine (blocked matrix-vector) ------------------------------
//
// The MLP hot loop. Both kernels compute, for every unit i and batch row r,
//     out[i * batch + r] = bias[i] + Σ_j w[i * dim + j] · xt[j * batch + r]
// with j ascending and a single double accumulator per (i, r) — the exact
// accumulation order of Mlp::Forward's per-row loop, so batching across
// rows is BIT-EXACT vs per-row scoring. xt is the transposed input block
// (column-major: feature j contiguous across the batch), which is what lets
// the inner r-loop autovectorize.

/// Input block of floats (layer 1: scaled feature rows).
void BatchedAffineF32(const double* w, const double* bias, size_t units,
                      size_t dim, const float* xt, size_t batch, double* out);

/// Input block of doubles (hidden layers: activations).
void BatchedAffineF64(const double* w, const double* bias, size_t units,
                      size_t dim, const double* xt, size_t batch, double* out);

/// Two affines over ONE shared input block in a single pass (the highway
/// layer's transform gate and candidate both read the same activations, so
/// fusing them halves the panel traffic). Each output is BIT-EXACT equal to
/// the corresponding BatchedAffineF64 call. out_a and out_b must not alias
/// each other, the inputs, or the weights.
void DualBatchedAffineF64(const double* w_a, const double* bias_a,
                          const double* w_b, const double* bias_b,
                          size_t units, size_t dim, const double* xt,
                          size_t batch, double* out_a, double* out_b);

}  // namespace rlbench::text::kernels

#endif  // RLBENCH_SRC_TEXT_KERNELS_H_
