#include "text/tfidf.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "text/normalize.h"
#include "text/similarity.h"

namespace rlbench::text {

void TfIdfModel::AddDocument(const std::vector<std::string>& tokens) {
  RLBENCH_CHECK_MSG(!finalized_,
                    "AddDocument after Finalize would corrupt IDF weights");
  std::unordered_set<std::string> distinct(tokens.begin(), tokens.end());
  for (const auto& token : distinct) ++document_frequency_[token];
  ++num_documents_;
}

void TfIdfModel::Finalize() { finalized_ = true; }

double TfIdfModel::Idf(const std::string& token) const {
  auto it = document_frequency_.find(token);
  size_t df = it == document_frequency_.end() ? 0 : it->second;
  return std::log(1.0 + static_cast<double>(num_documents_) /
                            (1.0 + static_cast<double>(df)));
}

namespace {

std::unordered_map<std::string, double> WeightVector(
    const TfIdfModel& model, const std::vector<std::string>& tokens) {
  std::unordered_map<std::string, double> tf;
  for (const auto& token : tokens) tf[token] += 1.0;
  for (auto& [token, weight] : tf) weight *= model.Idf(token);
  return tf;
}

double L2(const std::unordered_map<std::string, double>& weights) {
  double sum = 0.0;
  for (const auto& [token, weight] : weights) sum += weight * weight;
  return std::sqrt(sum);
}

}  // namespace

double TfIdfModel::WeightedCosine(const std::vector<std::string>& a,
                                  const std::vector<std::string>& b) const {
  if (a.empty() || b.empty()) return 0.0;
  auto wa = WeightVector(*this, a);
  auto wb = WeightVector(*this, b);
  double dot = 0.0;
  for (const auto& [token, weight] : wa) {
    auto it = wb.find(token);
    if (it != wb.end()) dot += weight * it->second;
  }
  double denom = L2(wa) * L2(wb);
  return denom > 0.0 ? dot / denom : 0.0;
}

double TfIdfModel::SoftTfIdf(const std::vector<std::string>& a,
                             const std::vector<std::string>& b,
                             double jw_threshold) const {
  if (a.empty() || b.empty()) return 0.0;
  auto wa = WeightVector(*this, a);
  auto wb = WeightVector(*this, b);
  double dot = 0.0;
  for (const auto& [token_a, weight_a] : wa) {
    // Best approximate counterpart in b.
    double best_sim = 0.0;
    double best_weight = 0.0;
    for (const auto& [token_b, weight_b] : wb) {
      double sim = token_a == token_b
                       ? 1.0
                       : JaroWinklerSimilarity(token_a, token_b);
      if (sim >= jw_threshold && sim > best_sim) {
        best_sim = sim;
        best_weight = weight_b;
      }
    }
    dot += weight_a * best_weight * best_sim;
  }
  double denom = L2(wa) * L2(wb);
  return denom > 0.0 ? std::min(1.0, dot / denom) : 0.0;
}

std::vector<std::string> TfIdfModel::Summarize(
    const std::vector<std::string>& tokens, size_t max_tokens) const {
  if (tokens.size() <= max_tokens) return tokens;

  // Term frequency within this token sequence.
  std::unordered_map<std::string, double> tf;
  for (const auto& token : tokens) tf[token] += 1.0;

  struct Scored {
    size_t position;
    double weight;
  };
  std::vector<Scored> scored;
  scored.reserve(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    double weight =
        IsStopWord(tokens[i]) ? -1.0 : tf[tokens[i]] * Idf(tokens[i]);
    scored.push_back({i, weight});
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.weight > b.weight;
                   });
  scored.resize(std::min(max_tokens, scored.size()));
  std::vector<size_t> keep;
  keep.reserve(scored.size());
  for (const auto& s : scored) keep.push_back(s.position);
  std::sort(keep.begin(), keep.end());

  std::vector<std::string> out;
  out.reserve(keep.size());
  for (size_t pos : keep) out.push_back(tokens[pos]);
  return out;
}

}  // namespace rlbench::text
