// String and token-set similarity library. These are the building blocks of
// the degree-of-linearity measure (Algorithm 1), the ESDE feature vectors
// (Algorithm 2), and the Magellan-style feature extractor.
//
// All similarities return values in [0, 1], with 1 meaning identical.
#ifndef RLBENCH_SRC_TEXT_SIMILARITY_H_
#define RLBENCH_SRC_TEXT_SIMILARITY_H_

#include <string_view>

#include "text/tokenizer.h"

namespace rlbench::text {

// --- Token-set similarities (schema-agnostic core of the paper) ----------

/// Cosine similarity |A∩B| / sqrt(|A|·|B|); 0 when either set is empty.
double CosineSimilarity(const TokenSet& a, const TokenSet& b);

/// Jaccard similarity |A∩B| / |A∪B|; 0 when both sets are empty.
double JaccardSimilarity(const TokenSet& a, const TokenSet& b);

/// Dice similarity 2|A∩B| / (|A|+|B|); 0 when both sets are empty.
double DiceSimilarity(const TokenSet& a, const TokenSet& b);

/// Overlap coefficient |A∩B| / min(|A|,|B|); 0 when either set is empty.
double OverlapSimilarity(const TokenSet& a, const TokenSet& b);

/// Directed containment |A∩B| / |A|; 0 when A is empty. Asymmetric: how
/// much of A is covered by B (scalar reference for the containment kernel).
double ContainmentSimilarity(const TokenSet& a, const TokenSet& b);

// --- Edit-based string similarities (Magellan feature family) ------------

/// Levenshtein distance between two byte strings.
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Normalised Levenshtein similarity: 1 - dist / max(|a|,|b|).
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Jaro similarity (matching windows + transpositions).
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity with standard prefix scale 0.1 (max prefix 4).
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Monge-Elkan: average over tokens of a of the best Jaro-Winkler match in
/// b's tokens. Asymmetric by definition; we return the symmetrised mean.
double MongeElkanSimilarity(const std::vector<std::string>& tokens_a,
                            const std::vector<std::string>& tokens_b);

/// Length of the common prefix divided by the shorter length.
double PrefixSimilarity(std::string_view a, std::string_view b);

/// Exact-match indicator after lower-casing: 1.0 or 0.0.
double ExactMatchSimilarity(std::string_view a, std::string_view b);

/// Similarity of two numeric strings: 1 - |x-y| / max(|x|,|y|); returns 0
/// when either string does not parse as a number, 1 when both are equal.
double NumericSimilarity(std::string_view a, std::string_view b);

// --- Alignment-based string similarities ---------------------------------

/// Needleman-Wunsch global alignment similarity: match +1, mismatch -1,
/// gap -0.5; normalised to [0, 1] by the longer length.
double NeedlemanWunschSimilarity(std::string_view a, std::string_view b);

/// Smith-Waterman local alignment similarity: best local alignment score
/// (match +1, mismatch -1, gap -0.5) normalised by the shorter length.
double SmithWatermanSimilarity(std::string_view a, std::string_view b);

}  // namespace rlbench::text

#endif  // RLBENCH_SRC_TEXT_SIMILARITY_H_
