#include "text/qgrams.h"

#include <algorithm>

#include "common/strings.h"

namespace rlbench::text {

std::vector<std::string> QGrams(std::string_view value, int q) {
  std::string lower = ToLowerAscii(value);
  std::vector<std::string> grams;
  if (lower.empty() || q <= 0) return grams;
  if (static_cast<int>(lower.size()) <= q) {
    grams.push_back(lower);
    return grams;
  }
  grams.reserve(lower.size() - q + 1);
  for (size_t i = 0; i + q <= lower.size(); ++i) {
    grams.push_back(lower.substr(i, q));
  }
  return grams;
}

TokenSet QGramSet(std::string_view value, int q) {
  auto grams = QGrams(value, q);
  // Salt each gram with its q so different gram orders never collide.
  for (auto& gram : grams) {
    gram.push_back('\x01');
    gram.push_back(static_cast<char>('0' + q));
  }
  return TokenSet(grams);
}

}  // namespace rlbench::text
