#include "text/similarity.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/check.h"
#include "common/strings.h"

namespace rlbench::text {

double CosineSimilarity(const TokenSet& a, const TokenSet& b) {
  if (a.empty() || b.empty()) return 0.0;
  double inter = static_cast<double>(a.IntersectionSize(b));
  double sim = inter / std::sqrt(static_cast<double>(a.size()) *
                                 static_cast<double>(b.size()));
  RLBENCH_DCHECK_PROB(sim);
  return sim;
}

double JaccardSimilarity(const TokenSet& a, const TokenSet& b) {
  if (a.empty() && b.empty()) return 0.0;
  double inter = static_cast<double>(a.IntersectionSize(b));
  double uni = static_cast<double>(a.size() + b.size()) - inter;
  double sim = uni <= 0.0 ? 0.0 : inter / uni;
  RLBENCH_DCHECK_PROB(sim);
  return sim;
}

double DiceSimilarity(const TokenSet& a, const TokenSet& b) {
  if (a.empty() && b.empty()) return 0.0;
  double inter = static_cast<double>(a.IntersectionSize(b));
  double sim = 2.0 * inter / static_cast<double>(a.size() + b.size());
  RLBENCH_DCHECK_PROB(sim);
  return sim;
}

double OverlapSimilarity(const TokenSet& a, const TokenSet& b) {
  if (a.empty() || b.empty()) return 0.0;
  double inter = static_cast<double>(a.IntersectionSize(b));
  return inter / static_cast<double>(std::min(a.size(), b.size()));
}

double ContainmentSimilarity(const TokenSet& a, const TokenSet& b) {
  if (a.empty()) return 0.0;
  double inter = static_cast<double>(a.IntersectionSize(b));
  double sim = inter / static_cast<double>(a.size());
  RLBENCH_DCHECK_PROB(sim);
  return sim;
}

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<size_t> prev(a.size() + 1);
  std::vector<size_t> curr(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) prev[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    curr[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
      curr[i] = std::min({prev[i] + 1, curr[i - 1] + 1, prev[i - 1] + cost});
    }
    std::swap(prev, curr);
  }
  return prev[a.size()];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t longest = std::max(a.size(), b.size());
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(longest);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;
  size_t window =
      std::max(a.size(), b.size()) / 2 == 0 ? 0
                                            : std::max(a.size(), b.size()) / 2 - 1;
  std::vector<bool> matched_a(a.size(), false);
  std::vector<bool> matched_b(b.size(), false);
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    size_t lo = i > window ? i - window : 0;
    size_t hi = std::min(b.size(), i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (!matched_b[j] && a[i] == b[j]) {
        matched_a[i] = matched_b[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;
  // Count transpositions among the matched characters in order.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!matched_a[i]) continue;
    while (!matched_b[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  double m = static_cast<double>(matches);
  double sim =
      (m / a.size() + m / b.size() + (m - transpositions / 2.0) / m) / 3.0;
  RLBENCH_DCHECK_PROB(sim);
  return sim;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  size_t limit = std::min({a.size(), b.size(), size_t{4}});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + prefix * 0.1 * (1.0 - jaro);
}

double MongeElkanSimilarity(const std::vector<std::string>& tokens_a,
                            const std::vector<std::string>& tokens_b) {
  if (tokens_a.empty() && tokens_b.empty()) return 1.0;
  if (tokens_a.empty() || tokens_b.empty()) return 0.0;
  auto directed = [](const std::vector<std::string>& from,
                     const std::vector<std::string>& to) {
    double total = 0.0;
    for (const auto& t : from) {
      double best = 0.0;
      for (const auto& u : to) {
        best = std::max(best, JaroWinklerSimilarity(t, u));
      }
      total += best;
    }
    return total / static_cast<double>(from.size());
  };
  return 0.5 * (directed(tokens_a, tokens_b) + directed(tokens_b, tokens_a));
}

double PrefixSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  size_t limit = std::min(a.size(), b.size());
  size_t prefix = 0;
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return static_cast<double>(prefix) / static_cast<double>(limit);
}

double ExactMatchSimilarity(std::string_view a, std::string_view b) {
  return ToLowerAscii(a) == ToLowerAscii(b) ? 1.0 : 0.0;
}

double NeedlemanWunschSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  constexpr double kMatch = 1.0;
  constexpr double kMismatch = -1.0;
  constexpr double kGap = -0.5;
  std::vector<double> prev(a.size() + 1);
  std::vector<double> curr(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) prev[i] = kGap * i;
  for (size_t j = 1; j <= b.size(); ++j) {
    curr[0] = kGap * j;
    for (size_t i = 1; i <= a.size(); ++i) {
      double diag = prev[i - 1] + (a[i - 1] == b[j - 1] ? kMatch : kMismatch);
      curr[i] = std::max({diag, prev[i] + kGap, curr[i - 1] + kGap});
    }
    std::swap(prev, curr);
  }
  double longest = static_cast<double>(std::max(a.size(), b.size()));
  // Scores lie in [kGap*(|a|+|b|), kMatch*min] — clamp the normalisation.
  return std::clamp(prev[a.size()] / longest, 0.0, 1.0);
}

double SmithWatermanSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  constexpr double kMatch = 1.0;
  constexpr double kMismatch = -1.0;
  constexpr double kGap = -0.5;
  std::vector<double> prev(a.size() + 1, 0.0);
  std::vector<double> curr(a.size() + 1, 0.0);
  double best = 0.0;
  for (size_t j = 1; j <= b.size(); ++j) {
    curr[0] = 0.0;
    for (size_t i = 1; i <= a.size(); ++i) {
      double diag = prev[i - 1] + (a[i - 1] == b[j - 1] ? kMatch : kMismatch);
      curr[i] = std::max({0.0, diag, prev[i] + kGap, curr[i - 1] + kGap});
      best = std::max(best, curr[i]);
    }
    std::swap(prev, curr);
  }
  double shortest = static_cast<double>(std::min(a.size(), b.size()));
  return std::clamp(best / shortest, 0.0, 1.0);
}

double NumericSimilarity(std::string_view a, std::string_view b) {
  auto parse = [](std::string_view s, double* out) {
    std::string buf(StripAscii(s));
    if (buf.empty()) return false;
    char* end = nullptr;
    *out = std::strtod(buf.c_str(), &end);
    return end == buf.c_str() + buf.size();
  };
  double x = 0.0;
  double y = 0.0;
  if (!parse(a, &x) || !parse(b, &y)) return 0.0;
  // strtod accepts "inf"/"nan" spellings; those are not numeric attribute
  // values, and letting them through would propagate NaN into the features.
  if (!std::isfinite(x) || !std::isfinite(y)) return 0.0;
  if (x == y) return 1.0;
  double denom = std::max(std::fabs(x), std::fabs(y));
  if (denom == 0.0) return 1.0;
  double sim = 1.0 - std::fabs(x - y) / denom;
  sim = std::max(0.0, sim);
  RLBENCH_DCHECK_PROB(sim);
  return sim;
}

}  // namespace rlbench::text
