// Corpus-level TF-IDF model. Used by the DITTO-style matcher to summarise
// long attribute values (keep the highest-TF-IDF non-stop-word tokens) and
// by the dynamic context encoder to weight token importance.
#ifndef RLBENCH_SRC_TEXT_TFIDF_H_
#define RLBENCH_SRC_TEXT_TFIDF_H_

#include <string>
#include <unordered_map>
#include <vector>

namespace rlbench::text {

/// \brief Document-frequency statistics over a token corpus.
///
/// Build once from all records of a task, then query IDF weights and
/// summarise token sequences.
class TfIdfModel {
 public:
  TfIdfModel() = default;

  /// Add one document's tokens (each distinct token counted once).
  void AddDocument(const std::vector<std::string>& tokens);

  /// Finish building; must be called before queries.
  void Finalize();

  size_t num_documents() const { return num_documents_; }

  /// Smoothed inverse document frequency: log(1 + N / (1 + df)).
  double Idf(const std::string& token) const;

  /// TF-IDF-weighted cosine similarity between two token multisets: each
  /// token weighted by tf * idf; 0 when either side is empty.
  double WeightedCosine(const std::vector<std::string>& a,
                        const std::vector<std::string>& b) const;

  /// Soft TF-IDF (Cohen et al.): like WeightedCosine but tokens also match
  /// approximately via Jaro-Winkler above `jw_threshold`, weighted by the
  /// string similarity.
  double SoftTfIdf(const std::vector<std::string>& a,
                   const std::vector<std::string>& b,
                   double jw_threshold = 0.9) const;

  /// Keep the max_tokens tokens with the highest TF-IDF weight (ties broken
  /// by original position), preserving the original order. Stop-words are
  /// dropped first, mirroring DITTO's summarisation of long values.
  std::vector<std::string> Summarize(const std::vector<std::string>& tokens,
                                     size_t max_tokens) const;

 private:
  std::unordered_map<std::string, size_t> document_frequency_;
  size_t num_documents_ = 0;
  bool finalized_ = false;
};

}  // namespace rlbench::text

#endif  // RLBENCH_SRC_TEXT_TFIDF_H_
