#include "datagen/task_builder.h"

#include <algorithm>
#include <unordered_set>

#include "common/rng.h"
#include "data/split.h"
#include "datagen/attr_select.h"

namespace rlbench::datagen {

data::MatchingTask BuildExistingBenchmark(const ExistingBenchmarkSpec& spec,
                                          double scale) {
  DomainGenerator generator(spec.domain, spec.seed);
  Rng rng(SplitMix64(spec.seed ^ 0xBEEFCAFEULL));

  size_t total = std::max<size_t>(
      25, static_cast<size_t>(static_cast<double>(spec.total_pairs) * scale));
  size_t positives = std::max<size_t>(
      5, static_cast<size_t>(static_cast<double>(spec.positives) * scale));
  positives = std::min(positives, total - 1);
  size_t negatives = total - positives;
  size_t hard = static_cast<size_t>(spec.hard_negative_fraction *
                                    static_cast<double>(negatives));
  size_t easy = negatives - hard;

  std::vector<int> attrs = ResolveAttrIndices(
      generator.schema(), spec.attr_indices, spec.num_attrs);
  data::Schema schema = SelectSchema(generator.schema(), attrs);
  data::Table left(spec.origin + "-1", schema);
  data::Table right(spec.origin + "-2", schema);

  double left_noise = 0.35 * spec.match_noise;

  // One canonical entity per positive pair; the left record is a lightly
  // corrupted rendering, the right record a fully corrupted duplicate.
  std::vector<data::Record> canonicals;
  canonicals.reserve(positives);
  std::vector<uint32_t> left_of_entity(positives);
  std::vector<uint32_t> right_of_entity(positives);
  std::vector<data::LabeledPair> pairs;
  pairs.reserve(total);

  for (size_t e = 0; e < positives; ++e) {
    data::Record canonical = generator.MakeFamily(1)[0];
    data::Record l = generator.MakeDuplicate(canonical, left_noise);
    data::Record r = generator.MakeDuplicate(canonical, spec.match_noise);
    SelectRecordColumns(&l, attrs);
    SelectRecordColumns(&r, attrs);
    l.id = spec.id + "-l" + std::to_string(e);
    r.id = spec.id + "-r" + std::to_string(e);
    left_of_entity[e] = static_cast<uint32_t>(left.size());
    right_of_entity[e] = static_cast<uint32_t>(right.size());
    left.Add(std::move(l));
    right.Add(std::move(r));
    canonicals.push_back(std::move(canonical));
    pairs.push_back({left_of_entity[e], right_of_entity[e], true});
  }

  // Hard negatives: sibling records of matched entities, inserted as
  // unmatched records and paired against the entity's other-side record.
  for (size_t h = 0; h < hard; ++h) {
    size_t e = h % positives;
    data::Record sibling = generator.MakeSibling(canonicals[e]);
    SelectRecordColumns(&sibling, attrs);
    if (h % 2 == 0) {
      // Sibling lives in the right table; pair with the entity's left record.
      sibling.id = spec.id + "-hr" + std::to_string(h);
      uint32_t idx = static_cast<uint32_t>(right.size());
      right.Add(std::move(sibling));
      pairs.push_back({left_of_entity[e], idx, false});
    } else {
      sibling.id = spec.id + "-hl" + std::to_string(h);
      uint32_t idx = static_cast<uint32_t>(left.size());
      left.Add(std::move(sibling));
      pairs.push_back({idx, right_of_entity[e], false});
    }
  }

  // Easy negatives: random cross-entity pairs, deduplicated.
  std::unordered_set<uint64_t> used;
  used.reserve(easy * 2);
  size_t added = 0;
  size_t guard = 0;
  while (added < easy && guard < easy * 50 + 1000) {
    ++guard;
    size_t i = rng.Index(positives);
    size_t j = rng.Index(positives);
    if (i == j) continue;
    uint64_t key = (static_cast<uint64_t>(left_of_entity[i]) << 32) |
                   right_of_entity[j];
    if (!used.insert(key).second) continue;
    pairs.push_back({left_of_entity[i], right_of_entity[j], false});
    ++added;
  }

  // Dirty transformation, applied to every record of both tables.
  if (spec.dirty) {
    Corruptor dirty(NoiseProfile{}, SplitMix64(spec.seed ^ 0xD127ULL));
    for (size_t i = 0; i < left.size(); ++i) {
      dirty.DirtyInject(&left.record(i), generator.title_attr());
    }
    for (size_t i = 0; i < right.size(); ++i) {
      dirty.DirtyInject(&right.record(i), generator.title_attr());
    }
  }

  data::MatchingTask task(spec.id, std::move(left), std::move(right));
  auto split =
      data::SplitPairs(pairs, data::SplitRatio{3, 1, 1}, spec.seed ^ 0x5EEDULL);
  task.set_train(std::move(split.train));
  task.set_valid(std::move(split.valid));
  task.set_test(std::move(split.test));
  return task;
}

}  // namespace rlbench::datagen
