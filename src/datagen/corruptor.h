// Record corruption model. Duplicates in the synthetic benchmarks are
// produced by corrupting a canonical record: typos, token drops,
// abbreviations, token reordering, missing values and numeric perturbation.
// The aggregate noise level is the primary knob controlling how hard the
// positive class is, which in turn drives the measured degree of linearity.
#ifndef RLBENCH_SRC_DATAGEN_CORRUPTOR_H_
#define RLBENCH_SRC_DATAGEN_CORRUPTOR_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "data/record.h"

namespace rlbench::datagen {

/// Per-operator corruption probabilities, all in [0, 1].
struct NoiseProfile {
  double typo_rate = 0.0;        // per token: random character edit
  double token_drop_rate = 0.0;  // per token: delete the token
  double abbrev_rate = 0.0;      // per token: truncate to a prefix
  double reorder_rate = 0.0;     // per value: shuffle adjacent tokens
  double value_drop_rate = 0.0;  // per attribute: blank the value
  double number_noise = 0.0;     // relative perturbation of numeric values
  double misplace_rate = 0.0;    // per attribute: move the value elsewhere

  /// Scale every rate by `factor` (clamped to [0,1] per rate).
  NoiseProfile Scaled(double factor) const;
};

/// \brief Applies a NoiseProfile to strings and records.
class Corruptor {
 public:
  Corruptor(NoiseProfile profile, uint64_t seed)
      : profile_(profile), rng_(seed) {}

  /// One random character edit: swap, delete, insert or replace.
  std::string TypoWord(const std::string& word);

  /// Truncate to a 1..4 character prefix (abbreviation with optional dot).
  std::string Abbreviate(const std::string& word);

  /// Apply token-level noise (typo / drop / abbreviate / reorder) to a
  /// whitespace-delimited value.
  std::string CorruptValue(const std::string& value);

  /// Perturb a numeric string by up to ±number_noise relative error.
  std::string CorruptNumber(const std::string& value);

  /// Corrupt every attribute of the record in place; `numeric_attr` flags
  /// attributes treated as numbers (perturbed instead of edited).
  void CorruptRecord(data::Record* record,
                     const std::vector<bool>& numeric_attr);

  /// The paper's dirty-dataset recipe: move each non-title value into the
  /// title attribute with 50% probability, blanking its own field.
  void DirtyInject(data::Record* record, size_t title_attr);

  Rng& rng() { return rng_; }

 private:
  NoiseProfile profile_;
  Rng rng_;
};

}  // namespace rlbench::datagen

#endif  // RLBENCH_SRC_DATAGEN_CORRUPTOR_H_
