// Attribute-subset selection shared by the benchmark builders: a spec may
// either take the first `num_attrs` attributes of its domain schema or
// name an explicit index subset (e.g. Amazon-Google uses title,
// manufacturer and price but not the model number column).
#ifndef RLBENCH_SRC_DATAGEN_ATTR_SELECT_H_
#define RLBENCH_SRC_DATAGEN_ATTR_SELECT_H_

#include <vector>

#include "data/record.h"

namespace rlbench::datagen {

/// Resolve a spec's attribute choice into concrete schema indices:
/// explicit indices win; otherwise the first `num_attrs` (0 = all).
std::vector<int> ResolveAttrIndices(const data::Schema& schema,
                                    const std::vector<int>& explicit_indices,
                                    int num_attrs);

/// Schema restricted to the given indices.
data::Schema SelectSchema(const data::Schema& schema,
                          const std::vector<int>& indices);

/// Rewrite the record's values to the given indices, in order.
void SelectRecordColumns(data::Record* record,
                         const std::vector<int>& indices);

}  // namespace rlbench::datagen

#endif  // RLBENCH_SRC_DATAGEN_ATTR_SELECT_H_
