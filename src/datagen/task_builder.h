// Builds a complete MatchingTask from an ExistingBenchmarkSpec: matched
// entities with corrupted duplicates, sibling-based hard negatives, random
// easy negatives, optional dirty injection, and a stratified 3:1:1 split.
//
// This reconstructs the *undocumented blocking output* of the established
// benchmarks: the paper's central criticism is that these candidate sets
// mix an arbitrary number of easy negatives with the hard ones, and the
// hard_negative_fraction knob makes that mixture explicit and controllable.
#ifndef RLBENCH_SRC_DATAGEN_TASK_BUILDER_H_
#define RLBENCH_SRC_DATAGEN_TASK_BUILDER_H_

#include "data/task.h"
#include "datagen/spec.h"

namespace rlbench::datagen {

/// Generate the benchmark described by `spec`, scaled by `scale` in (0, 1]
/// (pair counts are multiplied by it; floors keep tiny datasets usable).
data::MatchingTask BuildExistingBenchmark(const ExistingBenchmarkSpec& spec,
                                          double scale = 1.0);

}  // namespace rlbench::datagen

#endif  // RLBENCH_SRC_DATAGEN_TASK_BUILDER_H_
