#include "datagen/source_builder.h"

#include <algorithm>
#include <numeric>

#include "common/rng.h"
#include "datagen/attr_select.h"

namespace rlbench::datagen {

SourcePair BuildSourceDataset(const SourceDatasetSpec& spec, double scale) {
  DomainGenerator generator(spec.domain, spec.seed);
  Rng rng(SplitMix64(spec.seed ^ 0x50FAULL));

  size_t matches = std::max<size_t>(
      10, static_cast<size_t>(static_cast<double>(spec.matches) * scale));
  size_t d1_size = std::max(
      matches,
      static_cast<size_t>(static_cast<double>(spec.d1_size) * scale));
  size_t d2_size = std::max(
      matches,
      static_cast<size_t>(static_cast<double>(spec.d2_size) * scale));

  std::vector<int> attrs = ResolveAttrIndices(
      generator.schema(), spec.attr_indices, spec.num_attrs);
  data::Schema schema = SelectSchema(generator.schema(), attrs);

  double left_noise = 0.35 * spec.match_noise;

  struct Slot {
    data::Record record;
  };
  std::vector<data::Record> d1_records;
  std::vector<data::Record> d2_records;
  d1_records.reserve(d1_size);
  d2_records.reserve(d2_size);

  // Matched entities appear in both sources. A sibling_density share of
  // them are siblings of earlier matched entities: real catalogs contain
  // whole product lines / bibliographies of related entries, and those
  // confusable co-matched entities are what makes blocking (and the
  // resulting benchmark) hard even when every record has a counterpart.
  std::vector<data::Record> canonicals;
  canonicals.reserve(matches);
  for (size_t e = 0; e < matches; ++e) {
    data::Record canonical =
        (!canonicals.empty() && rng.Bernoulli(spec.sibling_density))
            ? generator.MakeSibling(canonicals[rng.Index(canonicals.size())])
            : generator.MakeFamily(1)[0];
    data::Record l = generator.MakeDuplicate(canonical, left_noise);
    data::Record r = generator.MakeDuplicate(canonical, spec.match_noise);
    SelectRecordColumns(&l, attrs);
    SelectRecordColumns(&r, attrs);
    d1_records.push_back(std::move(l));
    d2_records.push_back(std::move(r));
    canonicals.push_back(std::move(canonical));
  }

  // Fill each source to size: a sibling_density share of the filler records
  // are siblings of matched entities; the rest are fresh entities.
  auto fill = [&](std::vector<data::Record>* records, size_t target) {
    while (records->size() < target) {
      data::Record record;
      if (!canonicals.empty() && rng.Bernoulli(spec.sibling_density)) {
        record = generator.MakeSibling(canonicals[rng.Index(canonicals.size())]);
      } else {
        record = generator.MakeFamily(1)[0];
      }
      SelectRecordColumns(&record, attrs);
      records->push_back(std::move(record));
    }
  };
  fill(&d1_records, d1_size);
  fill(&d2_records, d2_size);

  // Shuffle so matched records are not all at the front, and rebuild the
  // ground-truth index mapping.
  std::vector<size_t> perm1(d1_records.size());
  std::vector<size_t> perm2(d2_records.size());
  std::iota(perm1.begin(), perm1.end(), size_t{0});
  std::iota(perm2.begin(), perm2.end(), size_t{0});
  rng.Shuffle(&perm1);
  rng.Shuffle(&perm2);
  std::vector<uint32_t> position1(d1_records.size());
  std::vector<uint32_t> position2(d2_records.size());
  for (size_t i = 0; i < perm1.size(); ++i) {
    position1[perm1[i]] = static_cast<uint32_t>(i);
  }
  for (size_t i = 0; i < perm2.size(); ++i) {
    position2[perm2[i]] = static_cast<uint32_t>(i);
  }

  SourcePair out;
  out.d1 = data::Table(spec.d1_name, schema);
  out.d2 = data::Table(spec.d2_name, schema);
  out.d1.Reserve(d1_records.size());
  out.d2.Reserve(d2_records.size());
  for (size_t i = 0; i < perm1.size(); ++i) {
    data::Record record = std::move(d1_records[perm1[i]]);
    record.id = spec.d1_name + std::to_string(i);
    out.d1.Add(std::move(record));
  }
  for (size_t i = 0; i < perm2.size(); ++i) {
    data::Record record = std::move(d2_records[perm2[i]]);
    record.id = spec.d2_name + std::to_string(i);
    out.d2.Add(std::move(record));
  }
  out.matches.reserve(matches);
  for (size_t e = 0; e < matches; ++e) {
    out.matches.emplace_back(position1[e], position2[e]);
  }
  return out;
}

}  // namespace rlbench::datagen
