// Benchmark specifications: the knobs that define one synthetic benchmark.
//
// Existing benchmarks (Table III) are specified by their labelled-pair
// counts plus a difficulty profile; source datasets (Table V) are specified
// by their record counts and ground-truth size, and get their candidate
// pairs later from blocking (Section VI).
#ifndef RLBENCH_SRC_DATAGEN_SPEC_H_
#define RLBENCH_SRC_DATAGEN_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/domain.h"

namespace rlbench::datagen {

/// \brief Spec of one established benchmark (Table III row).
struct ExistingBenchmarkSpec {
  std::string id;      // e.g. "Ds1"
  std::string origin;  // e.g. "DBLP-ACM"
  Domain domain = Domain::kBibliographic;
  /// Number of schema attributes used (prefix of the domain schema).
  int num_attrs = 0;
  /// Explicit attribute indices (overrides num_attrs when non-empty); lets
  /// a benchmark keep, say, title+brand+price but drop the model number.
  std::vector<int> attr_indices;
  /// Total labelled pairs across train+valid+test and the positives within.
  size_t total_pairs = 0;
  size_t positives = 0;
  /// Difficulty profile ------------------------------------------------
  /// Corruption level of the duplicate record (right side); the left side
  /// receives 0.35x of it. Drives how hard the positive class is.
  double match_noise = 0.2;
  /// Fraction of negative pairs drawn from sibling entities (hard
  /// negatives); the rest are random cross-entity pairs.
  double hard_negative_fraction = 0.3;
  /// Apply the paper's dirty transformation (values moved into title).
  bool dirty = false;
  uint64_t seed = 1;
};

/// \brief Spec of one raw dataset pair used to build new benchmarks
/// (Table V row), before blocking.
struct SourceDatasetSpec {
  std::string id;       // e.g. "Dn1"
  std::string d1_name;  // e.g. "Abt"
  std::string d2_name;  // e.g. "Buy"
  Domain domain = Domain::kProduct;
  int num_attrs = 0;
  /// Explicit attribute indices (overrides num_attrs when non-empty).
  std::vector<int> attr_indices;
  size_t d1_size = 0;
  size_t d2_size = 0;
  size_t matches = 0;
  double match_noise = 0.3;
  /// Fraction of the non-matched records generated as siblings of matched
  /// entities (the confusable near-neighbours blocking will surface).
  double sibling_density = 0.3;
  uint64_t seed = 1;
};

}  // namespace rlbench::datagen

#endif  // RLBENCH_SRC_DATAGEN_SPEC_H_
