// The benchmark catalog: specs for the 13 established DeepMatcher-era
// benchmarks analysed in Section V (Table III) and the 8 raw dataset pairs
// used to construct the new benchmarks in Section VI (Table V).
//
// Pair counts and imbalance ratios mirror the originals; the difficulty
// knobs (match_noise, hard_negative_fraction) are calibrated so that the
// measured degree of linearity, complexity and matcher gaps reproduce the
// paper's reported shape (which datasets are easy vs challenging).
#ifndef RLBENCH_SRC_DATAGEN_CATALOG_H_
#define RLBENCH_SRC_DATAGEN_CATALOG_H_

#include <vector>

#include "datagen/spec.h"

namespace rlbench::datagen {

/// Specs of Ds1..Ds7, Dd1..Dd4, Dt1, Dt2, in Table III order.
const std::vector<ExistingBenchmarkSpec>& ExistingBenchmarks();

/// Look up an existing benchmark spec by id ("Ds1".."Dt2"); nullptr if
/// unknown.
const ExistingBenchmarkSpec* FindExistingBenchmark(const std::string& id);

/// Specs of Dn1..Dn8, in Table V order.
const std::vector<SourceDatasetSpec>& SourceDatasets();

/// Look up a source dataset spec by id ("Dn1".."Dn8"); nullptr if unknown.
const SourceDatasetSpec* FindSourceDataset(const std::string& id);

}  // namespace rlbench::datagen

#endif  // RLBENCH_SRC_DATAGEN_CATALOG_H_
