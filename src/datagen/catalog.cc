#include "datagen/catalog.h"

namespace rlbench::datagen {

namespace {

std::vector<ExistingBenchmarkSpec> MakeExisting() {
  std::vector<ExistingBenchmarkSpec> specs;
  auto add = [&specs](std::string id, std::string origin, Domain domain,
                      int attrs, size_t pairs, size_t positives, double noise,
                      double hard, bool dirty, uint64_t seed) {
    ExistingBenchmarkSpec s;
    s.id = std::move(id);
    s.origin = std::move(origin);
    s.domain = domain;
    s.num_attrs = attrs;
    s.total_pairs = pairs;
    s.positives = positives;
    s.match_noise = noise;
    s.hard_negative_fraction = hard;
    s.dirty = dirty;
    s.seed = seed;
    specs.push_back(std::move(s));
  };

  // Structured. Pair counts and positives follow the original DeepMatcher
  // splits; noise/hard fractions are calibrated to the paper's difficulty
  // findings: easy = Ds1, Ds2, Ds5, Ds7; challenging = Ds4, Ds6.
  add("Ds1", "DBLP-ACM", Domain::kBibliographic, 4, 12363, 2220,
      /*noise=*/0.10, /*hard=*/0.25, false, 101);
  add("Ds2", "DBLP-GoogleScholar", Domain::kBibliographic, 4, 28707, 5347,
      0.18, 0.30, false, 102);
  add("Ds3", "iTunes-Amazon", Domain::kSong, 8, 539, 132, 0.30, 0.60, false,
      103);
  add("Ds4", "Walmart-Amazon", Domain::kProduct, 5, 10242, 962, 0.42, 0.55,
      false, 104);
  add("Ds5", "BeerAdvo-RateBeer", Domain::kBeer, 4, 450, 68, 0.22, 0.35,
      false, 105);
  add("Ds6", "Amazon-Google", Domain::kProduct, 3, 11460, 1167, 0.40, 0.60,
      false, 106);
  // Amazon-Google carries title, manufacturer and price (no model-number
  // column — the code only survives inside the title).
  specs.back().attr_indices = {0, 2, 4};
  add("Ds7", "Fodors-Zagats", Domain::kRestaurant, 6, 946, 110, 0.06, 0.15,
      false, 107);

  // Dirty: same sizes and seeds as their structured origins (the paper
  // derives Dd1..Dd4 from Ds1..Ds4 via the title-injection recipe).
  add("Dd1", "DBLP-ACM (dirty)", Domain::kBibliographic, 4, 12363, 2220,
      0.10, 0.25, true, 101);
  add("Dd2", "DBLP-GoogleScholar (dirty)", Domain::kBibliographic, 4, 28707,
      5347, 0.18, 0.30, true, 102);
  add("Dd3", "iTunes-Amazon (dirty)", Domain::kSong, 8, 539, 132, 0.30, 0.60,
      true, 103);
  add("Dd4", "Walmart-Amazon (dirty)", Domain::kProduct, 5, 10242, 962, 0.42,
      0.55, true, 104);

  // Textual.
  add("Dt1", "Abt-Buy", Domain::kProductText, 3, 9575, 1028, 0.50, 0.50,
      false, 110);
  add("Dt2", "Company", Domain::kCompanyText, 1, 112632, 28200, 0.55, 0.55,
      false, 111);
  return specs;
}

std::vector<SourceDatasetSpec> MakeSources() {
  std::vector<SourceDatasetSpec> specs;
  auto add = [&specs](std::string id, std::string d1, std::string d2,
                      Domain domain, int attrs, size_t n1, size_t n2,
                      size_t matches, double noise, double siblings,
                      uint64_t seed) {
    SourceDatasetSpec s;
    s.id = std::move(id);
    s.d1_name = std::move(d1);
    s.d2_name = std::move(d2);
    s.domain = domain;
    s.num_attrs = attrs;
    s.d1_size = n1;
    s.d2_size = n2;
    s.matches = matches;
    s.match_noise = noise;
    s.sibling_density = siblings;
    s.seed = seed;
    specs.push_back(std::move(s));
  };

  // Table V: sizes, attribute counts and |M| follow the paper; noise and
  // sibling density reproduce the reported difficulty ordering (easy =
  // Dn3, Dn8 bibliographic; challenging = Dn1, Dn2, Dn6, Dn7).
  // Every Abt record has a Buy counterpart (|M| = |D1| = |D2|), so the
  // candidate negatives can only come from confusable *other* products;
  // the high noise is what forces the blocker to a large K (the paper
  // tuned to K=31 at PC 0.899).
  add("Dn1", "Abt", "Buy", Domain::kProductText, 3, 1076, 1076, 1076, 0.78,
      0.35, 201);
  add("Dn2", "Amazon", "GP", Domain::kProduct, 4, 1354, 3039, 1104, 0.52,
      0.35, 202);
  // title, category, brand, price (the model number lives in the title).
  specs.back().attr_indices = {0, 1, 2, 4};
  add("Dn3", "DBLP", "ACM", Domain::kBibliographic, 4, 2616, 2294, 2224,
      0.08, 0.15, 203);
  // Dn4 is the outlier the paper discusses: noisy enough that blocking
  // needs many candidates, yet the surviving pairs are almost linearly
  // separable by plain token similarity.
  add("Dn4", "IMDB", "TMDB", Domain::kMovie, 5, 5118, 6056, 1968, 0.20, 0.30,
      204);
  add("Dn5", "IMDB", "TVDB", Domain::kMovie, 4, 5118, 7810, 1072, 0.40, 0.30,
      205);
  add("Dn6", "TMDB", "TVDB", Domain::kMovie, 6, 6056, 7810, 1095, 0.45, 0.35,
      206);
  add("Dn7", "Walmart", "Amazon", Domain::kProduct, 6, 2554, 22074, 853,
      0.42, 0.35, 207);
  add("Dn8", "DBLP", "GS", Domain::kBibliographic, 4, 2516, 61353, 2308,
      0.18, 0.30, 208);
  return specs;
}

}  // namespace

const std::vector<ExistingBenchmarkSpec>& ExistingBenchmarks() {
  static const std::vector<ExistingBenchmarkSpec> specs = MakeExisting();
  return specs;
}

const ExistingBenchmarkSpec* FindExistingBenchmark(const std::string& id) {
  for (const auto& spec : ExistingBenchmarks()) {
    if (spec.id == id) return &spec;
  }
  return nullptr;
}

const std::vector<SourceDatasetSpec>& SourceDatasets() {
  static const std::vector<SourceDatasetSpec> specs = MakeSources();
  return specs;
}

const SourceDatasetSpec* FindSourceDataset(const std::string& id) {
  for (const auto& spec : SourceDatasets()) {
    if (spec.id == id) return &spec;
  }
  return nullptr;
}

}  // namespace rlbench::datagen
