// Word pools backing the synthetic dataset generators. Each pool is a
// fixed, ordered array so that generation is deterministic under a seed.
#ifndef RLBENCH_SRC_DATAGEN_VOCAB_H_
#define RLBENCH_SRC_DATAGEN_VOCAB_H_

#include <span>
#include <string_view>

namespace rlbench::datagen {

/// Named vocabulary pools.
enum class Pool {
  kBrands,           // consumer electronics brands
  kProductNouns,     // camera, laptop, headphones, ...
  kProductQualifiers,// pro, ultra, compact, wireless, ...
  kColors,
  kFirstNames,
  kLastNames,
  kCities,
  kStreets,
  kResearchTopics,   // words appearing in paper titles
  kVenues,           // conference/journal name stems
  kMusicGenres,
  kSongWords,        // words appearing in song titles
  kMovieWords,       // words appearing in movie titles
  kFilmGenres,
  kBeerStyles,
  kBeerWords,
  kBreweryWords,
  kCuisines,
  kRestaurantWords,
  kIndustryWords,    // company descriptions
  kBusinessWords,    // generic corporate boilerplate
};

/// The words of a pool, in fixed order.
std::span<const std::string_view> Words(Pool pool);

/// Convenience: pool size.
size_t PoolSize(Pool pool);

}  // namespace rlbench::datagen

#endif  // RLBENCH_SRC_DATAGEN_VOCAB_H_
