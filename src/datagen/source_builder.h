// Builds the raw two-source datasets with complete ground truth used by the
// Section VI methodology (Table V): full record tables, no candidate pairs
// yet — those come from blocking.
#ifndef RLBENCH_SRC_DATAGEN_SOURCE_BUILDER_H_
#define RLBENCH_SRC_DATAGEN_SOURCE_BUILDER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "data/record.h"
#include "datagen/spec.h"

namespace rlbench::datagen {

/// \brief A dataset pair with its complete ground truth.
struct SourcePair {
  data::Table d1;
  data::Table d2;
  /// (index into d1, index into d2) of every true duplicate pair.
  std::vector<std::pair<uint32_t, uint32_t>> matches;
};

/// Generate the dataset pair described by `spec`, scaled by `scale`.
SourcePair BuildSourceDataset(const SourceDatasetSpec& spec,
                              double scale = 1.0);

}  // namespace rlbench::datagen

#endif  // RLBENCH_SRC_DATAGEN_SOURCE_BUILDER_H_
