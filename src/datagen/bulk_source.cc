#include "datagen/bulk_source.h"

#include <algorithm>
#include <string>

#include "common/check.h"
#include "datagen/attr_select.h"
#include "datagen/domain.h"

namespace rlbench::datagen {

namespace {

// Stream tags keeping every per-slot seed family disjoint. Streams are
// derived as SplitSeed(SplitSeed(spec.seed, tag), slot), so no tag may
// repeat.
constexpr uint64_t kPermD1Tag = 0xA1;
constexpr uint64_t kPermD2Tag = 0xA2;
constexpr uint64_t kCanonicalTag = 0xC1;
constexpr uint64_t kDupTag[2] = {0xD1, 0xD2};
constexpr uint64_t kFillerTag[2] = {0xF1, 0xF2};

// Sibling chains regenerate their base canonical recursively; the chain
// length is geometric in sibling_density (expected < 2 links at the default
// 0.3), but a hard cap keeps the worst case O(1) per record.
constexpr int kMaxSiblingDepth = 16;

}  // namespace

BulkSourceGenerator::BulkSourceGenerator(const SourceDatasetSpec& spec,
                                         double scale)
    : spec_(spec),
      perm1_(1, 0),  // re-seated below once the sizes are known
      perm2_(1, 0) {
  // Same floors as BuildSourceDataset: at least 10 matches, and each side
  // at least as large as the match count.
  matches_ = std::max<uint64_t>(
      10, static_cast<uint64_t>(static_cast<double>(spec.matches) * scale));
  d1_size_ = std::max<uint64_t>(
      matches_,
      static_cast<uint64_t>(static_cast<double>(spec.d1_size) * scale));
  d2_size_ = std::max<uint64_t>(
      matches_,
      static_cast<uint64_t>(static_cast<double>(spec.d2_size) * scale));
  DomainGenerator probe(spec.domain, spec.seed);
  attrs_ = ResolveAttrIndices(probe.schema(), spec.attr_indices,
                              spec.num_attrs);
  schema_ = SelectSchema(probe.schema(), attrs_);
  left_noise_ = 0.35 * spec.match_noise;
  perm1_ = FeistelPermutation(d1_size_, SplitSeed(spec.seed, kPermD1Tag));
  perm2_ = FeistelPermutation(d2_size_, SplitSeed(spec.seed, kPermD2Tag));
}

data::Record BulkSourceGenerator::CanonicalOf(uint64_t entity,
                                              int depth) const {
  Rng rng(SplitSeed(SplitSeed(spec_.seed, kCanonicalTag), entity));
  // Draw order is part of the format: sibling decision, then base pick,
  // then the generator seed fork. Reordering would change every dataset.
  bool sibling = entity > 0 && depth < kMaxSiblingDepth &&
                 rng.Bernoulli(spec_.sibling_density);
  uint64_t base = sibling ? rng.Index(static_cast<size_t>(entity)) : 0;
  DomainGenerator generator(spec_.domain, rng.Fork());
  if (sibling) {
    return generator.MakeSibling(CanonicalOf(base, depth + 1));
  }
  return generator.MakeFamily(1)[0];
}

data::Record BulkSourceGenerator::SlotRecord(size_t side,
                                             uint64_t slot) const {
  RLBENCH_DCHECK_INDEX(side, 2);
  data::Record record;
  if (slot < matches_) {
    data::Record canonical = CanonicalOf(slot, 0);
    DomainGenerator generator(
        spec_.domain, SplitSeed(SplitSeed(spec_.seed, kDupTag[side]), slot));
    record = generator.MakeDuplicate(
        canonical, side == kD1 ? left_noise_ : spec_.match_noise);
  } else {
    Rng rng(SplitSeed(SplitSeed(spec_.seed, kFillerTag[side]), slot));
    bool sibling = matches_ > 0 && rng.Bernoulli(spec_.sibling_density);
    uint64_t base = sibling ? rng.Index(static_cast<size_t>(matches_)) : 0;
    DomainGenerator generator(spec_.domain, rng.Fork());
    record = sibling ? generator.MakeSibling(CanonicalOf(base, 0))
                     : generator.MakeFamily(1)[0];
  }
  SelectRecordColumns(&record, attrs_);
  return record;
}

data::Record BulkSourceGenerator::RecordAt(size_t side,
                                           uint64_t position) const {
  const FeistelPermutation& perm = side == kD1 ? perm1_ : perm2_;
  RLBENCH_CHECK_LT(position, perm.size());
  data::Record record = SlotRecord(side, perm.Forward(position));
  record.id = (side == kD1 ? spec_.d1_name : spec_.d2_name) +
              std::to_string(position);
  return record;
}

void BulkSourceGenerator::StreamRecords(
    size_t side, uint64_t begin, uint64_t end,
    const std::function<void(uint64_t, data::Record)>& emit) const {
  RLBENCH_CHECK_LE(begin, end);
  RLBENCH_CHECK_LE(end, size(side));
  for (uint64_t position = begin; position < end; ++position) {
    emit(position, RecordAt(side, position));
  }
}

std::pair<uint64_t, uint64_t> BulkSourceGenerator::MatchPositions(
    uint64_t entity) const {
  RLBENCH_CHECK_LT(entity, matches_);
  return {perm1_.Inverse(entity), perm2_.Inverse(entity)};
}

SourcePair BulkSourceGenerator::Materialize() const {
  SourcePair out;
  out.d1 = data::Table(spec_.d1_name, schema_);
  out.d2 = data::Table(spec_.d2_name, schema_);
  out.d1.Reserve(static_cast<size_t>(d1_size_));
  out.d2.Reserve(static_cast<size_t>(d2_size_));
  StreamRecords(kD1, 0, d1_size_, [&](uint64_t, data::Record record) {
    out.d1.Add(std::move(record));
  });
  StreamRecords(kD2, 0, d2_size_, [&](uint64_t, data::Record record) {
    out.d2.Add(std::move(record));
  });
  out.matches.reserve(static_cast<size_t>(matches_));
  for (uint64_t e = 0; e < matches_; ++e) {
    auto [p1, p2] = MatchPositions(e);
    out.matches.emplace_back(static_cast<uint32_t>(p1),
                             static_cast<uint32_t>(p2));
  }
  return out;
}

}  // namespace rlbench::datagen
