#include "datagen/corruptor.h"

#include <algorithm>
#include <cstdlib>

#include "common/strings.h"

namespace rlbench::datagen {

NoiseProfile NoiseProfile::Scaled(double factor) const {
  auto clamp01 = [](double x) { return std::clamp(x, 0.0, 1.0); };
  NoiseProfile out;
  out.typo_rate = clamp01(typo_rate * factor);
  out.token_drop_rate = clamp01(token_drop_rate * factor);
  out.abbrev_rate = clamp01(abbrev_rate * factor);
  out.reorder_rate = clamp01(reorder_rate * factor);
  out.value_drop_rate = clamp01(value_drop_rate * factor);
  out.number_noise = clamp01(number_noise * factor);
  out.misplace_rate = clamp01(misplace_rate * factor);
  return out;
}

std::string Corruptor::TypoWord(const std::string& word) {
  if (word.size() < 2) return word;
  std::string out = word;
  size_t pos = rng_.Index(out.size());
  switch (rng_.UniformInt(0, 3)) {
    case 0:  // swap adjacent
      if (pos + 1 < out.size()) std::swap(out[pos], out[pos + 1]);
      break;
    case 1:  // delete
      out.erase(pos, 1);
      break;
    case 2:  // insert a nearby letter
      out.insert(out.begin() + pos,
                 static_cast<char>('a' + rng_.UniformInt(0, 25)));
      break;
    default:  // replace
      out[pos] = static_cast<char>('a' + rng_.UniformInt(0, 25));
  }
  return out;
}

std::string Corruptor::Abbreviate(const std::string& word) {
  if (word.size() <= 2) return word;
  size_t keep = static_cast<size_t>(rng_.UniformInt(1, 3));
  std::string out = word.substr(0, keep);
  if (rng_.Bernoulli(0.5)) out.push_back('.');
  return out;
}

std::string Corruptor::CorruptValue(const std::string& value) {
  auto tokens = SplitAny(value, " ");
  std::vector<std::string> kept;
  kept.reserve(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    auto& token = tokens[i];
    // A drop may never empty the whole value: keep the last token when
    // nothing has survived yet.
    bool last_chance = kept.empty() && i + 1 == tokens.size();
    if (!last_chance && tokens.size() > 1 &&
        rng_.Bernoulli(profile_.token_drop_rate)) {
      continue;
    }
    if (rng_.Bernoulli(profile_.abbrev_rate)) {
      kept.push_back(Abbreviate(token));
    } else if (rng_.Bernoulli(profile_.typo_rate)) {
      kept.push_back(TypoWord(token));
    } else {
      kept.push_back(std::move(token));
    }
  }
  if (kept.size() > 1 && rng_.Bernoulli(profile_.reorder_rate)) {
    size_t i = rng_.Index(kept.size() - 1);
    std::swap(kept[i], kept[i + 1]);
  }
  return Join(kept, " ");
}

std::string Corruptor::CorruptNumber(const std::string& value) {
  if (profile_.number_noise <= 0.0 || value.empty()) return value;
  char* end = nullptr;
  double x = std::strtod(value.c_str(), &end);
  if (end != value.c_str() + value.size()) return value;
  double factor = 1.0 + rng_.Uniform(-profile_.number_noise,
                                     profile_.number_noise);
  double y = x * factor;
  // Preserve integer formatting for integer inputs.
  if (value.find('.') == std::string::npos) {
    return std::to_string(static_cast<long long>(y + 0.5));
  }
  return FormatDouble(y, 2);
}

void Corruptor::CorruptRecord(data::Record* record,
                              const std::vector<bool>& numeric_attr) {
  for (size_t a = 0; a < record->values.size(); ++a) {
    std::string& value = record->values[a];
    if (value.empty()) continue;
    if (rng_.Bernoulli(profile_.value_drop_rate)) {
      value.clear();
      continue;
    }
    bool numeric = a < numeric_attr.size() && numeric_attr[a];
    value = numeric ? CorruptNumber(value) : CorruptValue(value);
  }
  // Misplacement: the record keeps the information but in the wrong field,
  // which breaks schema-aware features while leaving schema-agnostic ones
  // intact (the realistic flaw of the noisy product benchmarks).
  if (profile_.misplace_rate > 0.0 && record->values.size() > 1) {
    for (size_t a = 1; a < record->values.size(); ++a) {
      if (record->values[a].empty()) continue;
      if (!rng_.Bernoulli(profile_.misplace_rate)) continue;
      size_t target = rng_.Index(record->values.size());
      if (target == a) target = 0;
      std::string& destination = record->values[target];
      if (!destination.empty()) destination.push_back(' ');
      destination.append(record->values[a]);
      record->values[a].clear();
    }
  }
}

void Corruptor::DirtyInject(data::Record* record, size_t title_attr) {
  for (size_t a = 0; a < record->values.size(); ++a) {
    if (a == title_attr || record->values[a].empty()) continue;
    if (rng_.Bernoulli(0.5)) {
      std::string& title = record->values[title_attr];
      if (!title.empty()) title.push_back(' ');
      title.append(record->values[a]);
      record->values[a].clear();
    }
  }
}

}  // namespace rlbench::datagen
