#include "datagen/vocab.h"

#include <array>

namespace rlbench::datagen {

namespace {

using sv = std::string_view;

constexpr std::array<sv, 40> kBrandsArr = {
    "acme",     "zenix",    "nordwave", "apexon",  "lumina",   "vertex",
    "solara",   "quantix",  "helio",    "pinnacle", "orbitek",  "stellar",
    "cascade",  "fusionix", "polaris",  "meridian", "aurora",   "titanex",
    "novacore", "ecliptic", "summit",   "radiant",  "kinetik",  "maxtron",
    "veloce",   "argon",    "cryon",    "duplex",   "electra",  "fornax",
    "gravix",   "hydron",   "ionix",    "jetstream", "krypton", "lyra",
    "magnus",   "nimbus",   "octave",   "protonix"};

constexpr std::array<sv, 40> kProductNounsArr = {
    "laptop",     "monitor",    "keyboard",  "mouse",      "headphones",
    "speaker",    "camera",     "printer",   "router",     "tablet",
    "smartphone", "charger",    "projector", "microphone", "webcam",
    "scanner",    "drive",      "adapter",   "dock",       "headset",
    "turntable",  "amplifier",  "receiver",  "subwoofer",  "soundbar",
    "television", "drone",      "tripod",    "lens",       "flash",
    "console",    "controller", "earbuds",   "smartwatch", "thermostat",
    "doorbell",   "vacuum",     "blender",   "toaster",    "dishwasher"};

constexpr std::array<sv, 36> kProductQualifiersArr = {
    "pro",      "ultra",     "compact",  "wireless", "portable", "premium",
    "deluxe",   "slim",      "advanced", "digital",  "smart",    "classic",
    "elite",    "essential", "extreme",  "gaming",   "hd",       "max",
    "mini",     "plus",      "rugged",   "silent",   "turbo",    "universal",
    "vintage",  "waterproof", "ergonomic", "foldable", "hybrid",  "modular",
    "precision", "quickcharge", "retina", "stereo",   "touch",    "zoom"};

constexpr std::array<sv, 20> kColorsArr = {
    "black",  "white", "silver", "gray",   "blue",   "red",    "green",
    "gold",   "rose",  "navy",   "teal",   "purple", "orange", "yellow",
    "bronze", "copper", "ivory", "charcoal", "crimson", "slate"};

constexpr std::array<sv, 64> kFirstNamesArr = {
    "james",   "mary",    "robert",  "patricia", "john",    "jennifer",
    "michael", "linda",   "david",   "elizabeth", "william", "barbara",
    "richard", "susan",   "joseph",  "jessica",  "thomas",  "sarah",
    "charles", "karen",   "chris",   "lisa",     "daniel",  "nancy",
    "matthew", "betty",   "anthony", "sandra",   "mark",    "margaret",
    "donald",  "ashley",  "steven",  "kimberly", "andrew",  "emily",
    "paul",    "donna",   "joshua",  "michelle", "kenneth", "carol",
    "kevin",   "amanda",  "brian",   "melissa",  "george",  "deborah",
    "timothy", "stephanie", "ronald", "rebecca", "edward",  "sharon",
    "jason",   "laura",   "jeffrey", "cynthia",  "ryan",    "kathleen",
    "jacob",   "amy",     "gary",    "angela"};

constexpr std::array<sv, 80> kLastNamesArr = {
    "smith",    "johnson",  "williams", "brown",    "jones",    "garcia",
    "miller",   "davis",    "rodriguez", "martinez", "hernandez", "lopez",
    "gonzalez", "wilson",   "anderson", "thomas",   "taylor",   "moore",
    "jackson",  "martin",   "lee",      "perez",    "thompson", "white",
    "harris",   "sanchez",  "clark",    "ramirez",  "lewis",    "robinson",
    "walker",   "young",    "allen",    "king",     "wright",   "scott",
    "torres",   "nguyen",   "hill",     "flores",   "green",    "adams",
    "nelson",   "baker",    "hall",     "rivera",   "campbell", "mitchell",
    "carter",   "roberts",  "gomez",    "phillips", "evans",    "turner",
    "diaz",     "parker",   "cruz",     "edwards",  "collins",  "reyes",
    "stewart",  "morris",   "morales",  "murphy",   "cook",     "rogers",
    "gutierrez", "ortiz",   "morgan",   "cooper",   "peterson", "bailey",
    "reed",     "kelly",    "howard",   "ramos",    "kim",      "cox",
    "ward",     "richardson"};

constexpr std::array<sv, 48> kCitiesArr = {
    "springfield", "riverton",  "lakewood",  "fairview",  "georgetown",
    "clinton",     "salem",     "madison",   "franklin",  "arlington",
    "ashland",     "burlington", "clayton",  "dayton",    "dover",
    "easton",      "florence",  "greenville", "hamilton", "jackson",
    "kingston",    "lebanon",   "manchester", "milton",   "newport",
    "oakland",     "oxford",    "princeton", "quincy",    "richmond",
    "shelby",      "trenton",   "union",     "vernon",    "warren",
    "winchester",  "york",      "bristol",   "camden",    "dalton",
    "elgin",       "fremont",   "glendale",  "hudson",    "irving",
    "jasper",      "keller",    "laredo"};

constexpr std::array<sv, 32> kStreetsArr = {
    "main",     "oak",     "pine",    "maple",   "cedar",    "elm",
    "washington", "lake",  "hill",    "park",    "walnut",   "spring",
    "north",    "ridge",   "church",  "willow",  "mill",     "sunset",
    "railroad", "jefferson", "center", "highland", "forest",  "jackson",
    "river",    "meadow",  "broad",   "chestnut", "franklin", "grove",
    "prospect", "vine"};

constexpr std::array<sv, 56> kResearchTopicsArr = {
    "efficient",  "scalable",   "distributed", "parallel",  "adaptive",
    "incremental", "approximate", "robust",    "optimal",   "dynamic",
    "query",      "processing", "optimization", "indexing", "clustering",
    "classification", "learning", "mining",    "streaming", "caching",
    "database",   "systems",    "networks",    "graphs",    "transactions",
    "storage",    "memory",     "retrieval",   "integration", "resolution",
    "matching",   "blocking",   "linkage",     "entity",    "schema",
    "semantic",   "probabilistic", "relational", "temporal", "spatial",
    "algorithms", "models",     "frameworks",  "architectures", "evaluation",
    "analysis",   "estimation", "detection",   "recognition", "prediction",
    "compression", "encryption", "verification", "benchmarking", "sampling",
    "partitioning"};

constexpr std::array<sv, 24> kVenuesArr = {
    "sigmod",  "vldb",   "icde",   "kdd",    "www",    "cikm",
    "edbt",    "icdm",   "sdm",    "pods",   "wsdm",   "recsys",
    "ijcai",   "aaai",   "acl",    "emnlp",  "nips",   "icml",
    "tods",    "tkde",   "pvldb",  "dmkd",   "jmlr",   "tois"};

constexpr std::array<sv, 20> kMusicGenresArr = {
    "rock",  "pop",   "jazz",    "blues",     "country", "folk",
    "metal", "indie", "hip hop", "electronic", "classical", "reggae",
    "soul",  "funk",  "punk",    "ambient",   "house",   "techno",
    "latin", "gospel"};

constexpr std::array<sv, 48> kSongWordsArr = {
    "love",    "night",  "heart",   "dream",   "fire",    "rain",
    "summer",  "dance",  "light",   "shadow",  "river",   "home",
    "road",    "sky",    "star",    "moon",    "sun",     "storm",
    "wild",    "free",   "golden",  "broken",  "silent",  "lonely",
    "forever", "tonight", "yesterday", "tomorrow", "midnight", "morning",
    "ocean",   "mountain", "desert", "city",    "train",   "highway",
    "angel",   "devil",  "ghost",   "soul",    "crazy",   "sweet",
    "blue",    "black",  "red",     "white",   "young",   "old"};

constexpr std::array<sv, 48> kMovieWordsArr = {
    "dark",    "last",     "first",   "lost",     "hidden",  "secret",
    "final",   "eternal",  "broken",  "silent",   "deadly",  "perfect",
    "american", "royal",   "golden",  "crimson",  "midnight", "savage",
    "knight",  "king",     "queen",   "empire",   "legacy",  "destiny",
    "shadow",  "storm",    "fire",    "ice",      "blood",   "steel",
    "city",    "island",   "forest",  "ocean",    "mountain", "desert",
    "return",  "rise",     "fall",    "escape",   "revenge", "redemption",
    "chronicles", "legend", "tales",  "journey",  "quest",   "awakening"};

constexpr std::array<sv, 20> kFilmGenresArr = {
    "action",    "drama",    "comedy",  "thriller", "horror",
    "romance",   "sci-fi",   "fantasy", "mystery",  "crime",
    "adventure", "animation", "documentary", "western", "musical",
    "war",       "biography", "family",  "sport",    "noir"};

constexpr std::array<sv, 24> kBeerStylesArr = {
    "ipa",        "pale ale",  "stout",     "porter",    "lager",
    "pilsner",    "wheat",     "saison",    "amber ale", "brown ale",
    "double ipa", "hefeweizen", "kolsch",   "bock",      "dunkel",
    "tripel",     "dubbel",    "gose",      "barleywine", "cream ale",
    "red ale",    "black ipa", "session ipa", "imperial stout"};

constexpr std::array<sv, 36> kBeerWordsArr = {
    "hoppy",    "golden",  "midnight", "raging",   "lazy",     "dancing",
    "crooked",  "rusty",   "wandering", "howling", "sleepy",   "thirsty",
    "grumpy",   "mighty",  "velvet",   "smoky",    "foggy",    "sunny",
    "frosty",   "barrel",  "harvest",  "summit",   "canyon",   "prairie",
    "timber",   "copper",  "granite",  "cobble",   "anchor",   "compass",
    "lantern",  "hammer",  "saddle",   "whistle",  "raven",    "badger"};

constexpr std::array<sv, 28> kBreweryWordsArr = {
    "brewing",  "brewery",  "brewhouse", "ales",     "craft",
    "creek",    "valley",   "mountain",  "river",    "harbor",
    "bridge",   "mill",     "forge",     "works",    "collective",
    "company",  "brothers", "union",     "district", "point",
    "springs",  "hollow",   "ridge",     "grove",    "junction",
    "crossing", "landing",  "station"};

constexpr std::array<sv, 24> kCuisinesArr = {
    "italian", "french",  "chinese",  "japanese", "mexican",  "thai",
    "indian",  "greek",   "spanish",  "korean",   "vietnamese", "american",
    "cajun",   "seafood", "steakhouse", "barbecue", "mediterranean", "fusion",
    "vegetarian", "sushi", "pizzeria", "bistro",   "diner",    "cafe"};

constexpr std::array<sv, 36> kRestaurantWordsArr = {
    "golden",  "blue",    "silver",  "royal",   "little",  "grand",
    "olive",   "garden",  "corner",  "harbor",  "sunset",  "spice",
    "pearl",   "lotus",   "bamboo",  "dragon",  "palace",  "villa",
    "terrace", "grill",   "kitchen", "table",   "house",   "tavern",
    "cellar",  "garden",  "fountain", "plaza",  "market",  "lantern",
    "fig",     "sage",    "basil",   "saffron", "juniper", "clover"};

constexpr std::array<sv, 40> kIndustryWordsArr = {
    "software",     "analytics",  "logistics",  "consulting", "insurance",
    "manufacturing", "biotech",   "pharmaceutical", "telecommunications",
    "automotive",   "aerospace",  "agriculture", "construction", "energy",
    "financial",    "healthcare", "hospitality", "media",      "mining",
    "publishing",   "retail",     "robotics",    "security",   "semiconductor",
    "shipping",     "textile",    "tourism",     "transport",  "utilities",
    "wholesale",    "ecommerce",  "gaming",      "education",  "recycling",
    "renewable",    "chemicals",  "furniture",   "packaging",  "brewing",
    "catering"};

constexpr std::array<sv, 48> kBusinessWordsArr = {
    "solutions",   "services",  "technologies", "systems",   "group",
    "holdings",    "partners",  "ventures",     "industries", "enterprises",
    "global",      "international", "worldwide", "leading",  "innovative",
    "trusted",     "established", "headquartered", "founded", "provider",
    "platform",    "customers",  "clients",     "markets",   "products",
    "operations",  "offices",    "employees",   "teams",     "delivering",
    "quality",     "sustainable", "certified",  "award",     "winning",
    "mission",     "vision",     "growth",      "strategy",  "excellence",
    "network",     "portfolio",  "supply",      "chain",     "research",
    "development", "engineering", "digital"};

}  // namespace

std::span<const std::string_view> Words(Pool pool) {
  switch (pool) {
    case Pool::kBrands:
      return kBrandsArr;
    case Pool::kProductNouns:
      return kProductNounsArr;
    case Pool::kProductQualifiers:
      return kProductQualifiersArr;
    case Pool::kColors:
      return kColorsArr;
    case Pool::kFirstNames:
      return kFirstNamesArr;
    case Pool::kLastNames:
      return kLastNamesArr;
    case Pool::kCities:
      return kCitiesArr;
    case Pool::kStreets:
      return kStreetsArr;
    case Pool::kResearchTopics:
      return kResearchTopicsArr;
    case Pool::kVenues:
      return kVenuesArr;
    case Pool::kMusicGenres:
      return kMusicGenresArr;
    case Pool::kSongWords:
      return kSongWordsArr;
    case Pool::kMovieWords:
      return kMovieWordsArr;
    case Pool::kFilmGenres:
      return kFilmGenresArr;
    case Pool::kBeerStyles:
      return kBeerStylesArr;
    case Pool::kBeerWords:
      return kBeerWordsArr;
    case Pool::kBreweryWords:
      return kBreweryWordsArr;
    case Pool::kCuisines:
      return kCuisinesArr;
    case Pool::kRestaurantWords:
      return kRestaurantWordsArr;
    case Pool::kIndustryWords:
      return kIndustryWordsArr;
    case Pool::kBusinessWords:
      return kBusinessWordsArr;
  }
  return {};
}

size_t PoolSize(Pool pool) { return Words(pool).size(); }

}  // namespace rlbench::datagen
