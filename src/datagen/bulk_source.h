// Streaming, random-access dataset generation for the out-of-core bulk
// pipeline (ISSUE 8 tentpole).
//
// The legacy BuildSourceDataset materializes both tables before a global
// shuffle, so a 10M-record source costs 10M Records of RAM before the first
// consumer sees a byte. BulkSourceGenerator removes that wall: every record
// is a pure function of (spec, side, position), so callers can stream a
// source of any size in O(1) memory, jump to any record directly, and
// recover the ground truth without an index:
//
//   * The output-order "shuffle" is a seeded FeistelPermutation (common/rng)
//     per side: position p holds generation slot perm.Forward(p), and entity
//     e sits at position perm.Inverse(e) — no permutation vector exists.
//   * Slots below `matches` are duplicates of canonical entity `slot` (left
//     side at 0.35x noise, right side at full noise, mirroring the legacy
//     builder's asymmetry); higher slots are filler records, a
//     sibling_density share of them siblings of matched entities.
//   * Every stochastic decision draws from SplitSeed streams keyed by
//     (spec.seed, stream, slot), never from a shared sequential Rng, so
//     records are identical whether generated first, last, in parallel
//     chunks, or twice.
//
// Materialize() collects the stream into the familiar SourcePair; the
// bit-identity contract (streamed records == materialized records at every
// position, for any chunking) is tested in tests/bulk/bulk_source_test.cc.
#ifndef RLBENCH_SRC_DATAGEN_BULK_SOURCE_H_
#define RLBENCH_SRC_DATAGEN_BULK_SOURCE_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "data/record.h"
#include "datagen/source_builder.h"
#include "datagen/spec.h"

namespace rlbench::datagen {

class BulkSourceGenerator {
 public:
  static constexpr size_t kD1 = 0;
  static constexpr size_t kD2 = 1;

  explicit BulkSourceGenerator(const SourceDatasetSpec& spec,
                               double scale = 1.0);

  const data::Schema& schema() const { return schema_; }
  uint64_t num_matches() const { return matches_; }
  uint64_t size(size_t side) const { return side == kD1 ? d1_size_ : d2_size_; }
  const SourceDatasetSpec& spec() const { return spec_; }

  /// The record at output position `position` of the given side, with its
  /// final id ("<table name><position>"). Pure: any two calls with equal
  /// arguments return equal records.
  data::Record RecordAt(size_t side, uint64_t position) const;

  /// Emit positions [begin, end) of one side in order. Equivalent to
  /// calling RecordAt per position; the loop form exists so per-record
  /// generator state never escapes and callers cannot accidentally
  /// materialize.
  void StreamRecords(size_t side, uint64_t begin, uint64_t end,
                     const std::function<void(uint64_t position,
                                              data::Record record)>& emit)
      const;

  /// Output positions (d1, d2) of ground-truth match `entity`,
  /// entity < num_matches().
  std::pair<uint64_t, uint64_t> MatchPositions(uint64_t entity) const;

  /// Collect the full stream into the legacy SourcePair shape (tables plus
  /// ground truth). The materialized counterpart of the streaming path —
  /// intended for small N (tests, reference comparisons).
  SourcePair Materialize() const;

 private:
  data::Record CanonicalOf(uint64_t entity, int depth) const;
  data::Record SlotRecord(size_t side, uint64_t slot) const;

  SourceDatasetSpec spec_;
  uint64_t matches_ = 0;
  uint64_t d1_size_ = 0;
  uint64_t d2_size_ = 0;
  std::vector<int> attrs_;
  data::Schema schema_;
  double left_noise_ = 0.0;
  FeistelPermutation perm1_;
  FeistelPermutation perm2_;
};

}  // namespace rlbench::datagen

#endif  // RLBENCH_SRC_DATAGEN_BULK_SOURCE_H_
