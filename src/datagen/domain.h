// Per-domain synthetic entity generation.
//
// Every benchmark dataset in the paper comes from one of a handful of
// domains (bibliographic, consumer products, restaurants, songs, beers,
// movies, long-text company / product profiles). This module generates
// canonical entities per domain, organised in *families* of near-identical
// siblings (the raw material for hard negatives), and produces corrupted
// duplicates of a canonical record at a controllable noise level (the raw
// material for hard positives).
#ifndef RLBENCH_SRC_DATAGEN_DOMAIN_H_
#define RLBENCH_SRC_DATAGEN_DOMAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/record.h"
#include "datagen/corruptor.h"
#include "datagen/vocab.h"

namespace rlbench::datagen {

/// Entity domains; one per benchmark origin in Tables III and V.
enum class Domain {
  kBibliographic,  // DBLP-ACM, DBLP-GoogleScholar
  kProduct,        // Walmart-Amazon, Amazon-Google
  kRestaurant,     // Fodors-Zagats
  kSong,           // iTunes-Amazon
  kBeer,           // BeerAdvo-RateBeer
  kMovie,          // IMDB / TMDB / TVDB pairs
  kCompanyText,    // Company (textual)
  kProductText,    // Abt-Buy (textual)
};

const char* DomainName(Domain domain);

/// \brief Deterministic generator of canonical entities for one domain.
class DomainGenerator {
 public:
  DomainGenerator(Domain domain, uint64_t seed);

  Domain domain() const { return domain_; }

  /// Full schema of the domain (specs may truncate to fewer attributes).
  const data::Schema& schema() const { return schema_; }

  /// Flags marking numeric attributes (perturbed, not edited, by noise).
  const std::vector<bool>& numeric_attrs() const { return numeric_attrs_; }

  /// Index of the title-like attribute (target of dirty injection).
  size_t title_attr() const { return 0; }

  /// Generate a family of `size` related canonical records: index 0 is the
  /// base entity, the rest are siblings sharing most surface tokens but
  /// differing in a critical detail (model code, track, year, ...).
  std::vector<data::Record> MakeFamily(size_t size);

  /// Generate one sibling of an existing canonical record: a different
  /// real-world entity that shares most surface tokens with it (hard
  /// negative material).
  data::Record MakeSibling(const data::Record& base);

  /// Produce a duplicate of the canonical record as the other source would
  /// describe it, with the given noise level in [0, 1]. Noise 0 yields a
  /// (near-)verbatim copy; 1 yields heavily corrupted records.
  data::Record MakeDuplicate(const data::Record& canonical, double noise);

 private:
  std::string Pick(Pool pool);
  std::vector<std::string> PickDistinct(Pool pool, size_t n);
  std::string PersonName();
  std::string Digits(size_t n);
  std::string ModelCode();
  /// Variant of `code` with one digit changed (sibling model numbers).
  std::string TweakCode(const std::string& code);

  data::Record MakeProduct();
  data::Record MakeProductSibling(const data::Record& base);
  data::Record MakeBibliographic();
  data::Record MakeBibliographicSibling(const data::Record& base);
  data::Record MakeRestaurant();
  data::Record MakeRestaurantSibling(const data::Record& base);
  data::Record MakeSong();
  data::Record MakeSongSibling(const data::Record& base);
  data::Record MakeBeer();
  data::Record MakeBeerSibling(const data::Record& base);
  data::Record MakeMovie();
  data::Record MakeMovieSibling(const data::Record& base);
  data::Record MakeCompanyText();
  data::Record MakeCompanyTextSibling(const data::Record& base);
  data::Record MakeProductText();
  data::Record MakeProductTextSibling(const data::Record& base);

  /// Duplicate generation for the long-text domains: token resampling that
  /// keeps the identifying core and a noise-controlled share of the rest.
  std::string ResampleText(const std::string& text, size_t core_tokens,
                           double noise, Pool filler_a, Pool filler_b);

  Domain domain_;
  data::Schema schema_;
  std::vector<bool> numeric_attrs_;
  Rng rng_;
};

/// Noise profile used by MakeDuplicate for token-attribute domains; exposed
/// for tests and for the ablation benches.
NoiseProfile DuplicateNoiseProfile(double noise);

}  // namespace rlbench::datagen

#endif  // RLBENCH_SRC_DATAGEN_DOMAIN_H_
