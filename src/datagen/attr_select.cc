#include "datagen/attr_select.h"

#include <algorithm>

namespace rlbench::datagen {

std::vector<int> ResolveAttrIndices(const data::Schema& schema,
                                    const std::vector<int>& explicit_indices,
                                    int num_attrs) {
  if (!explicit_indices.empty()) return explicit_indices;
  size_t count = num_attrs > 0
                     ? std::min<size_t>(num_attrs, schema.num_attributes())
                     : schema.num_attributes();
  std::vector<int> indices(count);
  for (size_t i = 0; i < count; ++i) indices[i] = static_cast<int>(i);
  return indices;
}

data::Schema SelectSchema(const data::Schema& schema,
                          const std::vector<int>& indices) {
  std::vector<std::string> attrs;
  attrs.reserve(indices.size());
  for (int i : indices) attrs.push_back(schema.attribute(i));
  return data::Schema(std::move(attrs));
}

void SelectRecordColumns(data::Record* record,
                         const std::vector<int>& indices) {
  std::vector<std::string> values;
  values.reserve(indices.size());
  for (int i : indices) values.push_back(std::move(record->values[i]));
  record->values = std::move(values);
}

}  // namespace rlbench::datagen
