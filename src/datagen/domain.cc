#include "datagen/domain.h"

#include <algorithm>

#include "common/strings.h"
#include "text/tokenizer.h"

namespace rlbench::datagen {

const char* DomainName(Domain domain) {
  switch (domain) {
    case Domain::kBibliographic:
      return "bibliographic";
    case Domain::kProduct:
      return "product";
    case Domain::kRestaurant:
      return "restaurant";
    case Domain::kSong:
      return "song";
    case Domain::kBeer:
      return "beer";
    case Domain::kMovie:
      return "movie";
    case Domain::kCompanyText:
      return "company_text";
    case Domain::kProductText:
      return "product_text";
  }
  return "unknown";
}

namespace {

data::Schema SchemaFor(Domain domain) {
  switch (domain) {
    case Domain::kBibliographic:
      return data::Schema({"title", "authors", "venue", "year"});
    case Domain::kProduct:
      return data::Schema(
          {"title", "category", "brand", "modelno", "price", "color"});
    case Domain::kRestaurant:
      return data::Schema({"name", "addr", "city", "phone", "type", "class"});
    case Domain::kSong:
      return data::Schema({"song_name", "artist_name", "album_name", "genre",
                           "price", "copyright", "time", "released"});
    case Domain::kBeer:
      return data::Schema(
          {"beer_name", "brew_factory_name", "style", "abv"});
    case Domain::kMovie:
      return data::Schema(
          {"title", "director", "actors", "year", "genre", "duration"});
    case Domain::kCompanyText:
      return data::Schema({"content"});
    case Domain::kProductText:
      return data::Schema({"name", "description", "price"});
  }
  return data::Schema();
}

std::vector<bool> NumericAttrsFor(Domain domain) {
  switch (domain) {
    case Domain::kBibliographic:
      return {false, false, false, true};
    case Domain::kProduct:
      return {false, false, false, false, true, false};
    case Domain::kRestaurant:
      return {false, false, false, false, false, true};
    case Domain::kSong:
      return {false, false, false, false, true, true, false, false};
    case Domain::kBeer:
      return {false, false, false, true};
    case Domain::kMovie:
      return {false, false, false, true, false, true};
    case Domain::kCompanyText:
      return {false};
    case Domain::kProductText:
      return {false, false, true};
  }
  return {};
}

}  // namespace

NoiseProfile DuplicateNoiseProfile(double noise) {
  NoiseProfile profile;
  profile.typo_rate = 0.25 * noise;
  profile.token_drop_rate = 0.20 * noise;
  profile.abbrev_rate = 0.15 * noise;
  profile.reorder_rate = 0.30 * noise;
  profile.value_drop_rate = 0.25 * noise;
  profile.number_noise = 0.20 * noise;
  profile.misplace_rate = 0.15 * noise;
  return profile;
}

DomainGenerator::DomainGenerator(Domain domain, uint64_t seed)
    : domain_(domain),
      schema_(SchemaFor(domain)),
      numeric_attrs_(NumericAttrsFor(domain)),
      rng_(seed) {}

std::string DomainGenerator::Pick(Pool pool) {
  auto words = Words(pool);
  return std::string(words[rng_.Index(words.size())]);
}

std::vector<std::string> DomainGenerator::PickDistinct(Pool pool, size_t n) {
  auto words = Words(pool);
  auto indices = rng_.SampleIndices(words.size(), n);
  std::vector<std::string> out;
  out.reserve(indices.size());
  for (size_t i : indices) out.emplace_back(words[i]);
  return out;
}

std::string DomainGenerator::PersonName() {
  return Pick(Pool::kFirstNames) + " " + Pick(Pool::kLastNames);
}

std::string DomainGenerator::Digits(size_t n) {
  std::string out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<char>('0' + rng_.UniformInt(0, 9)));
  }
  return out;
}

std::string DomainGenerator::ModelCode() {
  std::string out;
  out.push_back(static_cast<char>('a' + rng_.UniformInt(0, 25)));
  out.push_back(static_cast<char>('a' + rng_.UniformInt(0, 25)));
  out.append(Digits(3));
  return out;
}

std::string DomainGenerator::TweakCode(const std::string& code) {
  std::string out = code;
  // Change exactly one digit so sibling codes stay q-gram-similar.
  std::vector<size_t> digit_positions;
  for (size_t i = 0; i < out.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(out[i]))) {
      digit_positions.push_back(i);
    }
  }
  if (digit_positions.empty()) return out + "2";
  size_t pos = digit_positions[rng_.Index(digit_positions.size())];
  char original = out[pos];
  char replacement = original;
  while (replacement == original) {
    replacement = static_cast<char>('0' + rng_.UniformInt(0, 9));
  }
  out[pos] = replacement;
  return out;
}

std::vector<data::Record> DomainGenerator::MakeFamily(size_t size) {
  std::vector<data::Record> family;
  family.reserve(size);
  data::Record base;
  switch (domain_) {
    case Domain::kProduct:
      base = MakeProduct();
      break;
    case Domain::kBibliographic:
      base = MakeBibliographic();
      break;
    case Domain::kRestaurant:
      base = MakeRestaurant();
      break;
    case Domain::kSong:
      base = MakeSong();
      break;
    case Domain::kBeer:
      base = MakeBeer();
      break;
    case Domain::kMovie:
      base = MakeMovie();
      break;
    case Domain::kCompanyText:
      base = MakeCompanyText();
      break;
    case Domain::kProductText:
      base = MakeProductText();
      break;
  }
  family.push_back(base);
  for (size_t i = 1; i < size; ++i) {
    family.push_back(MakeSibling(base));
  }
  return family;
}

data::Record DomainGenerator::MakeSibling(const data::Record& base) {
  switch (domain_) {
    case Domain::kProduct:
      return MakeProductSibling(base);
    case Domain::kBibliographic:
      return MakeBibliographicSibling(base);
    case Domain::kRestaurant:
      return MakeRestaurantSibling(base);
    case Domain::kSong:
      return MakeSongSibling(base);
    case Domain::kBeer:
      return MakeBeerSibling(base);
    case Domain::kMovie:
      return MakeMovieSibling(base);
    case Domain::kCompanyText:
      return MakeCompanyTextSibling(base);
    case Domain::kProductText:
      return MakeProductTextSibling(base);
  }
  return base;
}

// --- Product (title, category, brand, modelno, price) --------------------

data::Record DomainGenerator::MakeProduct() {
  data::Record r;
  std::string brand = Pick(Pool::kBrands);
  std::string noun = Pick(Pool::kProductNouns);
  std::string qualifier = Pick(Pool::kProductQualifiers);
  std::string code = ModelCode();
  double price = rng_.Uniform(15.0, 1500.0);
  r.values = {brand + " " + noun + " " + qualifier + " " + code,
              noun,
              brand,
              code,
              FormatDouble(price, 2),
              Pick(Pool::kColors)};
  return r;
}

data::Record DomainGenerator::MakeProductSibling(const data::Record& base) {
  data::Record r = base;
  // Same brand and product line; different model code, maybe a different
  // qualifier, and a nearby price.
  std::string code = TweakCode(base.values[3]);
  std::string qualifier = rng_.Bernoulli(0.5)
                              ? Pick(Pool::kProductQualifiers)
                              : std::string();
  auto tokens = SplitAny(base.values[0], " ");
  if (tokens.size() >= 4) {
    tokens[3] = code;
    if (!qualifier.empty()) tokens[2] = qualifier;
  }
  r.values[0] = Join(tokens, " ");
  r.values[3] = code;
  double price = std::max(5.0, std::stod(base.values[4]) *
                                   rng_.Uniform(0.8, 1.25));
  r.values[4] = FormatDouble(price, 2);
  return r;
}

// --- Bibliographic (title, authors, venue, year) --------------------------

data::Record DomainGenerator::MakeBibliographic() {
  data::Record r;
  size_t title_words = static_cast<size_t>(rng_.UniformInt(5, 9));
  r.values = {Join(PickDistinct(Pool::kResearchTopics, title_words), " "),
              "", Pick(Pool::kVenues),
              std::to_string(rng_.UniformInt(1995, 2023))};
  size_t authors = static_cast<size_t>(rng_.UniformInt(2, 4));
  std::vector<std::string> names;
  for (size_t i = 0; i < authors; ++i) names.push_back(PersonName());
  r.values[1] = Join(names, ", ");
  return r;
}

data::Record DomainGenerator::MakeBibliographicSibling(
    const data::Record& base) {
  data::Record r = base;
  // A related paper by an overlapping author group: shares most title
  // terms, same venue, a nearby year.
  auto title = SplitAny(base.values[0], " ");
  size_t replacements = 1 + rng_.Index(2);
  for (size_t i = 0; i < replacements && !title.empty(); ++i) {
    title[rng_.Index(title.size())] = Pick(Pool::kResearchTopics);
  }
  if (rng_.Bernoulli(0.3)) title.push_back("extended");
  r.values[0] = Join(title, " ");
  auto authors = SplitAny(base.values[1], ",");
  std::vector<std::string> kept;
  if (!authors.empty()) {
    kept.push_back(std::string(StripAscii(authors[0])));
  }
  kept.push_back(PersonName());
  r.values[1] = Join(kept, ", ");
  int year = std::stoi(base.values[3]) + static_cast<int>(rng_.UniformInt(-2, 2));
  r.values[3] = std::to_string(year);
  return r;
}

// --- Restaurant (name, addr, city, phone, type, class) --------------------

data::Record DomainGenerator::MakeRestaurant() {
  data::Record r;
  std::string name =
      Pick(Pool::kRestaurantWords) + " " + Pick(Pool::kRestaurantWords);
  std::string street = std::to_string(rng_.UniformInt(1, 999)) + " " +
                       Pick(Pool::kStreets) + " st";
  std::string phone =
      Digits(3) + "-" + Digits(3) + "-" + Digits(4);
  r.values = {name,
              street,
              Pick(Pool::kCities),
              phone,
              Pick(Pool::kCuisines),
              std::to_string(rng_.UniformInt(0, 15))};
  return r;
}

data::Record DomainGenerator::MakeRestaurantSibling(const data::Record& base) {
  data::Record r = MakeRestaurant();
  // Same city and cuisine, one shared name word: a nearby competitor.
  auto base_name = SplitAny(base.values[0], " ");
  auto name = SplitAny(r.values[0], " ");
  if (!base_name.empty() && !name.empty()) name[0] = base_name[0];
  r.values[0] = Join(name, " ");
  r.values[2] = base.values[2];
  r.values[4] = base.values[4];
  return r;
}

// --- Song (song, artist, album, genre, price, copyright, time, released) --

data::Record DomainGenerator::MakeSong() {
  data::Record r;
  size_t words = static_cast<size_t>(rng_.UniformInt(2, 4));
  std::string song = Join(PickDistinct(Pool::kSongWords, words), " ");
  std::string album = Join(PickDistinct(Pool::kSongWords, 2), " ");
  int year = static_cast<int>(rng_.UniformInt(1985, 2023));
  std::string time = std::to_string(rng_.UniformInt(2, 6)) + ":" + Digits(2);
  r.values = {song,
              PersonName(),
              album,
              Pick(Pool::kMusicGenres),
              rng_.Bernoulli(0.5) ? "0.99" : "1.29",
              std::to_string(year),
              time,
              std::to_string(year)};
  return r;
}

data::Record DomainGenerator::MakeSongSibling(const data::Record& base) {
  data::Record r = base;
  // Another track of the same album: only the song name and duration
  // differ, and the song name may still share a word.
  auto words = SplitAny(base.values[0], " ");
  size_t keep = words.empty() ? 0 : rng_.Index(2);  // keep at most one word
  std::vector<std::string> song;
  if (keep == 1 && !words.empty()) song.push_back(words[0]);
  size_t fresh = static_cast<size_t>(rng_.UniformInt(1, 3));
  for (auto& w : PickDistinct(Pool::kSongWords, fresh)) {
    song.push_back(std::move(w));
  }
  r.values[0] = Join(song, " ");
  r.values[6] = std::to_string(rng_.UniformInt(2, 6)) + ":" + Digits(2);
  return r;
}

// --- Beer (beer_name, brew_factory_name, style, abv) ----------------------

data::Record DomainGenerator::MakeBeer() {
  data::Record r;
  std::string style = Pick(Pool::kBeerStyles);
  std::string name = Pick(Pool::kBeerWords) + " " + Pick(Pool::kBeerWords) +
                     " " + style;
  std::string factory =
      Pick(Pool::kBeerWords) + " " + Pick(Pool::kBreweryWords) + " " +
      Pick(Pool::kBreweryWords);
  r.values = {name, factory, style, FormatDouble(rng_.Uniform(3.5, 12.0), 1)};
  return r;
}

data::Record DomainGenerator::MakeBeerSibling(const data::Record& base) {
  data::Record r = base;
  // Same brewery, a different beer in a related style.
  std::string style = Pick(Pool::kBeerStyles);
  r.values[0] = Pick(Pool::kBeerWords) + " " + Pick(Pool::kBeerWords) + " " +
                style;
  r.values[2] = style;
  r.values[3] = FormatDouble(rng_.Uniform(3.5, 12.0), 1);
  return r;
}

// --- Movie (title, director, actors, year, genre, duration) ---------------

data::Record DomainGenerator::MakeMovie() {
  data::Record r;
  size_t words = static_cast<size_t>(rng_.UniformInt(1, 3));
  std::string title = Join(PickDistinct(Pool::kMovieWords, words), " ");
  std::vector<std::string> actors;
  size_t cast = static_cast<size_t>(rng_.UniformInt(2, 3));
  for (size_t i = 0; i < cast; ++i) actors.push_back(PersonName());
  r.values = {title,
              PersonName(),
              Join(actors, ", "),
              std::to_string(rng_.UniformInt(1975, 2023)),
              Pick(Pool::kFilmGenres),
              std::to_string(rng_.UniformInt(80, 185))};
  return r;
}

data::Record DomainGenerator::MakeMovieSibling(const data::Record& base) {
  data::Record r = base;
  // The sequel: same franchise title plus a numeral, same director, a
  // partly recast ensemble, a few years later.
  static const char* kSequels[] = {"2", "ii", "3", "returns", "revenge"};
  r.values[0] = base.values[0] + " " +
                kSequels[rng_.Index(std::size(kSequels))];
  auto actors = SplitAny(base.values[2], ",");
  std::vector<std::string> cast;
  if (!actors.empty()) cast.push_back(std::string(StripAscii(actors[0])));
  cast.push_back(PersonName());
  r.values[2] = Join(cast, ", ");
  r.values[3] =
      std::to_string(std::stoi(base.values[3]) + rng_.UniformInt(2, 5));
  r.values[5] = std::to_string(rng_.UniformInt(80, 185));
  return r;
}

// --- Company text (content) ------------------------------------------------

data::Record DomainGenerator::MakeCompanyText() {
  data::Record r;
  std::string name = Pick(Pool::kLastNames) + " " + Pick(Pool::kBusinessWords);
  std::string industry = Pick(Pool::kIndustryWords);
  std::string city = Pick(Pool::kCities);
  std::string year = std::to_string(rng_.UniformInt(1950, 2015));

  // Core identifying tokens first, then boilerplate the duplicate can vary.
  std::vector<std::string> tokens = {name, industry, "founded", year,
                                     "headquartered", "in", city};
  size_t boilerplate = static_cast<size_t>(rng_.UniformInt(60, 120));
  for (size_t i = 0; i < boilerplate; ++i) {
    switch (rng_.UniformInt(0, 5)) {
      case 0:
        tokens.push_back(Pick(Pool::kIndustryWords));
        break;
      case 1:
        tokens.push_back(Pick(Pool::kCities));
        break;
      default:
        tokens.push_back(Pick(Pool::kBusinessWords));
    }
  }
  r.values = {Join(tokens, " ")};
  return r;
}

data::Record DomainGenerator::MakeCompanyTextSibling(const data::Record& base) {
  // A sibling branch of the same group: it shares the family name, the
  // industry and a large share of the corporate boilerplate, but has its
  // own second name word and founding year. Such profiles overlap heavily
  // in token space, which is what makes the textual benchmarks hard.
  auto tokens = SplitAny(base.values[0], " ");
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i == 1) {
      out.push_back(Pick(Pool::kBusinessWords));  // new name suffix
    } else if (i == 3) {
      out.push_back(std::to_string(rng_.UniformInt(1950, 2015)));
    } else if (i < 7 || rng_.Bernoulli(0.78)) {
      out.push_back(tokens[i]);  // shared core / boilerplate
    } else {
      switch (rng_.UniformInt(0, 5)) {
        case 0:
          out.push_back(Pick(Pool::kIndustryWords));
          break;
        case 1:
          out.push_back(Pick(Pool::kCities));
          break;
        default:
          out.push_back(Pick(Pool::kBusinessWords));
      }
    }
  }
  data::Record r = base;
  r.values[0] = Join(out, " ");
  return r;
}

// --- Product text (name, description, price) -------------------------------

data::Record DomainGenerator::MakeProductText() {
  data::Record r;
  std::string brand = Pick(Pool::kBrands);
  std::string noun = Pick(Pool::kProductNouns);
  std::string code = ModelCode();
  std::string name = brand + " " + noun + " " + code;

  std::vector<std::string> description = {brand, noun, code};
  size_t body = static_cast<size_t>(rng_.UniformInt(40, 80));
  for (size_t i = 0; i < body; ++i) {
    switch (rng_.UniformInt(0, 5)) {
      case 0:
        description.push_back(Pick(Pool::kColors));
        break;
      case 1:
        description.push_back(std::to_string(rng_.UniformInt(1, 4000)));
        break;
      case 2:
        description.push_back(Pick(Pool::kProductNouns));
        break;
      default:
        description.push_back(Pick(Pool::kProductQualifiers));
    }
  }
  r.values = {name, Join(description, " "),
              FormatDouble(rng_.Uniform(15.0, 1200.0), 2)};
  return r;
}

data::Record DomainGenerator::MakeProductTextSibling(const data::Record& base) {
  // The adjacent model of the same product line: identical brand and noun,
  // a one-digit-away code, and a description that reuses most of the base
  // model's spec boilerplate — only the identity tokens reliably separate
  // the two, which single-threshold token similarity cannot exploit.
  data::Record r = base;
  auto base_name = SplitAny(base.values[0], " ");
  std::string code = base_name.size() >= 3 ? TweakCode(base_name[2])
                                           : ModelCode();
  if (base_name.size() >= 3) {
    r.values[0] = base_name[0] + " " + base_name[1] + " " + code;
  }
  auto description = SplitAny(base.values[1], " ");
  std::vector<std::string> out;
  out.reserve(description.size());
  for (size_t i = 0; i < description.size(); ++i) {
    if (i == 2) {
      out.push_back(code);
    } else if (i < 3 || rng_.Bernoulli(0.88)) {
      out.push_back(description[i]);
    } else {
      switch (rng_.UniformInt(0, 3)) {
        case 0:
          out.push_back(Pick(Pool::kColors));
          break;
        case 1:
          out.push_back(std::to_string(rng_.UniformInt(1, 4000)));
          break;
        default:
          out.push_back(Pick(Pool::kProductQualifiers));
      }
    }
  }
  r.values[1] = Join(out, " ");
  double price =
      std::max(5.0, std::stod(base.values[2]) * rng_.Uniform(0.8, 1.25));
  r.values[2] = FormatDouble(price, 2);
  return r;
}

// --- Duplicates -------------------------------------------------------------

std::string DomainGenerator::ResampleText(const std::string& text,
                                          size_t core_tokens, double noise,
                                          Pool filler_a, Pool filler_b) {
  auto tokens = SplitAny(text, " ");
  std::vector<std::string> out;
  out.reserve(tokens.size());
  double keep_probability = 1.0 - 0.45 * noise;
  size_t dropped = 0;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i < core_tokens || rng_.Bernoulli(keep_probability)) {
      out.push_back(std::move(tokens[i]));
    } else {
      ++dropped;
    }
  }
  // Fresh boilerplate replaces what was dropped, so the two descriptions
  // have similar lengths but diverging tails.
  for (size_t i = 0; i < dropped; ++i) {
    out.push_back(rng_.Bernoulli(0.5)
                      ? std::string(Words(filler_a)[rng_.Index(
                            Words(filler_a).size())])
                      : std::string(Words(filler_b)[rng_.Index(
                            Words(filler_b).size())]));
  }
  return Join(out, " ");
}

data::Record DomainGenerator::MakeDuplicate(const data::Record& canonical,
                                            double noise) {
  data::Record dup = canonical;
  if (domain_ == Domain::kCompanyText) {
    dup.values[0] = ResampleText(canonical.values[0], 7, noise,
                                 Pool::kBusinessWords, Pool::kIndustryWords);
    return dup;
  }
  if (domain_ == Domain::kProductText) {
    dup.values[1] = ResampleText(canonical.values[1], 3, noise,
                                 Pool::kProductQualifiers, Pool::kColors);
    Corruptor corruptor(DuplicateNoiseProfile(noise), rng_.Fork());
    dup.values[0] = corruptor.CorruptValue(dup.values[0]);
    dup.values[2] = corruptor.CorruptNumber(dup.values[2]);
    return dup;
  }
  Corruptor corruptor(DuplicateNoiseProfile(noise), rng_.Fork());
  corruptor.CorruptRecord(&dup, numeric_attrs_);
  return dup;
}

}  // namespace rlbench::datagen
