// Small string helpers shared across modules.
#ifndef RLBENCH_SRC_COMMON_STRINGS_H_
#define RLBENCH_SRC_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rlbench {

/// Lower-case an ASCII string (bytes >= 0x80 pass through unchanged).
std::string ToLowerAscii(std::string_view s);

/// Split on any of the given delimiter characters; empty pieces are dropped.
std::vector<std::string> SplitAny(std::string_view s, std::string_view delims);

/// Join the pieces with the given separator.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// Strip leading and trailing ASCII whitespace.
std::string_view StripAscii(std::string_view s);

/// True if s starts with the given prefix.
bool StartsWith(std::string_view s, std::string_view prefix);

/// FNV-1a 64-bit hash of a byte string; stable across platforms and runs.
uint64_t Fnv1a64(std::string_view s);

/// Format a double with the given number of decimals (fixed notation).
std::string FormatDouble(double value, int decimals);

/// Format an integer with thousands separators, e.g. 12345 -> "12,345".
std::string FormatWithCommas(int64_t value);

}  // namespace rlbench

#endif  // RLBENCH_SRC_COMMON_STRINGS_H_
