// Wall-clock stopwatch for coarse experiment timing.
#ifndef RLBENCH_SRC_COMMON_STOPWATCH_H_
#define RLBENCH_SRC_COMMON_STOPWATCH_H_

#include <chrono>

namespace rlbench {

/// \brief Monotonic stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rlbench

#endif  // RLBENCH_SRC_COMMON_STOPWATCH_H_
