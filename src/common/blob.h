// Flat binary blob serialization for model snapshots. Fixed-width
// little-endian integers and IEEE-754 bit patterns make every round trip
// bit-exact: a double written by BlobWriter is reproduced by BlobReader
// with the identical bit pattern, which is what lets a served model score
// byte-identically to the matcher that trained it (the serving acceptance
// contract). Readers are bounds-checked and return Status instead of
// crashing, so a corrupt or truncated snapshot degrades into a load error.
#ifndef RLBENCH_SRC_COMMON_BLOB_H_
#define RLBENCH_SRC_COMMON_BLOB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace rlbench {

/// \brief Append-only binary encoder backing model snapshots.
class BlobWriter {
 public:
  void WriteU8(uint8_t value);
  void WriteU32(uint32_t value);
  void WriteU64(uint64_t value);
  void WriteI32(int32_t value);
  /// Doubles and floats are stored as their IEEE-754 bit patterns, never
  /// through decimal text, so round trips are bit-exact including NaN
  /// payloads and signed zeros.
  void WriteDouble(double value);
  void WriteFloat(float value);
  /// Length-prefixed (u64) byte string.
  void WriteString(const std::string& value);
  void WriteDoubleVec(const std::vector<double>& values);
  void WriteFloatVec(const std::vector<float>& values);

  const std::string& data() const { return data_; }
  std::string Release() { return std::move(data_); }

 private:
  std::string data_;
};

/// \brief Bounds-checked decoder over a byte string written by BlobWriter.
///
/// Every Read* returns a Status-carrying Result; a short or corrupt buffer
/// yields IOError("blob: ...") instead of reading out of bounds. Vector
/// and string lengths are validated against the remaining bytes before any
/// allocation, so a mangled length prefix cannot trigger a huge alloc.
class BlobReader {
 public:
  explicit BlobReader(const std::string& data) : data_(&data) {}

  [[nodiscard]] Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  [[nodiscard]] Result<uint64_t> ReadU64();
  Result<int32_t> ReadI32();
  [[nodiscard]] Result<double> ReadDouble();
  Result<float> ReadFloat();
  [[nodiscard]] Result<std::string> ReadString();
  Result<std::vector<double>> ReadDoubleVec();
  [[nodiscard]] Result<std::vector<float>> ReadFloatVec();

  /// Bytes not yet consumed.
  size_t Remaining() const { return data_->size() - pos_; }
  bool AtEnd() const { return Remaining() == 0; }

 private:
  [[nodiscard]] Status Need(size_t bytes) const;

  const std::string* data_;
  size_t pos_ = 0;
};

}  // namespace rlbench

#endif  // RLBENCH_SRC_COMMON_BLOB_H_
