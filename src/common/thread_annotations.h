// Clang thread-safety annotations and the annotated locking primitives
// every concurrent module in rlbench must use. Raw std::mutex /
// std::condition_variable are banned outside this header (enforced by
// tools/rlbench_lint.py rule `locks`): routing all locking through
// rlbench::Mutex gives the compiler a complete picture of the lock graph,
// so lock-discipline violations — touching a guarded field without its
// mutex, calling a REQUIRES function unlocked, leaking a lock on an early
// return — become *compile errors* under Clang instead of runtime TSan
// findings that depend on the schedule.
//
// Build gate: -DRLBENCH_THREAD_SAFETY=ON adds
//   -Wthread-safety -Wthread-safety-beta -Werror=thread-safety-analysis
// on Clang. GCC has no thread-safety analysis; there the macros expand to
// nothing and the wrappers behave identically (zero overhead beyond the
// std primitives they wrap). tests/static/ carries must-not-compile
// fixtures that regression-test the analysis itself.
//
// Annotation policy (docs/static_analysis.md has the long form):
//   * every field protected by a mutex carries RLBENCH_GUARDED_BY(mu)
//   * every function with a locking precondition carries
//     RLBENCH_REQUIRES(mu) instead of taking a lock-witness parameter
//   * intentionally unsynchronised fast paths (single-writer contracts,
//     quiescent-state reads) are annotated
//     RLBENCH_NO_THREAD_SAFETY_ANALYSIS with a comment citing the
//     contract that makes them safe
#ifndef RLBENCH_SRC_COMMON_THREAD_ANNOTATIONS_H_
#define RLBENCH_SRC_COMMON_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

// --- Raw attribute macros ---------------------------------------------------
// No-ops on compilers without the capability analysis (GCC, MSVC).

#if defined(__clang__) && defined(__has_attribute)
#define RLBENCH_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define RLBENCH_THREAD_ANNOTATION_(x)
#endif

/// Marks a type as a lockable capability ("mutex").
#define RLBENCH_CAPABILITY(x) RLBENCH_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define RLBENCH_SCOPED_CAPABILITY \
  RLBENCH_THREAD_ANNOTATION_(scoped_lockable)

/// Field is protected by the given mutex; touching it without the mutex
/// held is a compile error under the analysis.
#define RLBENCH_GUARDED_BY(x) RLBENCH_THREAD_ANNOTATION_(guarded_by(x))

/// Pointee is protected by the given mutex (the pointer itself is not).
#define RLBENCH_PT_GUARDED_BY(x) RLBENCH_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Caller must hold the given mutex(es) exclusively.
#define RLBENCH_REQUIRES(...) \
  RLBENCH_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Caller must hold the given mutex(es) at least shared.
#define RLBENCH_REQUIRES_SHARED(...) \
  RLBENCH_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the mutex(es) and returns with them held.
#define RLBENCH_ACQUIRE(...) \
  RLBENCH_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the mutex(es).
#define RLBENCH_RELEASE(...) \
  RLBENCH_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function acquires the mutex iff it returns `r`.
#define RLBENCH_TRY_ACQUIRE(r, ...) \
  RLBENCH_THREAD_ANNOTATION_(try_acquire_capability(r, __VA_ARGS__))

/// Caller must NOT hold the given mutex(es) (deadlock prevention).
#define RLBENCH_EXCLUDES(...) \
  RLBENCH_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declares this mutex must be acquired after the given one.
#define RLBENCH_ACQUIRED_AFTER(...) \
  RLBENCH_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Declares this mutex must be acquired before the given one.
#define RLBENCH_ACQUIRED_BEFORE(...) \
  RLBENCH_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

/// Escape hatch for functions whose safety rests on a contract the
/// analysis cannot see (single-writer phases, quiescent-state reads).
/// Every use must carry a comment citing that contract.
#define RLBENCH_NO_THREAD_SAFETY_ANALYSIS \
  RLBENCH_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// The analysis-only assertion that a mutex is held (no runtime effect).
#define RLBENCH_ASSERT_CAPABILITY(x) \
  RLBENCH_THREAD_ANNOTATION_(assert_capability(x))

namespace rlbench {

/// \brief Annotated exclusive mutex; the only mutex type allowed outside
/// this header. Satisfies BasicLockable (lower-case lock/unlock) so
/// CondVar can wait on it directly.
class RLBENCH_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() RLBENCH_ACQUIRE() { mu_.lock(); }
  void Unlock() RLBENCH_RELEASE() { mu_.unlock(); }
  bool TryLock() RLBENCH_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable spelling (CondVar, std interop). Same annotations.
  void lock() RLBENCH_ACQUIRE() { mu_.lock(); }
  void unlock() RLBENCH_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// \brief RAII lock over a Mutex. The constructor is [[nodiscard]] so the
/// classic bug of constructing an unnamed temporary — `MutexLock{&mu};`,
/// which unlocks at the semicolon — is diagnosed on every supported
/// compiler, not just under the Clang analysis (see
/// tests/static/fixtures/fail_temporary_mutex_lock.cc).
class RLBENCH_SCOPED_CAPABILITY MutexLock {
 public:
  [[nodiscard]] explicit MutexLock(Mutex* mu) RLBENCH_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~MutexLock() RLBENCH_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// \brief Condition variable bound to rlbench::Mutex.
///
/// Wait() takes the Mutex the caller already holds (annotated
/// RLBENCH_REQUIRES, mirroring absl::CondVar): the analysis knows the
/// mutex is held before and after the wait, and cannot be fooled by the
/// release-reacquire inside.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Block until notified; `mu` must be held and is held again on return.
  void Wait(Mutex* mu) RLBENCH_REQUIRES(mu) { cv_.wait(*mu); }

  /// Block until `pred()` holds; `mu` is held whenever `pred` runs.
  template <typename Pred>
  void Wait(Mutex* mu, Pred pred) RLBENCH_REQUIRES(mu) {
    cv_.wait(*mu, std::move(pred));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // condition_variable_any waits on any BasicLockable, so no
  // std::unique_lock<std::mutex> ever needs to escape the wrapper.
  std::condition_variable_any cv_;
};

}  // namespace rlbench

#endif  // RLBENCH_SRC_COMMON_THREAD_ANNOTATIONS_H_
