#include "common/strings.h"

#include <cctype>
#include <cstdio>

namespace rlbench {

std::string ToLowerAscii(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::vector<std::string> SplitAny(std::string_view s, std::string_view delims) {
  std::vector<std::string> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) pieces.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string_view StripAscii(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

uint64_t Fnv1a64(std::string_view s) {
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (char c : s) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

std::string FormatDouble(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string FormatWithCommas(int64_t value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (value < 0) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

}  // namespace rlbench
