#include "common/rng.h"

#include <algorithm>
#include <numeric>

namespace rlbench {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

size_t Rng::Index(size_t n) {
  std::uniform_int_distribution<size_t> dist(0, n - 1);
  return dist(engine_);
}

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  k = std::min(k, n);
  if (k == 0) return {};
  // Partial Fisher-Yates: only the first k slots need to be materialised.
  std::vector<size_t> all(n);
  std::iota(all.begin(), all.end(), size_t{0});
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + Index(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

uint64_t Rng::Fork() {
  return SplitMix64(engine_() ^ (++fork_counter_ * 0x9E3779B97F4A7C15ULL));
}

uint64_t SplitSeed(uint64_t base_seed, uint64_t index) {
  // Two mixing rounds with a golden-ratio offset on the index keep streams
  // decorrelated even for adjacent (base, index) pairs.
  return SplitMix64(SplitMix64(base_seed) ^
                    SplitMix64(index * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL));
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace rlbench
