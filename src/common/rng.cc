#include "common/rng.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace rlbench {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

size_t Rng::Index(size_t n) {
  std::uniform_int_distribution<size_t> dist(0, n - 1);
  return dist(engine_);
}

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  k = std::min(k, n);
  if (k == 0) return {};
  // Partial Fisher-Yates: only the first k slots need to be materialised.
  std::vector<size_t> all(n);
  std::iota(all.begin(), all.end(), size_t{0});
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + Index(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

uint64_t Rng::Fork() {
  return SplitMix64(engine_() ^ (++fork_counter_ * 0x9E3779B97F4A7C15ULL));
}

uint64_t SplitSeed(uint64_t base_seed, uint64_t index) {
  // Two mixing rounds with a golden-ratio offset on the index keep streams
  // decorrelated even for adjacent (base, index) pairs.
  return SplitMix64(SplitMix64(base_seed) ^
                    SplitMix64(index * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL));
}

FeistelPermutation::FeistelPermutation(uint64_t n, uint64_t seed) : n_(n) {
  // Smallest even bit width whose power of two covers n; the Feistel halves
  // must be equal, so the walked domain is 2^(2 * half_bits_).
  int bits = 2;
  while (n > (uint64_t{1} << bits) && bits < 62) bits += 2;
  half_bits_ = bits / 2;
  half_mask_ = (uint64_t{1} << half_bits_) - 1;
  for (int r = 0; r < kRounds; ++r) {
    round_keys_[r] = SplitSeed(seed, static_cast<uint64_t>(r) + 1);
  }
}

uint64_t FeistelPermutation::Encrypt(uint64_t value) const {
  uint64_t left = value >> half_bits_;
  uint64_t right = value & half_mask_;
  for (int r = 0; r < kRounds; ++r) {
    uint64_t next = left ^ (SplitMix64(right ^ round_keys_[r]) & half_mask_);
    left = right;
    right = next;
  }
  return (left << half_bits_) | right;
}

uint64_t FeistelPermutation::Decrypt(uint64_t value) const {
  uint64_t left = value >> half_bits_;
  uint64_t right = value & half_mask_;
  for (int r = kRounds - 1; r >= 0; --r) {
    uint64_t prev = right ^ (SplitMix64(left ^ round_keys_[r]) & half_mask_);
    right = left;
    left = prev;
  }
  return (left << half_bits_) | right;
}

uint64_t FeistelPermutation::Forward(uint64_t i) const {
  RLBENCH_CHECK_LT(i, n_);
  // Cycle-walk: the Feistel domain is a power of two >= n, so re-encrypt
  // until the image lands back inside [0, n). Terminates because Encrypt
  // permutes the whole power-of-two domain.
  uint64_t value = Encrypt(i);
  while (value >= n_) value = Encrypt(value);
  return value;
}

uint64_t FeistelPermutation::Inverse(uint64_t i) const {
  RLBENCH_CHECK_LT(i, n_);
  uint64_t value = Decrypt(i);
  while (value >= n_) value = Decrypt(value);
  return value;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace rlbench
