#include "common/flags.h"

#include <cstdlib>

#include "common/strings.h"

namespace rlbench {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!StartsWith(arg, "--")) continue;
    arg.remove_prefix(2);
    size_t eq = arg.find('=');
    if (eq == std::string_view::npos) {
      values_[std::string(arg)] = "true";
    } else {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
}

bool Flags::Has(std::string_view name) const {
  return values_.find(name) != values_.end();
}

std::string Flags::GetString(std::string_view name, std::string fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

double Flags::GetDouble(std::string_view name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  return end == it->second.c_str() ? fallback : v;
}

int64_t Flags::GetInt(std::string_view name, int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  return end == it->second.c_str() ? fallback : v;
}

bool Flags::GetBool(std::string_view name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace rlbench
