// Minimal command-line flag parsing for the bench and example binaries.
// Flags use the form --name=value or --name (boolean true).
#ifndef RLBENCH_SRC_COMMON_FLAGS_H_
#define RLBENCH_SRC_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <string_view>

namespace rlbench {

/// \brief Parsed command-line flags.
///
/// Unknown flags are retained and queryable; positional arguments are
/// ignored. Parsing never fails: malformed tokens are skipped.
class Flags {
 public:
  Flags() = default;
  Flags(int argc, char** argv);

  bool Has(std::string_view name) const;
  std::string GetString(std::string_view name, std::string fallback) const;
  double GetDouble(std::string_view name, double fallback) const;
  int64_t GetInt(std::string_view name, int64_t fallback) const;
  bool GetBool(std::string_view name, bool fallback) const;

 private:
  std::map<std::string, std::string, std::less<>> values_;
};

}  // namespace rlbench

#endif  // RLBENCH_SRC_COMMON_FLAGS_H_
