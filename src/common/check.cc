#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace rlbench {

void CheckFailed(const char* kind, const char* expression, const char* file,
                 int line, const std::string& detail) {
  // One fprintf so the report stays contiguous even with interleaved stderr
  // writers; flush before abort so the report survives the crash.
  if (detail.empty()) {
    std::fprintf(stderr,
                 "[rlbench fatal] %s failed: %s\n"
                 "  at %s:%d\n",
                 kind, expression, file, line);
  } else {
    std::fprintf(stderr,
                 "[rlbench fatal] %s failed: %s\n"
                 "  at %s:%d\n"
                 "  with %s\n",
                 kind, expression, file, line, detail.c_str());
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace rlbench
