// Runtime contract macros for the measurement pipeline. A silent NaN in a
// similarity or an out-of-bounds read in a complexity measure skews every
// downstream conclusion, so hot numerical paths state their preconditions
// with these macros instead of bare asserts.
//
// Severity tiers:
//   RLBENCH_CHECK*  — always on, in every build type. Use at API boundaries
//                     and for conditions whose violation would corrupt
//                     results (divide-by-zero, dimension mismatch,
//                     out-of-range probability).
//   RLBENCH_DCHECK* — compiled out in NDEBUG builds. Use inside per-element
//                     hot loops where the always-on cost is not acceptable.
//
// On failure the process prints a structured report (expression, file:line,
// captured operand values) to stderr and aborts; contract violations are
// programming errors, not recoverable conditions (recoverable failures use
// common/status.h).
#ifndef RLBENCH_SRC_COMMON_CHECK_H_
#define RLBENCH_SRC_COMMON_CHECK_H_

#include <cmath>
#include <cstddef>
#include <sstream>
#include <string>

namespace rlbench {

/// Print a structured contract-violation report to stderr and abort.
/// `detail` carries captured operand values ("lhs = ..., rhs = ...").
[[noreturn]] void CheckFailed(const char* kind, const char* expression,
                              const char* file, int line,
                              const std::string& detail);

namespace internal {

/// Render one captured operand as "name = value" for the failure report.
template <typename T>
std::string FormatOperand(const char* name, const T& value) {
  std::ostringstream os;
  os << name << " = " << value;
  return os.str();
}

inline std::string FormatOperand(const char* name, bool value) {
  std::string out(name);
  out += value ? " = true" : " = false";
  return out;
}

template <typename A, typename B>
std::string FormatOperands(const char* name_a, const A& a, const char* name_b,
                           const B& b) {
  return FormatOperand(name_a, a) + ", " + FormatOperand(name_b, b);
}

}  // namespace internal

/// True when RLBENCH_DCHECK* expand to live checks (non-NDEBUG builds).
constexpr bool DchecksEnabled() {
#ifdef NDEBUG
  return false;
#else
  return true;
#endif
}

}  // namespace rlbench

/// Always-on contract: aborts with a structured report when `cond` is false.
#define RLBENCH_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::rlbench::CheckFailed("CHECK", #cond, __FILE__, __LINE__, "");    \
    }                                                                    \
  } while (false)

/// Like RLBENCH_CHECK but appends a caller-supplied message to the report.
#define RLBENCH_CHECK_MSG(cond, msg)                                     \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::rlbench::CheckFailed("CHECK", #cond, __FILE__, __LINE__, (msg)); \
    }                                                                    \
  } while (false)

// Binary comparison contracts; on failure both operand values are captured
// in the report.
#define RLBENCH_CHECK_OP_(op, a, b)                                         \
  do {                                                                      \
    const auto& rlbench_check_a_ = (a);                                     \
    const auto& rlbench_check_b_ = (b);                                     \
    if (!(rlbench_check_a_ op rlbench_check_b_)) {                          \
      ::rlbench::CheckFailed(                                               \
          "CHECK", #a " " #op " " #b, __FILE__, __LINE__,                   \
          ::rlbench::internal::FormatOperands(#a, rlbench_check_a_, #b,     \
                                              rlbench_check_b_));           \
    }                                                                       \
  } while (false)

#define RLBENCH_CHECK_EQ(a, b) RLBENCH_CHECK_OP_(==, a, b)
#define RLBENCH_CHECK_NE(a, b) RLBENCH_CHECK_OP_(!=, a, b)
#define RLBENCH_CHECK_LT(a, b) RLBENCH_CHECK_OP_(<, a, b)
#define RLBENCH_CHECK_LE(a, b) RLBENCH_CHECK_OP_(<=, a, b)
#define RLBENCH_CHECK_GT(a, b) RLBENCH_CHECK_OP_(>, a, b)
#define RLBENCH_CHECK_GE(a, b) RLBENCH_CHECK_OP_(>=, a, b)

/// Contract: `x` is a finite floating-point value (no NaN, no infinity).
#define RLBENCH_CHECK_FINITE(x)                                             \
  do {                                                                      \
    const double rlbench_check_x_ = static_cast<double>(x);                 \
    if (!std::isfinite(rlbench_check_x_)) {                                 \
      ::rlbench::CheckFailed(                                               \
          "CHECK_FINITE", #x, __FILE__, __LINE__,                           \
          ::rlbench::internal::FormatOperand(#x, rlbench_check_x_));        \
    }                                                                       \
  } while (false)

/// Contract: `p` is a valid probability — finite and within [0, 1].
#define RLBENCH_CHECK_PROB(p)                                               \
  do {                                                                      \
    const double rlbench_check_p_ = static_cast<double>(p);                 \
    if (!(rlbench_check_p_ >= 0.0 && rlbench_check_p_ <= 1.0)) {            \
      ::rlbench::CheckFailed(                                               \
          "CHECK_PROB", #p " in [0, 1]", __FILE__, __LINE__,                \
          ::rlbench::internal::FormatOperand(#p, rlbench_check_p_));        \
    }                                                                       \
  } while (false)

/// Contract: `i` is a valid index into a container of size `n`.
#define RLBENCH_CHECK_INDEX(i, n)                                           \
  do {                                                                      \
    const size_t rlbench_check_i_ = static_cast<size_t>(i);                 \
    const size_t rlbench_check_n_ = static_cast<size_t>(n);                 \
    if (rlbench_check_i_ >= rlbench_check_n_) {                             \
      ::rlbench::CheckFailed(                                               \
          "CHECK_INDEX", #i " < " #n, __FILE__, __LINE__,                   \
          ::rlbench::internal::FormatOperands(#i, rlbench_check_i_, #n,     \
                                              rlbench_check_n_));           \
    }                                                                       \
  } while (false)

// Debug-only variants: identical semantics, compiled out under NDEBUG.
#ifdef NDEBUG
#define RLBENCH_DCHECK(cond) \
  do {                       \
  } while (false)
#define RLBENCH_DCHECK_EQ(a, b) RLBENCH_DCHECK((a) == (b))
#define RLBENCH_DCHECK_NE(a, b) RLBENCH_DCHECK((a) != (b))
#define RLBENCH_DCHECK_LT(a, b) RLBENCH_DCHECK((a) < (b))
#define RLBENCH_DCHECK_LE(a, b) RLBENCH_DCHECK((a) <= (b))
#define RLBENCH_DCHECK_GT(a, b) RLBENCH_DCHECK((a) > (b))
#define RLBENCH_DCHECK_GE(a, b) RLBENCH_DCHECK((a) >= (b))
#define RLBENCH_DCHECK_FINITE(x) RLBENCH_DCHECK(true)
#define RLBENCH_DCHECK_PROB(p) RLBENCH_DCHECK(true)
#define RLBENCH_DCHECK_INDEX(i, n) RLBENCH_DCHECK(true)
#else
#define RLBENCH_DCHECK(cond) RLBENCH_CHECK(cond)
#define RLBENCH_DCHECK_EQ(a, b) RLBENCH_CHECK_EQ(a, b)
#define RLBENCH_DCHECK_NE(a, b) RLBENCH_CHECK_NE(a, b)
#define RLBENCH_DCHECK_LT(a, b) RLBENCH_CHECK_LT(a, b)
#define RLBENCH_DCHECK_LE(a, b) RLBENCH_CHECK_LE(a, b)
#define RLBENCH_DCHECK_GT(a, b) RLBENCH_CHECK_GT(a, b)
#define RLBENCH_DCHECK_GE(a, b) RLBENCH_CHECK_GE(a, b)
#define RLBENCH_DCHECK_FINITE(x) RLBENCH_CHECK_FINITE(x)
#define RLBENCH_DCHECK_PROB(p) RLBENCH_CHECK_PROB(p)
#define RLBENCH_DCHECK_INDEX(i, n) RLBENCH_CHECK_INDEX(i, n)
#endif

namespace rlbench {

/// Bounds-checked index pass-through: returns `i` after asserting i < n.
/// Usage: `values[CheckedIndex(i, values.size())]`.
inline size_t CheckedIndex(size_t i, size_t n) {
  RLBENCH_CHECK_INDEX(i, n);
  return i;
}

/// Debug-only bounds check (free in NDEBUG builds); returns `i`.
inline size_t DcheckedIndex(size_t i, size_t n) {
  RLBENCH_DCHECK_INDEX(i, n);
  (void)n;
  return i;
}

}  // namespace rlbench

#endif  // RLBENCH_SRC_COMMON_CHECK_H_
