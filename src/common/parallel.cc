#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rlbench {

namespace {

// Set while the current thread is executing a chunk body; nested Parallel*
// calls observe it and run inline instead of re-entering the pool.
thread_local bool tls_in_parallel_region = false;

size_t EnvThreadCount() {
  const char* env = std::getenv("RLBENCH_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    long value = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && value > 0) {
      return static_cast<size_t>(value);
    }
  }
  size_t hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? hardware : 1;
}

/// \brief The global worker pool behind ParallelFor / ParallelReduce.
///
/// One job runs at a time (callers serialise on jobs_mutex_); a job is a
/// shared chunk counter the workers and the calling thread drain together.
/// All ordering decisions (chunk boundaries, combine order) live in the
/// callers — the pool only schedules, so it cannot affect results.
class ThreadPool {
 public:
  static ThreadPool& Instance() {
    static ThreadPool* pool = new ThreadPool();  // leaked: outlives main
    return *pool;
  }

  size_t thread_count() {
    std::lock_guard<std::mutex> lock(config_mutex_);
    return configured_threads_;
  }

  void SetThreadCount(size_t threads) {
    RLBENCH_CHECK_MSG(!tls_in_parallel_region,
                      "SetParallelThreads inside a parallel region");
    std::lock_guard<std::mutex> jobs_lock(jobs_mutex_);
    std::unique_lock<std::mutex> lock(config_mutex_);
    size_t target = threads > 0 ? threads : EnvThreadCount();
    if (target == configured_threads_) return;
    StopWorkersLocked(lock);
    configured_threads_ = target;
    StartWorkersLocked(lock);
  }

  void Run(size_t num_chunks, const std::function<void(size_t)>& body) {
    if (num_chunks == 0) return;
    // Counted before the inline/pooled dispatch so the exported totals are
    // identical at every thread count (a "job" is a parallel region
    // entered, whether it ran on workers or inline).
    RLBENCH_COUNTER_INC("parallel/jobs");
    RLBENCH_COUNTER_ADD("parallel/chunks", num_chunks);
    RLBENCH_HISTOGRAM_RECORD("parallel/chunks_per_job",
                             ::rlbench::obs::ExponentialBounds(1.0, 2.0, 13),
                             num_chunks);
    if (tls_in_parallel_region) {  // nested: rejected from the pool
      RunInline(num_chunks, body);
      return;
    }
    // One job at a time; concurrent top-level callers queue up here.
    std::lock_guard<std::mutex> jobs_lock(jobs_mutex_);
    {
      std::unique_lock<std::mutex> lock(config_mutex_);
      if (workers_.empty() && configured_threads_ == 0) {
        configured_threads_ = EnvThreadCount();
        StartWorkersLocked(lock);
      }
    }
    if (workers_.empty() || num_chunks == 1) {
      RunInline(num_chunks, body);
      return;
    }

    Job job;
    job.num_chunks = num_chunks;
    job.body = &body;
    // Label the per-chunk worker spans after whatever span is open on the
    // calling thread, so pool work shows up nested under its logical
    // parent in the trace (see docs/observability.md).
    if (obs::TraceEnabled()) {
      const char* label = obs::CurrentSpanName();
      job.trace_label = label != nullptr ? label : "parallel";
    }
    {
      std::lock_guard<std::mutex> lock(job_mutex_);
      job_ = &job;
      ++job_generation_;
    }
    job_cv_.notify_all();

    // The calling thread works alongside the pool.
    tls_in_parallel_region = true;
    DrainChunks(&job);
    tls_in_parallel_region = false;

    // Wait for workers still inside their last chunk.
    {
      std::unique_lock<std::mutex> lock(job_mutex_);
      done_cv_.wait(lock, [&] { return job.active_workers == 0; });
      job_ = nullptr;
    }
    if (job.error) std::rethrow_exception(job.error);
  }

 private:
  struct Job {
    size_t num_chunks = 0;
    const std::function<void(size_t)>* body = nullptr;
    // Span name for per-chunk trace events; points at the calling
    // thread's open span, which outlives the job (Run() returns before
    // the span closes). Null when tracing is off.
    const char* trace_label = nullptr;
    std::atomic<size_t> next_chunk{0};
    // Workers currently executing chunks of this job (job_mutex_).
    size_t active_workers = 0;
    std::exception_ptr error;  // first failure only (job_mutex_)
  };

  ThreadPool() = default;

  void StartWorkersLocked(std::unique_lock<std::mutex>& /*config_lock*/) {
    size_t workers = configured_threads_ > 0 ? configured_threads_ - 1 : 0;
    stop_ = false;
    workers_.reserve(workers);
    for (size_t i = 0; i < workers; ++i) {
      workers_.emplace_back([this, i] {
        obs::SetCurrentThreadName("pool-worker-" + std::to_string(i));
        WorkerLoop();
      });
    }
  }

  void StopWorkersLocked(std::unique_lock<std::mutex>& /*config_lock*/) {
    if (workers_.empty()) return;
    {
      std::lock_guard<std::mutex> lock(job_mutex_);
      stop_ = true;
    }
    job_cv_.notify_all();
    for (auto& worker : workers_) worker.join();
    workers_.clear();
  }

  void WorkerLoop() {
    uint64_t seen_generation = 0;
    while (true) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(job_mutex_);
        job_cv_.wait(lock, [&] {
          return stop_ || (job_ != nullptr && job_generation_ != seen_generation);
        });
        if (stop_) return;
        seen_generation = job_generation_;
        job = job_;
        ++job->active_workers;
      }
      tls_in_parallel_region = true;
      DrainChunks(job);
      tls_in_parallel_region = false;
      {
        std::lock_guard<std::mutex> lock(job_mutex_);
        --job->active_workers;
      }
      done_cv_.notify_all();
    }
  }

  void DrainChunks(Job* job) {
    while (true) {
      size_t chunk = job->next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= job->num_chunks) return;
      try {
        // Pool-scheduled chunks only (inline/nested runs are not traced):
        // each chunk becomes a span on this thread's track. Recording is
        // observation-only, so results are unchanged by construction.
        obs::TraceSpan span(
            job->trace_label != nullptr ? job->trace_label : "parallel",
            chunk);
        (*job->body)(chunk);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job_mutex_);
        if (!job->error) job->error = std::current_exception();
      }
    }
  }

  static void RunInline(size_t num_chunks,
                        const std::function<void(size_t)>& body) {
    bool was_in_region = tls_in_parallel_region;
    tls_in_parallel_region = true;
    try {
      for (size_t chunk = 0; chunk < num_chunks; ++chunk) body(chunk);
    } catch (...) {
      tls_in_parallel_region = was_in_region;
      throw;
    }
    tls_in_parallel_region = was_in_region;
  }

  // Serialises whole jobs: one Run() owns the pool at a time.
  std::mutex jobs_mutex_;
  // Guards pool (re)configuration.
  std::mutex config_mutex_;
  size_t configured_threads_ = 0;  // 0 = not yet initialised
  std::vector<std::thread> workers_;

  // Guards the current job pointer and worker bookkeeping.
  std::mutex job_mutex_;
  std::condition_variable job_cv_;
  std::condition_variable done_cv_;
  Job* job_ = nullptr;
  uint64_t job_generation_ = 0;
  bool stop_ = false;
};

}  // namespace

size_t ParallelThreadCount() {
  size_t configured = ThreadPool::Instance().thread_count();
  return configured > 0 ? configured : EnvThreadCount();
}

void SetParallelThreads(size_t threads) {
  ThreadPool::Instance().SetThreadCount(threads);
}

bool InParallelRegion() { return tls_in_parallel_region; }

size_t ParallelChunkCount(size_t begin, size_t end, size_t grain) {
  if (begin >= end) return 0;
  size_t n = end - begin;
  size_t g = grain > 0 ? grain : 1;
  return (n + g - 1) / g;
}

std::pair<size_t, size_t> ParallelChunkBounds(size_t begin, size_t end,
                                              size_t grain, size_t chunk) {
  size_t g = grain > 0 ? grain : 1;
  size_t first = begin + chunk * g;
  size_t last = first + g < end ? first + g : end;
  RLBENCH_DCHECK_LT(first, end);
  return {first, last};
}

namespace internal {

void RunChunks(size_t num_chunks, const std::function<void(size_t)>& body) {
  ThreadPool::Instance().Run(num_chunks, body);
}

}  // namespace internal

}  // namespace rlbench
