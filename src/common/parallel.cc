#include "common/parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>
#include <thread>

#include "common/check.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rlbench {

namespace {

// Set while the current thread is executing a chunk body; nested Parallel*
// calls observe it and run inline instead of re-entering the pool.
// NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
thread_local bool tls_in_parallel_region = false;

size_t EnvThreadCount() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at gate resolution
  const char* env = std::getenv("RLBENCH_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    long value = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && value > 0) {
      return static_cast<size_t>(value);
    }
  }
  size_t hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? hardware : 1;
}

/// \brief The global worker pool behind ParallelFor / ParallelReduce.
///
/// One job runs at a time (callers serialise on jobs_mutex_); a job is a
/// shared chunk counter the workers and the calling thread drain together.
/// All ordering decisions (chunk boundaries, combine order) live in the
/// callers — the pool only schedules, so it cannot affect results.
class ThreadPool {
 public:
  static ThreadPool& Instance() {
    static ThreadPool* pool = new ThreadPool();  // leaked: outlives main
    return *pool;
  }

  size_t thread_count() RLBENCH_EXCLUDES(config_mutex_) {
    MutexLock lock(&config_mutex_);
    return configured_threads_;
  }

  void SetThreadCount(size_t threads)
      RLBENCH_EXCLUDES(jobs_mutex_, config_mutex_) {
    RLBENCH_CHECK_MSG(!tls_in_parallel_region,
                      "SetParallelThreads inside a parallel region");
    MutexLock jobs_lock(&jobs_mutex_);
    MutexLock lock(&config_mutex_);
    size_t target = threads > 0 ? threads : EnvThreadCount();
    if (target == configured_threads_) return;
    StopWorkersLocked();
    configured_threads_ = target;
    StartWorkersLocked();
  }

  void Run(size_t num_chunks, const std::function<void(size_t)>& body) {
    if (num_chunks == 0) return;
    // Counted before the inline/pooled dispatch so the exported totals are
    // identical at every thread count (a "job" is a parallel region
    // entered, whether it ran on workers or inline).
    RLBENCH_COUNTER_INC("parallel/jobs");
    RLBENCH_COUNTER_ADD("parallel/chunks", num_chunks);
    RLBENCH_HISTOGRAM_RECORD("parallel/chunks_per_job",
                             ::rlbench::obs::ExponentialBounds(1.0, 2.0, 13),
                             num_chunks);
    if (tls_in_parallel_region) {  // nested: rejected from the pool
      RunInline(num_chunks, body);
      return;
    }
    // One job at a time; concurrent top-level callers queue up here.
    MutexLock jobs_lock(&jobs_mutex_);
    bool have_workers;
    {
      MutexLock lock(&config_mutex_);
      if (workers_.empty() && configured_threads_ == 0) {
        configured_threads_ = EnvThreadCount();
        StartWorkersLocked();
      }
      have_workers = !workers_.empty();
    }
    if (!have_workers || num_chunks == 1) {
      RunInline(num_chunks, body);
      return;
    }

    Job job;
    job.num_chunks = num_chunks;
    job.body = &body;
    // Label the per-chunk worker spans after whatever span is open on the
    // calling thread, so pool work shows up nested under its logical
    // parent in the trace (see docs/observability.md).
    if (obs::TraceEnabled()) {
      const char* label = obs::CurrentSpanName();
      job.trace_label = label != nullptr ? label : "parallel";
    }
    {
      MutexLock lock(&job_mutex_);
      job_ = &job;
      ++job_generation_;
    }
    job_cv_.NotifyAll();

    // The calling thread works alongside the pool.
    tls_in_parallel_region = true;
    DrainChunks(&job);
    tls_in_parallel_region = false;

    // Wait for workers still inside their last chunk.
    {
      MutexLock lock(&job_mutex_);
      while (job.active_workers != 0) done_cv_.Wait(&job_mutex_);
      job_ = nullptr;
    }
    if (job.error) std::rethrow_exception(job.error);
  }

 private:
  struct Job {
    size_t num_chunks = 0;
    const std::function<void(size_t)>* body = nullptr;
    // Span name for per-chunk trace events; points at the calling
    // thread's open span, which outlives the job (Run() returns before
    // the span closes). Null when tracing is off.
    const char* trace_label = nullptr;
    std::atomic<size_t> next_chunk{0};
    // Workers currently executing chunks of this job (job_mutex_).
    // Guarded by the pool's job_mutex_ (annotation cannot name an
    // enclosing object's member from a nested struct).
    size_t active_workers = 0;
    std::exception_ptr error;  // first failure only (job_mutex_)
  };

  ThreadPool() = default;

  void StartWorkersLocked() RLBENCH_REQUIRES(config_mutex_)
      RLBENCH_EXCLUDES(job_mutex_) {
    size_t workers = configured_threads_ > 0 ? configured_threads_ - 1 : 0;
    {
      MutexLock lock(&job_mutex_);
      stop_ = false;
    }
    workers_.reserve(workers);
    for (size_t i = 0; i < workers; ++i) {
      workers_.emplace_back([this, i] {
        obs::SetCurrentThreadName("pool-worker-" + std::to_string(i));
        WorkerLoop();
      });
    }
  }

  void StopWorkersLocked() RLBENCH_REQUIRES(config_mutex_)
      RLBENCH_EXCLUDES(job_mutex_) {
    if (workers_.empty()) return;
    {
      MutexLock lock(&job_mutex_);
      stop_ = true;
    }
    job_cv_.NotifyAll();
    for (auto& worker : workers_) worker.join();
    workers_.clear();
  }

  void WorkerLoop() RLBENCH_EXCLUDES(job_mutex_) {
    uint64_t seen_generation = 0;
    while (true) {
      Job* job = nullptr;
      {
        // Explicit wait loop (not a predicate lambda) so every guarded
        // read stays inside this annotated function.
        MutexLock lock(&job_mutex_);
        while (!stop_ &&
               (job_ == nullptr || job_generation_ == seen_generation)) {
          job_cv_.Wait(&job_mutex_);
        }
        if (stop_) return;
        seen_generation = job_generation_;
        job = job_;
        ++job->active_workers;
      }
      tls_in_parallel_region = true;
      DrainChunks(job);
      tls_in_parallel_region = false;
      {
        MutexLock lock(&job_mutex_);
        --job->active_workers;
      }
      done_cv_.NotifyAll();
    }
  }

  void DrainChunks(Job* job) {
    while (true) {
      size_t chunk = job->next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= job->num_chunks) return;
      try {
        // Pool-scheduled chunks only (inline/nested runs are not traced):
        // each chunk becomes a span on this thread's track. Recording is
        // observation-only, so results are unchanged by construction.
        obs::TraceSpan span(
            job->trace_label != nullptr ? job->trace_label : "parallel",
            chunk);
        (*job->body)(chunk);
      } catch (...) {
        MutexLock lock(&job_mutex_);
        if (!job->error) job->error = std::current_exception();
      }
    }
  }

  static void RunInline(size_t num_chunks,
                        const std::function<void(size_t)>& body) {
    bool was_in_region = tls_in_parallel_region;
    tls_in_parallel_region = true;
    try {
      for (size_t chunk = 0; chunk < num_chunks; ++chunk) body(chunk);
    } catch (...) {
      tls_in_parallel_region = was_in_region;
      throw;
    }
    tls_in_parallel_region = was_in_region;
  }

  // Serialises whole jobs: one Run() owns the pool at a time.
  Mutex jobs_mutex_ RLBENCH_ACQUIRED_BEFORE(config_mutex_);
  // Guards pool (re)configuration.
  Mutex config_mutex_ RLBENCH_ACQUIRED_BEFORE(job_mutex_);
  size_t configured_threads_ RLBENCH_GUARDED_BY(config_mutex_) = 0;
  std::vector<std::thread> workers_ RLBENCH_GUARDED_BY(config_mutex_);

  // Guards the current job pointer and worker bookkeeping.
  Mutex job_mutex_;
  CondVar job_cv_;
  CondVar done_cv_;
  Job* job_ RLBENCH_GUARDED_BY(job_mutex_) = nullptr;
  uint64_t job_generation_ RLBENCH_GUARDED_BY(job_mutex_) = 0;
  bool stop_ RLBENCH_GUARDED_BY(job_mutex_) = false;
};

}  // namespace

size_t ParallelThreadCount() {
  size_t configured = ThreadPool::Instance().thread_count();
  return configured > 0 ? configured : EnvThreadCount();
}

void SetParallelThreads(size_t threads) {
  ThreadPool::Instance().SetThreadCount(threads);
}

bool InParallelRegion() { return tls_in_parallel_region; }

size_t ParallelChunkCount(size_t begin, size_t end, size_t grain) {
  if (begin >= end) return 0;
  size_t n = end - begin;
  size_t g = grain > 0 ? grain : 1;
  return (n + g - 1) / g;
}

std::pair<size_t, size_t> ParallelChunkBounds(size_t begin, size_t end,
                                              size_t grain, size_t chunk) {
  size_t g = grain > 0 ? grain : 1;
  size_t first = begin + chunk * g;
  size_t last = first + g < end ? first + g : end;
  RLBENCH_DCHECK_LT(first, end);
  return {first, last};
}

namespace internal {

void RunChunks(size_t num_chunks, const std::function<void(size_t)>& body) {
  ThreadPool::Instance().Run(num_chunks, body);
}

}  // namespace internal

}  // namespace rlbench
