// Deterministic parallel execution layer for the measurement and matching
// hot paths. All parallelism in rlbench flows through this header: a
// lazily-initialised global thread pool executes fixed-boundary chunks of
// index ranges, so results are bit-identical no matter how many threads
// run them.
//
// Determinism contract:
//   * Chunk boundaries depend only on (begin, end, grain) — never on the
//     thread count or on runtime timing.
//   * ParallelFor bodies write to disjoint, index-addressed slots; the pool
//     only decides WHEN a chunk runs, never WHAT it computes.
//   * ParallelReduce combines the per-chunk partials in ascending chunk
//     order on the calling thread, so floating-point grouping is fixed.
//   * Per-chunk randomness derives from SplitSeed(base, chunk_index)
//     (common/rng.h), independent of the other chunks' consumption.
//   Together these make every parallel call site produce byte-identical
//   results at 1, 2, or N threads (see tests/core/thread_invariance_test.cc).
//
// Nested calls: a Parallel* call issued from inside a Parallel* body is
// rejected from the pool and executes serially inline on the calling worker
// (same chunk boundaries, same combine order — identical results, no
// deadlock, no oversubscription).
//
// Exceptions: the first exception thrown by any chunk is captured and
// rethrown on the calling thread after all in-flight chunks finish.
//
// Sizing: RLBENCH_THREADS environment variable, else
// std::thread::hardware_concurrency(); SetParallelThreads() overrides at
// runtime (tests use it to sweep thread counts within one process).
#ifndef RLBENCH_SRC_COMMON_PARALLEL_H_
#define RLBENCH_SRC_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace rlbench {

/// Threads the global pool runs on (pool workers + the calling thread).
/// Resolution order: SetParallelThreads() override, RLBENCH_THREADS
/// environment variable, std::thread::hardware_concurrency(); at least 1.
size_t ParallelThreadCount();

/// Override the pool size (0 restores the environment/hardware default).
/// Tears down and relaunches the pool workers; must not be called from
/// inside a Parallel* body.
void SetParallelThreads(size_t threads);

/// True while the calling thread is executing a Parallel* body; nested
/// Parallel* calls observe this and run serially inline.
bool InParallelRegion();

/// The fixed chunking of [begin, end) at the given grain: ceil(n / grain)
/// chunks, every chunk `grain` wide except a short tail. Exposed so call
/// sites and tests can reason about (and pin) the determinism contract.
size_t ParallelChunkCount(size_t begin, size_t end, size_t grain);

/// Boundaries [first, last) of chunk `chunk` under the fixed chunking.
std::pair<size_t, size_t> ParallelChunkBounds(size_t begin, size_t end,
                                              size_t grain, size_t chunk);

namespace internal {

/// Run `body(chunk_index)` for every chunk index in [0, num_chunks) on the
/// global pool (calling thread participates). Serial when num_chunks <= 1,
/// the pool has one thread, or the caller is already inside a parallel
/// region. Rethrows the first body exception.
void RunChunks(size_t num_chunks, const std::function<void(size_t)>& body);

}  // namespace internal

/// \brief Parallel loop over [begin, end): `body(i)` once per index.
///
/// The body must only write to state owned by index i (disjoint slots);
/// under that contract the result is identical to the serial loop for every
/// thread count. `grain` is the number of consecutive indices one chunk
/// processes (amortises dispatch; keep it large enough that a chunk does
/// ~10µs of work).
template <typename Body>
void ParallelFor(size_t begin, size_t end, size_t grain, const Body& body) {
  if (begin >= end) return;
  size_t chunks = ParallelChunkCount(begin, end, grain);
  internal::RunChunks(chunks, [&](size_t chunk) {
    auto [first, last] = ParallelChunkBounds(begin, end, grain, chunk);
    for (size_t i = first; i < last; ++i) body(i);
  });
}

/// \brief Deterministic chunked reduction over [begin, end).
///
/// `map(first, last, chunk_index)` computes the partial value of one fixed
/// chunk; `combine(accumulator, partial)` folds the partials in ascending
/// chunk order on the calling thread. Because both the chunk boundaries and
/// the combine order are fixed, the result — including floating-point
/// grouping — is independent of the thread count.
template <typename T, typename Map, typename Combine>
T ParallelReduce(size_t begin, size_t end, size_t grain, T identity,
                 const Map& map, const Combine& combine) {
  if (begin >= end) return identity;
  size_t chunks = ParallelChunkCount(begin, end, grain);
  std::vector<T> partials(chunks, identity);
  internal::RunChunks(chunks, [&](size_t chunk) {
    auto [first, last] = ParallelChunkBounds(begin, end, grain, chunk);
    partials[chunk] = map(first, last, chunk);
  });
  T result = std::move(identity);
  for (size_t c = 0; c < chunks; ++c) {
    result = combine(std::move(result), std::move(partials[c]));
  }
  return result;
}

/// Default grain for element-cheap loops (a few hundred ns per element).
inline constexpr size_t kDefaultGrain = 256;

}  // namespace rlbench

#endif  // RLBENCH_SRC_COMMON_PARALLEL_H_
