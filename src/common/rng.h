// Deterministic random number generation. Every stochastic component in
// rlbench takes an explicit seed so that all experiments are reproducible
// bit-for-bit across runs.
#ifndef RLBENCH_SRC_COMMON_RNG_H_
#define RLBENCH_SRC_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace rlbench {

/// \brief Seeded pseudo-random generator wrapping std::mt19937_64.
///
/// Provides the small set of draws the library needs (uniform ints/reals,
/// Gaussians, Bernoulli, shuffles, subset sampling) behind one interface so
/// that call sites never instantiate distributions ad hoc.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform size_t index in [0, n). Requires n > 0.
  size_t Index(size_t n);

  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean = 0.0, double stddev = 1.0);

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of the given vector.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->empty()) return;
    for (size_t i = values->size() - 1; i > 0; --i) {
      size_t j = Index(i + 1);
      std::swap((*values)[i], (*values)[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (k capped at n), in random order.
  std::vector<size_t> SampleIndices(size_t n, size_t k);

  /// Derive an independent child seed; successive calls yield a stream of
  /// decorrelated seeds (SplitMix64 over an internal counter).
  uint64_t Fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  uint64_t fork_counter_ = 0;
};

/// SplitMix64 mixing function; used for stable hashing and seed derivation.
uint64_t SplitMix64(uint64_t x);

/// \brief Seeded random bijection over [0, n) with O(1) evaluation both ways.
///
/// A balanced Feistel network over the next power-of-two domain, cycle-walked
/// back into [0, n): Forward(i) visits every index exactly once, Inverse is
/// its exact inverse, and both are pure functions of (n, seed, i). This is
/// what lets the streaming dataset generator "shuffle" millions of records
/// without materializing a permutation vector — record `position` maps to
/// generation slot Forward(position) on demand, and ground truth recovers
/// positions with Inverse, all in O(1) memory.
class FeistelPermutation {
 public:
  /// Permutation over [0, n). n == 0 yields the empty permutation.
  FeistelPermutation(uint64_t n, uint64_t seed);

  uint64_t size() const { return n_; }

  /// Image of i under the permutation. Requires i < size().
  uint64_t Forward(uint64_t i) const;

  /// Preimage of i: Forward(Inverse(i)) == i. Requires i < size().
  uint64_t Inverse(uint64_t i) const;

 private:
  static constexpr int kRounds = 4;

  uint64_t Encrypt(uint64_t value) const;
  uint64_t Decrypt(uint64_t value) const;

  uint64_t n_ = 0;
  int half_bits_ = 1;       // bits per Feistel half; domain is 2^(2*half)
  uint64_t half_mask_ = 1;  // (1 << half_bits_) - 1
  uint64_t round_keys_[kRounds] = {};
};

/// \brief Split a base seed into independent per-stream seeds.
///
/// Stream `index` depends only on (base_seed, index) — never on how much
/// randomness the other streams consumed — so parallel chunks seeded with
/// SplitSeed(base, chunk_index) draw identical values at any thread count.
/// This is the RNG half of the determinism contract in common/parallel.h.
uint64_t SplitSeed(uint64_t base_seed, uint64_t index);

}  // namespace rlbench

#endif  // RLBENCH_SRC_COMMON_RNG_H_
