// Lightweight Status / Result error model, in the style used by database
// engines (Arrow, RocksDB): recoverable failures are returned as values,
// never thrown across public API boundaries.
#ifndef RLBENCH_SRC_COMMON_STATUS_H_
#define RLBENCH_SRC_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace rlbench {

/// Category of a failure carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kInternal,
};

/// \brief Value-semantic error carrier.
///
/// A Status is either OK (the default) or carries a code plus a
/// human-readable message. It is cheap to copy when OK.
class Status {
 public:
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Render "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// \brief Either a value of type T or a failure Status.
///
/// Mirrors arrow::Result: callers must check ok() before dereferencing.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Return the value, or the given fallback if this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagate a non-OK Status from an expression to the caller.
#define RLBENCH_RETURN_NOT_OK(expr)            \
  do {                                         \
    ::rlbench::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (false)

}  // namespace rlbench

#endif  // RLBENCH_SRC_COMMON_STATUS_H_
