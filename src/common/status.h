// Lightweight Status / Result error model, in the style used by database
// engines (Arrow, RocksDB): recoverable failures are returned as values,
// never thrown across public API boundaries.
#ifndef RLBENCH_SRC_COMMON_STATUS_H_
#define RLBENCH_SRC_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

#include "common/check.h"

namespace rlbench {

/// Category of a failure carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kResourceExhausted,
  kInternal,
  kDeadlineExceeded,
};

/// Stable name of a status code ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// \brief Value-semantic error carrier.
///
/// A Status is either OK (the default) or carries a code plus a
/// human-readable message. It is cheap to copy when OK. The class itself
/// is [[nodiscard]]: any call that produces a Status and drops it on the
/// floor is a compile warning (an error under RLBENCH_WERROR and in
/// tests/static/). Explicit `(void)` discards are banned by repo lint —
/// handle the status or propagate it with RLBENCH_RETURN_NOT_OK.
class [[nodiscard]] Status {
 public:
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  [[nodiscard]] static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Render "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// \brief Either a value of type T or a failure Status.
///
/// Mirrors arrow::Result: callers must check ok() before dereferencing.
/// Dereferencing an error Result is a contract violation; it is caught by
/// RLBENCH_DCHECK in debug builds (release builds would otherwise read a
/// disengaged optional — undefined behaviour with no diagnostic).
/// [[nodiscard]] like Status: a discarded Result is a discarded error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    RLBENCH_DCHECK(ok());
    return *value_;
  }
  T& value() & {
    RLBENCH_DCHECK(ok());
    return *value_;
  }
  T&& value() && {
    RLBENCH_DCHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& {
    RLBENCH_DCHECK(ok());
    return *value_;
  }
  T& operator*() & {
    RLBENCH_DCHECK(ok());
    return *value_;
  }
  const T* operator->() const {
    RLBENCH_DCHECK(ok());
    return &*value_;
  }
  T* operator->() {
    RLBENCH_DCHECK(ok());
    return &*value_;
  }

  /// Return a copy of the value, or the given fallback if this Result holds
  /// an error.
  T ValueOr(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }
  /// Rvalue overload: moves the stored value out instead of copying it.
  T ValueOr(T fallback) && {
    return ok() ? std::move(*value_) : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagate a non-OK Status from an expression to the caller.
#define RLBENCH_RETURN_NOT_OK(expr)            \
  do {                                         \
    ::rlbench::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (false)

// Evaluate `rexpr` (a Result<T> expression); on error return its Status,
// otherwise move the value into `lhs`. `lhs` may declare a new variable
// (`RLBENCH_ASSIGN_OR_RETURN(auto table, ReadTableCsv(path, "d1"))`) or
// assign to an existing one.
#define RLBENCH_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                   \
  if (!result.ok()) return result.status();                \
  lhs = std::move(result).value()

#define RLBENCH_ASSIGN_OR_RETURN_CONCAT_INNER_(a, b) a##b
#define RLBENCH_ASSIGN_OR_RETURN_CONCAT_(a, b) \
  RLBENCH_ASSIGN_OR_RETURN_CONCAT_INNER_(a, b)

#define RLBENCH_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  RLBENCH_ASSIGN_OR_RETURN_IMPL_(                                         \
      RLBENCH_ASSIGN_OR_RETURN_CONCAT_(rlbench_result_, __LINE__), lhs,   \
      rexpr)

}  // namespace rlbench

#endif  // RLBENCH_SRC_COMMON_STATUS_H_
