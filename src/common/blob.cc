#include "common/blob.h"

#include <bit>
#include <cstring>

namespace rlbench {

namespace {

// All multi-byte values are serialized little-endian byte by byte, so the
// format is identical on any host (and the bytes are what they say they
// are even on a big-endian machine).
template <typename T>
void AppendLe(std::string* out, T value) {
  for (size_t i = 0; i < sizeof(T); ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

template <typename T>
T LoadLe(const char* bytes) {
  T value = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    value |= static_cast<T>(static_cast<uint8_t>(bytes[i])) << (8 * i);
  }
  return value;
}

}  // namespace

void BlobWriter::WriteU8(uint8_t value) {
  data_.push_back(static_cast<char>(value));
}

void BlobWriter::WriteU32(uint32_t value) { AppendLe(&data_, value); }

void BlobWriter::WriteU64(uint64_t value) { AppendLe(&data_, value); }

void BlobWriter::WriteI32(int32_t value) {
  AppendLe(&data_, static_cast<uint32_t>(value));
}

void BlobWriter::WriteDouble(double value) {
  AppendLe(&data_, std::bit_cast<uint64_t>(value));
}

void BlobWriter::WriteFloat(float value) {
  AppendLe(&data_, std::bit_cast<uint32_t>(value));
}

void BlobWriter::WriteString(const std::string& value) {
  WriteU64(value.size());
  data_.append(value);
}

void BlobWriter::WriteDoubleVec(const std::vector<double>& values) {
  WriteU64(values.size());
  for (double v : values) WriteDouble(v);
}

void BlobWriter::WriteFloatVec(const std::vector<float>& values) {
  WriteU64(values.size());
  for (float v : values) WriteFloat(v);
}

Status BlobReader::Need(size_t bytes) const {
  if (Remaining() < bytes) {
    return Status::IOError("blob: truncated (need " + std::to_string(bytes) +
                           " bytes, have " + std::to_string(Remaining()) +
                           ")");
  }
  return Status::OK();
}

Result<uint8_t> BlobReader::ReadU8() {
  RLBENCH_RETURN_NOT_OK(Need(1));
  return static_cast<uint8_t>((*data_)[pos_++]);
}

Result<uint32_t> BlobReader::ReadU32() {
  RLBENCH_RETURN_NOT_OK(Need(4));
  uint32_t value = LoadLe<uint32_t>(data_->data() + pos_);
  pos_ += 4;
  return value;
}

Result<uint64_t> BlobReader::ReadU64() {
  RLBENCH_RETURN_NOT_OK(Need(8));
  uint64_t value = LoadLe<uint64_t>(data_->data() + pos_);
  pos_ += 8;
  return value;
}

Result<int32_t> BlobReader::ReadI32() {
  RLBENCH_ASSIGN_OR_RETURN(uint32_t raw, ReadU32());
  return static_cast<int32_t>(raw);
}

Result<double> BlobReader::ReadDouble() {
  RLBENCH_ASSIGN_OR_RETURN(uint64_t raw, ReadU64());
  return std::bit_cast<double>(raw);
}

Result<float> BlobReader::ReadFloat() {
  RLBENCH_ASSIGN_OR_RETURN(uint32_t raw, ReadU32());
  return std::bit_cast<float>(raw);
}

Result<std::string> BlobReader::ReadString() {
  RLBENCH_ASSIGN_OR_RETURN(uint64_t size, ReadU64());
  RLBENCH_RETURN_NOT_OK(Need(size));
  std::string value = data_->substr(pos_, size);
  pos_ += size;
  return value;
}

Result<std::vector<double>> BlobReader::ReadDoubleVec() {
  RLBENCH_ASSIGN_OR_RETURN(uint64_t size, ReadU64());
  // Divide instead of multiplying so a mangled length prefix near 2^64
  // cannot wrap the byte count past the bounds check.
  if (size > Remaining() / 8) return Status::IOError("blob: truncated vector");
  std::vector<double> values(size);
  for (auto& v : values) v = std::move(ReadDouble()).value();
  return values;
}

Result<std::vector<float>> BlobReader::ReadFloatVec() {
  RLBENCH_ASSIGN_OR_RETURN(uint64_t size, ReadU64());
  if (size > Remaining() / 4) return Status::IOError("blob: truncated vector");
  std::vector<float> values(size);
  for (auto& v : values) v = std::move(ReadFloat()).value();
  return values;
}

}  // namespace rlbench
