#include "common/table_printer.h"

#include <algorithm>

namespace rlbench {

void TablePrinter::SetHeader(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  grow(header_);
  for (const auto& row : rows_) grow(row);

  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      os << cell << std::string(widths[i] - cell.size() + 2, ' ');
    }
    os << '\n';
  };

  size_t total = 0;
  for (size_t w : widths) total += w + 2;

  if (!title_.empty()) {
    os << title_ << '\n' << std::string(total, '=') << '\n';
  }
  if (!header_.empty()) {
    print_row(header_);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) {
    if (row.empty()) {
      os << std::string(total, '-') << '\n';
    } else {
      print_row(row);
    }
  }
}

}  // namespace rlbench
