// Text table formatting used by the bench harnesses to print the paper's
// tables and figure data series in aligned columns.
#ifndef RLBENCH_SRC_COMMON_TABLE_PRINTER_H_
#define RLBENCH_SRC_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace rlbench {

/// \brief Accumulates rows of string cells and renders them aligned.
///
/// The first row added via SetHeader is underlined in the output. Numeric
/// alignment is not attempted; cells are padded to the widest entry of the
/// column.
class TablePrinter {
 public:
  explicit TablePrinter(std::string title) : title_(std::move(title)) {}

  void SetHeader(std::vector<std::string> cells);
  void AddRow(std::vector<std::string> cells);
  /// Insert a horizontal separator line before the next row.
  void AddSeparator();

  /// Render the table to the stream.
  void Print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  // Separator rows are encoded as empty cell vectors.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rlbench

#endif  // RLBENCH_SRC_COMMON_TABLE_PRINTER_H_
