#include "core/practical.h"

#include <algorithm>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rlbench::core {

PracticalMeasures ComputePractical(const std::vector<MatcherScore>& scores) {
  PracticalMeasures out;
  double best_any = 0.0;
  for (const auto& score : scores) {
    // Matcher F1s feed directly into NLB/LBM; an out-of-range score means
    // the matcher (not this aggregation) is broken.
    RLBENCH_CHECK_PROB(score.f1);
    // Zero-shot rows (EnsembleLink) train on no labels: they are neither
    // the linear anchor nor a learning-based ceiling, so they feed into
    // neither NLB bucket nor LBM. Reported alongside, never aggregated.
    if (score.group == matchers::MatcherGroup::kZeroShot) continue;
    best_any = std::max(best_any, score.f1);
    if (score.group == matchers::MatcherGroup::kLinear) {
      out.best_linear_f1 = std::max(out.best_linear_f1, score.f1);
    } else {
      out.best_nonlinear_f1 = std::max(out.best_nonlinear_f1, score.f1);
    }
  }
  out.non_linear_boost = out.best_nonlinear_f1 - out.best_linear_f1;
  out.learning_based_margin = 1.0 - best_any;
  RLBENCH_CHECK_FINITE(out.non_linear_boost);
  RLBENCH_CHECK_PROB(out.learning_based_margin);
  return out;
}

std::vector<MatcherScore> ScoreLineup(
    const matchers::MatchingContext& context,
    std::vector<matchers::RegisteredMatcher>* lineup) {
  std::vector<MatcherScore> scores;
  scores.reserve(lineup->size());
  for (auto& entry : *lineup) {
    MatcherScore score;
    score.name = entry.matcher->name();
    score.group = entry.group;
    // Span named after the matcher so lineup sweeps read directly off the
    // trace; the label string outlives the span (required by TraceSpan).
    std::string span_name = "matcher/" + score.name;
    RLBENCH_TRACE_SPAN(span_name.c_str());
    score.f1 = entry.matcher->TestF1(context);
    RLBENCH_COUNTER_INC("matchers/scored");
    scores.push_back(std::move(score));
  }
  return scores;
}

}  // namespace rlbench::core
