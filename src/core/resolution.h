// End-of-pipeline resolution for Clean-Clean ER: each record of either
// source matches at most one record of the other, so per-pair matcher
// scores are turned into a one-to-one mapping. This is the global
// constraint GNEM's interaction module approximates, exposed as a reusable
// post-processing step for any matcher.
#ifndef RLBENCH_SRC_CORE_RESOLUTION_H_
#define RLBENCH_SRC_CORE_RESOLUTION_H_

#include <cstdint>
#include <vector>

#include "data/task.h"

namespace rlbench::core {

struct ResolutionOptions {
  /// Pairs scoring below the threshold are never matched.
  double score_threshold = 0.5;
};

/// Greedy maximum-score one-to-one assignment: pairs are visited in
/// descending score order and accepted when both records are still free.
/// Returns one 0/1 decision per input pair (in input order). Greedy is a
/// 1/2-approximation of the optimal matching and is the standard choice in
/// ER systems.
std::vector<uint8_t> ResolveOneToOne(
    const std::vector<data::LabeledPair>& pairs,
    const std::vector<double>& scores, const ResolutionOptions& options = {});

/// Convenience: F1 before/after enforcing one-to-one on a scored test set.
struct ResolutionImpact {
  double f1_before = 0.0;
  double f1_after = 0.0;
};
ResolutionImpact EvaluateResolution(
    const std::vector<data::LabeledPair>& pairs,
    const std::vector<double>& scores, const ResolutionOptions& options = {});

}  // namespace rlbench::core

#endif  // RLBENCH_SRC_CORE_RESOLUTION_H_
