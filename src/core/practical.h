// The two a-posteriori (practical) difficulty measures of Section III-C:
// non-linear boost (NLB) and learning-based margin (LBM), aggregated from
// per-matcher F1 scores.
#ifndef RLBENCH_SRC_CORE_PRACTICAL_H_
#define RLBENCH_SRC_CORE_PRACTICAL_H_

#include <string>
#include <vector>

#include "matchers/registry.h"

namespace rlbench::core {

/// One matcher's result on one benchmark.
struct MatcherScore {
  std::string name;
  matchers::MatcherGroup group;
  double f1 = 0.0;
};

struct PracticalMeasures {
  /// NLB = max F1 of non-linear (DL + classic ML) matchers minus max F1 of
  /// the linear (ESDE) matchers. MatcherGroup::kZeroShot rows are excluded
  /// from every field here: a training-free matcher is neither the linear
  /// anchor nor learning-based, so counting it would corrupt NLB and LBM.
  double non_linear_boost = 0.0;
  /// LBM = 1 - max F1 over every learning-based matcher.
  double learning_based_margin = 0.0;
  double best_nonlinear_f1 = 0.0;
  double best_linear_f1 = 0.0;
};

PracticalMeasures ComputePractical(const std::vector<MatcherScore>& scores);

/// Run every matcher of the line-up on the task and collect the scores.
std::vector<MatcherScore> ScoreLineup(
    const matchers::MatchingContext& context,
    std::vector<matchers::RegisteredMatcher>* lineup);

}  // namespace rlbench::core

#endif  // RLBENCH_SRC_CORE_PRACTICAL_H_
