// The Section VI methodology for constructing new benchmarks:
//   1. take a dataset pair with complete ground truth,
//   2. block it with a recall-tuned state-of-the-art blocker (the
//      DeepBlocker simulator) so that PC >= the target while PQ is
//      maximised,
//   3. label the surviving candidate pairs from the ground truth and split
//      them 3:1:1 into train / validation / test,
//   4. (the caller then applies the Section III measures to decide whether
//      the benchmark is challenging).
#ifndef RLBENCH_SRC_CORE_BENCHMARK_BUILDER_H_
#define RLBENCH_SRC_CORE_BENCHMARK_BUILDER_H_

#include <cstdint>

#include "block/deepblocker_sim.h"
#include "common/status.h"
#include "data/task.h"
#include "datagen/source_builder.h"
#include "datagen/spec.h"

namespace rlbench::core {

struct NewBenchmarkOptions {
  double scale = 1.0;
  double min_recall = 0.9;
  int k_max = 64;
  size_t embedding_dim = 48;
  uint64_t seed = 3;
};

struct NewBenchmark {
  data::MatchingTask task;
  block::BlockingRun blocking;
  size_t d1_size = 0;
  size_t d2_size = 0;
  size_t num_matches = 0;  // |M|: ground-truth duplicates before blocking
};

/// Execute steps 1-3 of the methodology for one source dataset spec.
/// Invalid options (non-positive or non-finite scale, min_recall outside
/// (0, 1], k_max < 1, embedding_dim < 1) are InvalidArgument.
/// Failpoint: core/build_benchmark.
[[nodiscard]] Result<NewBenchmark> BuildNewBenchmark(const datagen::SourceDatasetSpec& spec,
                                       const NewBenchmarkOptions& options = {});

}  // namespace rlbench::core

#endif  // RLBENCH_SRC_CORE_BENCHMARK_BUILDER_H_
