// The 17 classification-complexity measures of Table I, computed on the
// paper's two-dimensional [CS, JS] pair representation: feature-based (f1,
// f1v, f2, f3), linearity (l1, l2), neighbourhood (n1, n2, n3, n4, t1,
// lsc), network (den, cls, hub) and class balance (c1, c2).
//
// All values lie in [0, 1]; higher means a more complex classification
// task. The excluded measures (t2, t3, t4, f4, l3) follow the paper's
// exclusion rationale for two-feature instances.
#ifndef RLBENCH_SRC_CORE_COMPLEXITY_H_
#define RLBENCH_SRC_CORE_COMPLEXITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/linearity.h"

namespace rlbench::core {

struct ComplexityOptions {
  /// The neighbourhood and network measures are O(n^2); larger inputs are
  /// stratified-subsampled to this many points.
  size_t max_points = 2000;
  /// Gower-distance threshold of the epsilon-NN network graph.
  double epsilon = 0.15;
  uint64_t seed = 97;
};

struct ComplexityReport {
  // Feature-based.
  double f1 = 0.0, f1v = 0.0, f2 = 0.0, f3 = 0.0;
  // Linearity.
  double l1 = 0.0, l2 = 0.0;
  // Neighbourhood.
  double n1 = 0.0, n2 = 0.0, n3 = 0.0, n4 = 0.0, t1 = 0.0, lsc = 0.0;
  // Network.
  double den = 0.0, cls = 0.0, hub = 0.0;
  // Class balance.
  double c1 = 0.0, c2 = 0.0;

  /// Mean of the 17 measures (the per-dataset average in Figures 2 and 5).
  double Average() const;

  /// The measures as (short name, value) in Table I order.
  std::vector<std::pair<std::string, double>> Items() const;
};

/// Compute all measures for the labelled feature points of one benchmark.
ComplexityReport ComputeComplexity(const std::vector<FeaturePoint>& points,
                                   const ComplexityOptions& options = {});

/// \brief The measures the paper EXCLUDES from the aggregate (Section
/// III-B): the dimensionality measures t2/t3/t4 are constants for the
/// two-feature representation, f4 collapses onto f3 and l3 onto l2.
///
/// They are implemented so the exclusion rationale is verifiable, but they
/// never enter ComplexityReport::Average().
struct ExcludedMeasures {
  double t2 = 0.0;   // average number of features per point: d / n
  double t3 = 0.0;   // PCA dimensionality per point
  double t4 = 0.0;   // ratio of the PCA dimension to the raw dimension
  double f4 = 0.0;   // collective feature efficiency
  double l3 = 0.0;   // non-linearity of the linear classifier
};

ExcludedMeasures ComputeExcludedMeasures(
    const std::vector<FeaturePoint>& points,
    const ComplexityOptions& options = {});

}  // namespace rlbench::core

#endif  // RLBENCH_SRC_CORE_COMPLEXITY_H_
