#include "core/benchmark_builder.h"

#include <unordered_set>

#include "data/split.h"

namespace rlbench::core {

NewBenchmark BuildNewBenchmark(const datagen::SourceDatasetSpec& spec,
                               const NewBenchmarkOptions& options) {
  // Step 1: the dataset pair with complete ground truth.
  datagen::SourcePair source =
      datagen::BuildSourceDataset(spec, options.scale);

  // Step 2: recall-tuned blocking.
  block::DeepBlockerSim blocker(options.embedding_dim,
                                options.seed ^ spec.seed);
  block::DeepBlockerSim::TuneOptions tune;
  tune.min_recall = options.min_recall;
  tune.k_max = options.k_max;
  block::BlockingRun run = blocker.TuneForRecall(source, tune);

  // Step 3: label candidates from the ground truth and split 3:1:1.
  std::unordered_set<uint64_t> truth;
  truth.reserve(source.matches.size() * 2);
  for (const auto& [l, r] : source.matches) {
    truth.insert((static_cast<uint64_t>(l) << 32) | r);
  }
  std::vector<data::LabeledPair> pairs;
  pairs.reserve(run.candidates.size());
  for (const auto& [l, r] : run.candidates) {
    bool is_match = truth.count((static_cast<uint64_t>(l) << 32) | r) != 0;
    pairs.push_back({l, r, is_match});
  }

  NewBenchmark out;
  out.d1_size = source.d1.size();
  out.d2_size = source.d2.size();
  out.num_matches = source.matches.size();
  out.blocking = run;
  out.task = data::MatchingTask(spec.id, std::move(source.d1),
                                std::move(source.d2));
  auto split = data::SplitPairs(pairs, data::SplitRatio{3, 1, 1},
                                options.seed ^ 0x5217ULL);
  out.task.set_train(std::move(split.train));
  out.task.set_valid(std::move(split.valid));
  out.task.set_test(std::move(split.test));
  return out;
}

}  // namespace rlbench::core
