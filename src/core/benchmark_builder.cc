#include "core/benchmark_builder.h"

#include <cmath>
#include <unordered_set>

#include "data/split.h"
#include "fault/failpoint.h"

namespace rlbench::core {

Result<NewBenchmark> BuildNewBenchmark(const datagen::SourceDatasetSpec& spec,
                                       const NewBenchmarkOptions& options) {
  if (!std::isfinite(options.scale) || options.scale <= 0.0) {
    return Status::InvalidArgument("scale must be positive and finite");
  }
  if (!std::isfinite(options.min_recall) || options.min_recall <= 0.0 ||
      options.min_recall > 1.0) {
    return Status::InvalidArgument("min_recall must be in (0, 1]");
  }
  if (options.k_max < 1) {
    return Status::InvalidArgument("k_max must be >= 1");
  }
  if (options.embedding_dim < 1) {
    return Status::InvalidArgument("embedding_dim must be >= 1");
  }
  if (auto hit = RLBENCH_FAULT_POINT("core/build_benchmark")) {
    if (hit.kind == fault::FaultKind::kAlloc) {
      return Status::ResourceExhausted("injected: building " + spec.id);
    }
    return Status::Internal("injected: building " + spec.id);
  }

  // Step 1: the dataset pair with complete ground truth.
  datagen::SourcePair source =
      datagen::BuildSourceDataset(spec, options.scale);

  // Step 2: recall-tuned blocking.
  block::DeepBlockerSim blocker(options.embedding_dim,
                                options.seed ^ spec.seed);
  block::DeepBlockerSim::TuneOptions tune;
  tune.min_recall = options.min_recall;
  tune.k_max = options.k_max;
  block::BlockingRun run = blocker.TuneForRecall(source, tune);

  // Step 3: label candidates from the ground truth and split 3:1:1.
  std::unordered_set<uint64_t> truth;
  truth.reserve(source.matches.size() * 2);
  for (const auto& [l, r] : source.matches) {
    truth.insert((static_cast<uint64_t>(l) << 32) | r);
  }
  std::vector<data::LabeledPair> pairs;
  pairs.reserve(run.candidates.size());
  for (const auto& [l, r] : run.candidates) {
    bool is_match = truth.count((static_cast<uint64_t>(l) << 32) | r) != 0;
    pairs.push_back({l, r, is_match});
  }

  NewBenchmark out;
  out.d1_size = source.d1.size();
  out.d2_size = source.d2.size();
  out.num_matches = source.matches.size();
  out.blocking = run;
  out.task = data::MatchingTask(spec.id, std::move(source.d1),
                                std::move(source.d2));
  auto split = data::SplitPairs(pairs, data::SplitRatio{3, 1, 1},
                                options.seed ^ 0x5217ULL);
  out.task.set_train(std::move(split.train));
  out.task.set_valid(std::move(split.valid));
  out.task.set_test(std::move(split.test));
  return out;
}

}  // namespace rlbench::core
