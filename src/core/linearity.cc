#include "core/linearity.h"

#include "common/check.h"
#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ml/metrics.h"
#include "text/similarity.h"

namespace rlbench::core {

namespace {
// A token-set similarity costs a few hundred ns; chunks of pairs this size
// amortise pool dispatch while leaving enough chunks to balance.
constexpr size_t kPairGrain = 512;
}  // namespace

std::vector<FeaturePoint> PairFeaturePoints(
    const matchers::MatchingContext& context) {
  RLBENCH_TRACE_SPAN("linearity/pair_features");
  auto all = context.task().AllPairs();
  RLBENCH_COUNTER_ADD("linearity/pairs_scored", all.size());
  std::vector<FeaturePoint> points(all.size());
  // The MatchingContext constructor warmed every token slot, so the caches
  // freeze for the duration of the concurrent scoring pass.
  context.left().Freeze();
  context.right().Freeze();
  ParallelFor(0, all.size(), kPairGrain, [&](size_t i) {
    const auto& a = context.left().TokenSetAll(all[i].left);
    const auto& b = context.right().TokenSetAll(all[i].right);
    points[i] = {text::CosineSimilarity(a, b), text::JaccardSimilarity(a, b),
                 all[i].is_match};
    RLBENCH_DCHECK_PROB(points[i].cs);
    RLBENCH_DCHECK_PROB(points[i].js);
  });
  context.left().Thaw();
  context.right().Thaw();
  return points;
}

std::vector<LinearityResult> ComputeLinearityPerAttribute(
    const matchers::MatchingContext& context) {
  RLBENCH_TRACE_SPAN("linearity/per_attribute");
  size_t num_attrs = context.task().left().schema().num_attributes();
  auto all = context.task().AllPairs();
  std::vector<uint8_t> labels;
  labels.reserve(all.size());
  for (const auto& pair : all) labels.push_back(pair.is_match ? 1 : 0);

  std::vector<LinearityResult> results;
  results.reserve(num_attrs);
  std::vector<double> cosine(all.size());
  std::vector<double> jaccard(all.size());
  context.left().Freeze();
  context.right().Freeze();
  for (size_t a = 0; a < num_attrs; ++a) {
    ParallelFor(0, all.size(), kPairGrain, [&](size_t i) {
      const auto& left = context.left().TokenSetAttr(all[i].left, a);
      const auto& right = context.right().TokenSetAttr(all[i].right, a);
      cosine[i] = text::CosineSimilarity(left, right);
      jaccard[i] = text::JaccardSimilarity(left, right);
    });
    auto cs = ml::SweepThresholds(cosine, labels);
    auto js = ml::SweepThresholds(jaccard, labels);
    results.push_back(
        {cs.best_f1, cs.best_threshold, js.best_f1, js.best_threshold});
  }
  context.left().Thaw();
  context.right().Thaw();
  return results;
}

LinearityResult ComputeLinearity(const matchers::MatchingContext& context) {
  RLBENCH_TRACE_SPAN("linearity/compute");
  auto points = PairFeaturePoints(context);
  std::vector<double> cosine(points.size());
  std::vector<double> jaccard(points.size());
  std::vector<uint8_t> labels(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    cosine[i] = points[i].cs;
    jaccard[i] = points[i].js;
    labels[i] = points[i].is_match ? 1 : 0;
  }
  auto cs = ml::SweepThresholds(cosine, labels);
  auto js = ml::SweepThresholds(jaccard, labels);
  RLBENCH_CHECK_PROB(cs.best_f1);
  RLBENCH_CHECK_PROB(js.best_f1);
  return {cs.best_f1, cs.best_threshold, js.best_f1, js.best_threshold};
}

}  // namespace rlbench::core
