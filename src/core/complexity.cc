#include "core/complexity.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "ml/dataset.h"
#include "ml/linear_svm.h"

namespace rlbench::core {

namespace {

// Chunk width for the parallel O(n^2) loops. Every chunked reduction below
// uses this fixed grain, so the floating-point grouping — and therefore
// every reported measure — is a function of the input alone, not of the
// thread count (see the determinism contract in common/parallel.h).
constexpr size_t kPointGrain = 128;

struct Point {
  double x0 = 0.0;
  double x1 = 0.0;
  bool label = false;
};

/// Gower distance on two [0,1] features: mean absolute difference.
double Gower(const Point& a, const Point& b) {
  return 0.5 * (std::fabs(a.x0 - b.x0) + std::fabs(a.x1 - b.x1));
}

std::vector<Point> Subsample(const std::vector<FeaturePoint>& input,
                             size_t max_points, uint64_t seed) {
  std::vector<Point> positives;
  std::vector<Point> negatives;
  for (const auto& p : input) {
    (p.is_match ? positives : negatives).push_back({p.cs, p.js, p.is_match});
  }
  if (input.size() <= max_points) {
    std::vector<Point> all = positives;
    all.insert(all.end(), negatives.begin(), negatives.end());
    return all;
  }
  // Stratified: keep the class proportions of the input.
  double ratio = static_cast<double>(max_points) /
                 static_cast<double>(input.size());
  size_t keep_pos = std::max<size_t>(
      2, static_cast<size_t>(ratio * static_cast<double>(positives.size())));
  size_t keep_neg = max_points - std::min(max_points, keep_pos);
  Rng rng(seed);
  auto take = [&rng](std::vector<Point>& from, size_t k) {
    k = std::min(k, from.size());
    auto indices = rng.SampleIndices(from.size(), k);
    std::vector<Point> out;
    out.reserve(k);
    for (size_t i : indices) out.push_back(from[i]);
    return out;
  };
  std::vector<Point> sample = take(positives, keep_pos);
  auto negs = take(negatives, keep_neg);
  sample.insert(sample.end(), negs.begin(), negs.end());
  return sample;
}

// --- Feature-based measures -------------------------------------------------

double FisherF1(const std::vector<Point>& points) {
  double best_ratio = 0.0;
  for (int f = 0; f < 2; ++f) {
    auto value = [f](const Point& p) { return f == 0 ? p.x0 : p.x1; };
    double sum[2] = {0, 0};
    double count[2] = {0, 0};
    for (const auto& p : points) {
      sum[p.label] += value(p);
      count[p.label] += 1.0;
    }
    if (count[0] == 0.0 || count[1] == 0.0) return 0.0;
    double mean[2] = {sum[0] / count[0], sum[1] / count[1]};
    double overall = (sum[0] + sum[1]) / (count[0] + count[1]);
    double between = count[0] * (mean[0] - overall) * (mean[0] - overall) +
                     count[1] * (mean[1] - overall) * (mean[1] - overall);
    double within = 0.0;
    for (const auto& p : points) {
      double d = value(p) - mean[p.label];
      within += d * d;
    }
    if (within > 1e-12) best_ratio = std::max(best_ratio, between / within);
  }
  return 1.0 / (1.0 + best_ratio);
}

double FisherF1v(const std::vector<Point>& points) {
  double count[2] = {0, 0};
  double mean[2][2] = {{0, 0}, {0, 0}};
  for (const auto& p : points) {
    mean[p.label][0] += p.x0;
    mean[p.label][1] += p.x1;
    count[p.label] += 1.0;
  }
  if (count[0] == 0.0 || count[1] == 0.0) return 0.0;
  for (int c = 0; c < 2; ++c) {
    mean[c][0] /= count[c];
    mean[c][1] /= count[c];
  }
  // Pooled within-class covariance (2x2) with a small ridge.
  double w00 = 1e-6, w01 = 0.0, w11 = 1e-6;
  for (const auto& p : points) {
    double d0 = p.x0 - mean[p.label][0];
    double d1 = p.x1 - mean[p.label][1];
    w00 += d0 * d0;
    w01 += d0 * d1;
    w11 += d1 * d1;
  }
  double n = count[0] + count[1];
  w00 /= n;
  w01 /= n;
  w11 /= n;
  double diff0 = mean[1][0] - mean[0][0];
  double diff1 = mean[1][1] - mean[0][1];
  double det = w00 * w11 - w01 * w01;
  if (std::fabs(det) < 1e-18) return 0.0;
  // d = W^-1 (m1 - m0)
  double d0 = (w11 * diff0 - w01 * diff1) / det;
  double d1 = (-w01 * diff0 + w00 * diff1) / det;
  double numer = d0 * diff0 + d1 * diff1;  // d^T B d = (d.(m1-m0))^2 / |..|
  numer = numer * numer;
  double denom = d0 * (w00 * d0 + w01 * d1) + d1 * (w01 * d0 + w11 * d1);
  if (denom < 1e-18) return 0.0;
  double df = numer / denom;
  return 1.0 / (1.0 + df);
}

void FeatureRanges(const std::vector<Point>& points, int f, double out_min[2],
                   double out_max[2]) {
  out_min[0] = out_min[1] = std::numeric_limits<double>::infinity();
  out_max[0] = out_max[1] = -std::numeric_limits<double>::infinity();
  for (const auto& p : points) {
    double v = f == 0 ? p.x0 : p.x1;
    out_min[p.label] = std::min(out_min[p.label], v);
    out_max[p.label] = std::max(out_max[p.label], v);
  }
}

double VolumeOverlapF2(const std::vector<Point>& points) {
  double product = 1.0;
  for (int f = 0; f < 2; ++f) {
    double lo[2], hi[2];
    FeatureRanges(points, f, lo, hi);
    double overlap = std::max(
        0.0, std::min(hi[0], hi[1]) - std::max(lo[0], lo[1]));
    double range = std::max(hi[0], hi[1]) - std::min(lo[0], lo[1]);
    product *= range > 1e-12 ? overlap / range : 0.0;
  }
  return product;
}

double FeatureEfficiencyF3(const std::vector<Point>& points) {
  double best = 1.0;  // fraction of points in the overlap region (min over f)
  for (int f = 0; f < 2; ++f) {
    double lo[2], hi[2];
    FeatureRanges(points, f, lo, hi);
    double overlap_lo = std::max(lo[0], lo[1]);
    double overlap_hi = std::min(hi[0], hi[1]);
    size_t inside = 0;
    for (const auto& p : points) {
      double v = f == 0 ? p.x0 : p.x1;
      if (v >= overlap_lo && v <= overlap_hi) ++inside;
    }
    best = std::min(best, static_cast<double>(inside) /
                              static_cast<double>(points.size()));
  }
  return best;
}

// --- Neighbourhood machinery -------------------------------------------------

struct NeighborInfo {
  double nearest_any = std::numeric_limits<double>::infinity();
  size_t nearest_any_index = 0;
  double nearest_same = std::numeric_limits<double>::infinity();
  double nearest_enemy = std::numeric_limits<double>::infinity();
};

std::vector<NeighborInfo> ComputeNeighbors(const std::vector<Point>& points) {
  RLBENCH_TRACE_SPAN("complexity/neighbors");
  std::vector<NeighborInfo> info(points.size());
  // Each index writes only info[i], so the parallel loop is bit-identical
  // to the serial one at any thread count.
  ParallelFor(0, points.size(), kPointGrain, [&](size_t i) {
    for (size_t j = 0; j < points.size(); ++j) {
      if (i == j) continue;
      double d = Gower(points[i], points[j]);
      if (d < info[i].nearest_any) {
        info[i].nearest_any = d;
        info[i].nearest_any_index = j;
      }
      if (points[i].label == points[j].label) {
        info[i].nearest_same = std::min(info[i].nearest_same, d);
      } else {
        info[i].nearest_enemy = std::min(info[i].nearest_enemy, d);
      }
    }
  });
  return info;
}

/// Fraction of MST vertices incident to an inter-class edge (n1).
double BorderlineN1(const std::vector<Point>& points) {
  RLBENCH_TRACE_SPAN("complexity/n1");
  size_t n = points.size();
  if (n < 2) return 0.0;
  // Prim's algorithm with O(n^2) updates and on-the-fly distances.
  std::vector<double> best(n, std::numeric_limits<double>::infinity());
  std::vector<size_t> parent(n, 0);
  std::vector<bool> in_tree(n, false);
  std::vector<bool> borderline(n, false);
  best[0] = 0.0;
  for (size_t step = 0; step < n; ++step) {
    size_t u = n;
    double u_best = std::numeric_limits<double>::infinity();
    for (size_t v = 0; v < n; ++v) {
      if (!in_tree[v] && best[v] < u_best) {
        u_best = best[v];
        u = v;
      }
    }
    if (u == n) break;
    in_tree[u] = true;
    if (step > 0 && points[u].label != points[parent[u]].label) {
      borderline[u] = true;
      borderline[parent[u]] = true;
    }
    // The relax step carries the distance computations; each v updates only
    // its own best/parent slot, so it parallelises without reordering. The
    // coarse grain keeps per-step dispatch overhead below the O(n) work.
    ParallelFor(0, n, 4 * kPointGrain, [&](size_t v) {
      if (in_tree[v]) return;
      double d = Gower(points[u], points[v]);
      if (d < best[v]) {
        best[v] = d;
        parent[v] = u;
      }
    });
  }
  size_t count = 0;
  for (bool b : borderline) count += b ? 1 : 0;
  return static_cast<double>(count) / static_cast<double>(n);
}

double HypersphereT1(const std::vector<Point>& points,
                     const std::vector<NeighborInfo>& info) {
  RLBENCH_TRACE_SPAN("complexity/t1");
  size_t n = points.size();
  // Radius of each hypersphere: distance to the nearest enemy.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return info[a].nearest_enemy > info[b].nearest_enemy;
  });
  std::vector<size_t> kept;
  size_t kept_count = 0;
  for (size_t idx : order) {
    bool absorbed = false;
    for (size_t big : kept) {
      if (points[big].label != points[idx].label) continue;
      if (Gower(points[big], points[idx]) + info[idx].nearest_enemy <=
          info[big].nearest_enemy + 1e-12) {
        absorbed = true;
        break;
      }
    }
    if (!absorbed) {
      kept.push_back(idx);
      ++kept_count;
    }
  }
  return static_cast<double>(kept_count) / static_cast<double>(n);
}

double LocalSetLsc(const std::vector<Point>& points,
                   const std::vector<NeighborInfo>& info) {
  RLBENCH_TRACE_SPAN("complexity/lsc");
  size_t n = points.size();
  // Local-set cardinalities are integers, so the chunked sum is exact —
  // identical to the serial loop at any grouping.
  size_t total = ParallelReduce(
      0, n, kPointGrain, size_t{0},
      [&](size_t first, size_t last, size_t /*chunk*/) {
        size_t partial = 0;
        for (size_t i = first; i < last; ++i) {
          for (size_t j = 0; j < n; ++j) {
            if (i == j || points[i].label != points[j].label) continue;
            if (Gower(points[i], points[j]) < info[i].nearest_enemy) {
              ++partial;
            }
          }
        }
        return partial;
      },
      [](size_t a, size_t b) { return a + b; });
  return 1.0 - static_cast<double>(total) /
                   (static_cast<double>(n) * static_cast<double>(n));
}

// --- Network measures --------------------------------------------------------

struct Network {
  size_t n = 0;
  size_t num_edges = 0;
  std::vector<std::vector<uint64_t>> adjacency;  // bitset rows
  std::vector<size_t> degree;

  bool Connected(size_t i, size_t j) const {
    return (adjacency[i][j / 64] >> (j % 64)) & 1ULL;
  }
};

Network BuildNetwork(const std::vector<Point>& points, double epsilon) {
  RLBENCH_TRACE_SPAN("complexity/network_build");
  Network net;
  net.n = points.size();
  size_t words = (net.n + 63) / 64;
  net.adjacency.assign(net.n, std::vector<uint64_t>(words, 0));
  net.degree.assign(net.n, 0);
  // Row-parallel construction: each i owns its full adjacency row (the
  // symmetric (i, j) test runs twice, once per side, which keeps all writes
  // disjoint). The membership test is exact, so the rows — and the edge
  // count derived from the degrees — match the serial triangular build.
  ParallelFor(0, net.n, kPointGrain, [&](size_t i) {
    size_t degree = 0;
    for (size_t j = 0; j < net.n; ++j) {
      // Inter-class edges are pruned after construction (equivalently,
      // never added).
      if (i == j || points[i].label != points[j].label) continue;
      if (Gower(points[i], points[j]) >= epsilon) continue;
      net.adjacency[i][j / 64] |= 1ULL << (j % 64);
      ++degree;
    }
    net.degree[i] = degree;
  });
  size_t degree_sum = 0;
  for (size_t d : net.degree) degree_sum += d;
  net.num_edges = degree_sum / 2;
  return net;
}

double NetworkDensity(const Network& net) {
  if (net.n < 2) return 1.0;
  double possible = static_cast<double>(net.n) *
                    static_cast<double>(net.n - 1) / 2.0;
  return 1.0 - static_cast<double>(net.num_edges) / possible;
}

double ClusteringCoefficient(const Network& net) {
  RLBENCH_TRACE_SPAN("complexity/cls");
  if (net.n == 0) return 1.0;
  size_t words = (net.n + 63) / 64;
  // Fixed chunk boundaries + ordered combine pin the floating-point
  // grouping of the per-vertex coefficients to the input alone.
  double total = ParallelReduce(
      0, net.n, kPointGrain, 0.0,
      [&](size_t first, size_t last, size_t /*chunk*/) {
        double partial = 0.0;
        for (size_t v = first; v < last; ++v) {
          if (net.degree[v] < 2) continue;  // coefficient 0
          size_t links = 0;
          for (size_t u = 0; u < net.n; ++u) {
            if (!net.Connected(v, u)) continue;
            // Count common neighbours of v and u (each triangle edge
            // counted twice over u).
            for (size_t w = 0; w < words; ++w) {
              links += static_cast<size_t>(__builtin_popcountll(
                  net.adjacency[v][w] & net.adjacency[u][w]));
            }
          }
          double possible = static_cast<double>(net.degree[v]) *
                            static_cast<double>(net.degree[v] - 1);
          partial += static_cast<double>(links) / possible;
        }
        return partial;
      },
      [](double a, double b) { return a + b; });
  return 1.0 - total / static_cast<double>(net.n);
}

double HubScore(const Network& net) {
  RLBENCH_TRACE_SPAN("complexity/hub");
  if (net.n == 0) return 1.0;
  // Eigenvector centrality by power iteration on the undirected graph.
  // Row-parallel gather: next[u] sums score over u's adjacency row in
  // ascending neighbour order — the same addition order as the serial
  // scatter formulation (the matrix is symmetric), for any thread count.
  std::vector<double> score(net.n, 1.0);
  std::vector<double> next(net.n, 0.0);
  for (int iter = 0; iter < 30; ++iter) {
    ParallelFor(0, net.n, kPointGrain, [&](size_t u) {
      double sum = 0.0;
      for (size_t w = 0; w < net.adjacency[u].size(); ++w) {
        uint64_t bits = net.adjacency[u][w];
        while (bits != 0) {
          size_t v = w * 64 + static_cast<size_t>(__builtin_ctzll(bits));
          sum += score[v];
          bits &= bits - 1;
        }
      }
      next[u] = sum;
    });
    double norm = 0.0;
    for (double x : next) norm += x * x;
    norm = std::sqrt(norm);
    if (norm < 1e-12) {
      std::fill(score.begin(), score.end(), 0.0);
      break;
    }
    for (size_t v = 0; v < net.n; ++v) score[v] = next[v] / norm;
  }
  double max_score = *std::max_element(score.begin(), score.end());
  if (max_score < 1e-12) return 1.0;
  double mean = 0.0;
  for (double x : score) mean += x / max_score;
  mean /= static_cast<double>(net.n);
  return 1.0 - mean;
}

}  // namespace

ExcludedMeasures ComputeExcludedMeasures(
    const std::vector<FeaturePoint>& input,
    const ComplexityOptions& options) {
  ExcludedMeasures out;
  if (input.empty()) return out;
  RLBENCH_TRACE_SPAN("complexity/excluded");
  std::vector<Point> points =
      Subsample(input, options.max_points, options.seed);
  RLBENCH_CHECK(!points.empty());
  size_t n = points.size();
  double nd = static_cast<double>(n);

  // t2: average number of features per point (d / n).
  out.t2 = 2.0 / nd;

  // t3/t4: PCA dimensionality capturing 95% of the variance.
  double mean0 = 0.0;
  double mean1 = 0.0;
  for (const auto& p : points) {
    mean0 += p.x0;
    mean1 += p.x1;
  }
  mean0 /= nd;
  mean1 /= nd;
  double c00 = 0.0, c01 = 0.0, c11 = 0.0;
  for (const auto& p : points) {
    double d0 = p.x0 - mean0;
    double d1 = p.x1 - mean1;
    c00 += d0 * d0;
    c01 += d0 * d1;
    c11 += d1 * d1;
  }
  // Eigenvalues of the 2x2 covariance.
  double trace = c00 + c11;
  double det = c00 * c11 - c01 * c01;
  double disc = std::sqrt(std::max(0.0, trace * trace / 4.0 - det));
  double lambda1 = trace / 2.0 + disc;
  double lambda2 = std::max(0.0, trace / 2.0 - disc);
  size_t pca_dims =
      trace <= 1e-15 ? 0 : (lambda1 / std::max(trace, 1e-15) >= 0.95 ? 1 : 2);
  (void)lambda2;
  out.t3 = static_cast<double>(pca_dims) / nd;
  out.t4 = static_cast<double>(pca_dims) / 2.0;

  // f4: collective feature efficiency — remove the points each feature's
  // non-overlap region can separate, feature by feature.
  std::vector<Point> remaining = points;
  for (int f = 0; f < 2 && !remaining.empty(); ++f) {
    double lo[2], hi[2];
    FeatureRanges(remaining, f, lo, hi);
    double overlap_lo = std::max(lo[0], lo[1]);
    double overlap_hi = std::min(hi[0], hi[1]);
    std::vector<Point> kept;
    kept.reserve(remaining.size());
    for (const auto& p : remaining) {
      double v = f == 0 ? p.x0 : p.x1;
      if (v >= overlap_lo && v <= overlap_hi) kept.push_back(p);
    }
    remaining = std::move(kept);
    // Stop early once one class is exhausted: nothing left to separate.
    bool has_pos = false;
    bool has_neg = false;
    for (const auto& p : remaining) (p.label ? has_pos : has_neg) = true;
    if (!has_pos || !has_neg) {
      remaining.clear();
    }
  }
  out.f4 = static_cast<double>(remaining.size()) / nd;

  // l3: error rate of the linear SVM on within-class interpolated points.
  ml::Dataset dataset(2);
  dataset.Reserve(n);
  for (const auto& p : points) {
    dataset.Add({static_cast<float>(p.x0), static_cast<float>(p.x1)},
                p.label);
  }
  ml::LinearSvmOptions svm_options;
  svm_options.seed = options.seed;
  ml::LinearSvm svm(svm_options);
  svm.Fit(dataset, dataset);
  uint64_t l3_seed = SplitMix64(options.seed ^ 0x13ULL);
  std::vector<size_t> pos_idx;
  std::vector<size_t> neg_idx;
  for (size_t i = 0; i < n; ++i) {
    (points[i].label ? pos_idx : neg_idx).push_back(i);
  }
  // Chunked trials with split RNG streams: same interpolants at any thread
  // count; (errors, trials) are integers and combine exactly.
  struct Tally {
    size_t errors = 0;
    size_t trials = 0;
  };
  Tally tally = ParallelReduce(
      0, n, kPointGrain, Tally{},
      [&](size_t first, size_t last, size_t chunk) {
        Rng rng(SplitSeed(l3_seed, chunk));
        Tally partial;
        for (size_t t = first; t < last; ++t) {
          const auto& bucket =
              (t % 2 == 0 && pos_idx.size() >= 2) || neg_idx.size() < 2
                  ? pos_idx
                  : neg_idx;
          if (bucket.size() < 2) continue;
          size_t a = bucket[rng.Index(bucket.size())];
          size_t b = bucket[rng.Index(bucket.size())];
          double alpha = rng.Uniform();
          std::vector<float> synth = {
              static_cast<float>(points[a].x0 +
                                 alpha * (points[b].x0 - points[a].x0)),
              static_cast<float>(points[a].x1 +
                                 alpha * (points[b].x1 - points[a].x1))};
          ++partial.trials;
          if (svm.Predict(synth) != points[a].label) ++partial.errors;
        }
        return partial;
      },
      [](Tally a, Tally b) {
        return Tally{a.errors + b.errors, a.trials + b.trials};
      });
  out.l3 = tally.trials == 0 ? 0.0
                             : static_cast<double>(tally.errors) /
                                   static_cast<double>(tally.trials);
  // t2/t3/t4 are dimensionality ratios that may legitimately exceed 1 on
  // tiny samples; f4 and l3 are fractions.
  RLBENCH_CHECK_FINITE(out.t2);
  RLBENCH_CHECK_FINITE(out.t3);
  RLBENCH_CHECK_FINITE(out.t4);
  RLBENCH_CHECK_PROB(out.f4);
  RLBENCH_CHECK_PROB(out.l3);
  return out;
}

double ComplexityReport::Average() const {
  double sum = f1 + f1v + f2 + f3 + l1 + l2 + n1 + n2 + n3 + n4 + t1 + lsc +
               den + cls + hub + c1 + c2;
  return sum / 17.0;
}

std::vector<std::pair<std::string, double>> ComplexityReport::Items() const {
  return {{"f1", f1},   {"f1v", f1v}, {"f2", f2},   {"f3", f3},
          {"l1", l1},   {"l2", l2},   {"n1", n1},   {"n2", n2},
          {"n3", n3},   {"n4", n4},   {"t1", t1},   {"lsc", lsc},
          {"den", den}, {"cls", cls}, {"hub", hub}, {"c1", c1},
          {"c2", c2}};
}

ComplexityReport ComputeComplexity(const std::vector<FeaturePoint>& input,
                                   const ComplexityOptions& options) {
  ComplexityReport report;
  if (input.empty()) return report;
  RLBENCH_TRACE_SPAN("complexity/compute");
  RLBENCH_COUNTER_INC("complexity/reports");
  RLBENCH_COUNTER_ADD("complexity/input_points", input.size());
  std::vector<Point> points =
      Subsample(input, options.max_points, options.seed);
  RLBENCH_CHECK(!points.empty());
  size_t n = points.size();
  RLBENCH_COUNTER_ADD("complexity/sampled_points", n);
  RLBENCH_HISTOGRAM_RECORD("complexity/sample_size",
                           ::rlbench::obs::ExponentialBounds(16.0, 2.0, 12),
                           n);
  double n_pos = 0.0;
  for (const auto& p : points) n_pos += p.label ? 1.0 : 0.0;
  double n_neg = static_cast<double>(n) - n_pos;
  if (n_pos == 0.0 || n_neg == 0.0) {
    report.c1 = 1.0;
    report.c2 = 1.0;
    return report;
  }

  // Class balance (on the FULL input, not the sample: these are exact).
  double total = static_cast<double>(input.size());
  double full_pos = 0.0;
  for (const auto& p : input) full_pos += p.is_match ? 1.0 : 0.0;
  double p1 = full_pos / total;
  double p0 = 1.0 - p1;
  double entropy = 0.0;
  if (p0 > 0.0) entropy -= p0 * std::log2(p0);
  if (p1 > 0.0) entropy -= p1 * std::log2(p1);
  report.c1 = 1.0 - entropy;
  double imbalance =
      0.5 * (p0 / std::max(p1, 1e-12) + p1 / std::max(p0, 1e-12));
  report.c2 = 1.0 - 1.0 / imbalance;

  // Feature-based.
  {
    RLBENCH_TRACE_SPAN("complexity/feature");
    report.f1 = FisherF1(points);
    report.f1v = FisherF1v(points);
    report.f2 = VolumeOverlapF2(points);
    report.f3 = FeatureEfficiencyF3(points);
  }

  // Linearity: a linear SVM on the sampled points.
  {
    RLBENCH_TRACE_SPAN("complexity/linearity_svm");
    ml::Dataset dataset(2);
    dataset.Reserve(n);
    for (const auto& p : points) {
      dataset.Add({static_cast<float>(p.x0), static_cast<float>(p.x1)},
                  p.label);
    }
    ml::LinearSvmOptions svm_options;
    svm_options.seed = options.seed;
    ml::LinearSvm svm(svm_options);
    svm.Fit(dataset, dataset);
    size_t errors = 0;
    for (size_t i = 0; i < dataset.size(); ++i) {
      if (svm.Predict(dataset.row(i)) != dataset.label(i)) ++errors;
    }
    report.l2 = static_cast<double>(errors) / static_cast<double>(n);
    double hinge = svm.MeanHingeLoss(dataset);
    report.l1 = hinge / (1.0 + hinge);
  }

  // Neighbourhood.
  auto info = ComputeNeighbors(points);
  report.n1 = BorderlineN1(points);
  {
    RLBENCH_TRACE_SPAN("complexity/n2");
    double intra = 0.0;
    double extra = 0.0;
    size_t nn_errors = 0;
    for (size_t i = 0; i < n; ++i) {
      // A point whose class has a single member in the sample has no
      // same-class neighbour (nearest_same stays +inf); summing it would
      // turn the intra/extra ratio into NaN. Skip such points.
      if (std::isfinite(info[i].nearest_same)) intra += info[i].nearest_same;
      extra += info[i].nearest_enemy;
      RLBENCH_DCHECK_INDEX(info[i].nearest_any_index, n);
      if (points[info[i].nearest_any_index].label != points[i].label) {
        ++nn_errors;
      }
    }
    double ratio = extra > 1e-12 ? intra / extra : 0.0;
    report.n2 = ratio / (1.0 + ratio);
    report.n3 = static_cast<double>(nn_errors) / static_cast<double>(n);
  }

  // n4: 1-NN error on within-class interpolated points. Trials are chunked
  // with one split RNG stream per chunk (SplitSeed), so each trial draws
  // the same interpolants at any thread count; the error tally is an
  // integer sum and combines exactly.
  {
    RLBENCH_TRACE_SPAN("complexity/n4");
    std::vector<size_t> pos_idx;
    std::vector<size_t> neg_idx;
    for (size_t i = 0; i < n; ++i) {
      (points[i].label ? pos_idx : neg_idx).push_back(i);
    }
    size_t trials = n;
    uint64_t n4_seed = SplitMix64(options.seed ^ 0x4E4ULL);
    size_t errors4 = ParallelReduce(
        0, trials, kPointGrain, size_t{0},
        [&](size_t first, size_t last, size_t chunk) {
          Rng rng(SplitSeed(n4_seed, chunk));
          size_t partial = 0;
          for (size_t t = first; t < last; ++t) {
            const auto& bucket = (t % 2 == 0 && pos_idx.size() >= 2) ||
                                         neg_idx.size() < 2
                                     ? pos_idx
                                     : neg_idx;
            if (bucket.size() < 2) continue;
            size_t a = bucket[rng.Index(bucket.size())];
            size_t b = bucket[rng.Index(bucket.size())];
            double alpha = rng.Uniform();
            Point synth{points[a].x0 + alpha * (points[b].x0 - points[a].x0),
                        points[a].x1 + alpha * (points[b].x1 - points[a].x1),
                        points[a].label};
            double best = std::numeric_limits<double>::infinity();
            size_t best_index = 0;
            for (size_t i = 0; i < n; ++i) {
              double d = Gower(points[i], synth);
              if (d < best) {
                best = d;
                best_index = i;
              }
            }
            if (points[best_index].label != synth.label) ++partial;
          }
          return partial;
        },
        [](size_t a, size_t b) { return a + b; });
    report.n4 = static_cast<double>(errors4) / static_cast<double>(trials);
  }

  report.t1 = HypersphereT1(points, info);
  report.lsc = LocalSetLsc(points, info);

  // Network.
  Network net = BuildNetwork(points, options.epsilon);
  report.den = NetworkDensity(net);
  report.cls = ClusteringCoefficient(net);
  report.hub = HubScore(net);

  // Every measure is a difficulty score in [0, 1]; a NaN or out-of-range
  // value here would skew the cross-benchmark averages in Tables 3/5.
  for (const auto& [name, value] : report.Items()) {
    (void)name;
    RLBENCH_CHECK_FINITE(value);
    RLBENCH_CHECK_PROB(value);
  }
  return report;
}

}  // namespace rlbench::core
