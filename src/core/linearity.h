// Degree of linearity (Algorithm 1): the maximum F1 a single similarity
// threshold can achieve over ALL labelled pairs of a benchmark, for the
// schema-agnostic Cosine and Jaccard token-set similarities.
#ifndef RLBENCH_SRC_CORE_LINEARITY_H_
#define RLBENCH_SRC_CORE_LINEARITY_H_

#include "matchers/context.h"

namespace rlbench::core {

struct LinearityResult {
  double f1_cosine = 0.0;
  double threshold_cosine = 0.0;
  double f1_jaccard = 0.0;
  double threshold_jaccard = 0.0;
};

/// Run Algorithm 1 on the context's task: merge train + valid + test,
/// score every pair with CS and JS over lower-cased token sets, and sweep
/// thresholds 0.01..0.99 (step 0.01) for the best F1 per measure.
LinearityResult ComputeLinearity(const matchers::MatchingContext& context);

/// The [CS, JS] feature points of every labelled pair (the paper's 2-D
/// instance representation for the complexity measures), with labels.
struct FeaturePoint {
  double cs = 0.0;
  double js = 0.0;
  bool is_match = false;
};
std::vector<FeaturePoint> PairFeaturePoints(
    const matchers::MatchingContext& context);

/// Schema-aware variant (the setting the paper explored in its extended
/// version and found equivalent to schema-agnostic): Algorithm 1 applied
/// to each attribute's token sets individually. One result per attribute.
std::vector<LinearityResult> ComputeLinearityPerAttribute(
    const matchers::MatchingContext& context);

}  // namespace rlbench::core

#endif  // RLBENCH_SRC_CORE_LINEARITY_H_
