#include "core/resolution.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "ml/metrics.h"

namespace rlbench::core {

std::vector<uint8_t> ResolveOneToOne(
    const std::vector<data::LabeledPair>& pairs,
    const std::vector<double>& scores, const ResolutionOptions& options) {
  std::vector<size_t> order(pairs.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] > scores[b];
  });

  std::unordered_set<uint32_t> used_left;
  std::unordered_set<uint32_t> used_right;
  std::vector<uint8_t> decisions(pairs.size(), 0);
  for (size_t index : order) {
    if (scores[index] < options.score_threshold) break;  // sorted: all below
    const auto& pair = pairs[index];
    if (used_left.count(pair.left) != 0 ||
        used_right.count(pair.right) != 0) {
      continue;
    }
    used_left.insert(pair.left);
    used_right.insert(pair.right);
    decisions[index] = 1;
  }
  return decisions;
}

ResolutionImpact EvaluateResolution(
    const std::vector<data::LabeledPair>& pairs,
    const std::vector<double>& scores, const ResolutionOptions& options) {
  std::vector<uint8_t> truth;
  std::vector<uint8_t> thresholded;
  truth.reserve(pairs.size());
  thresholded.reserve(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    truth.push_back(pairs[i].is_match ? 1 : 0);
    thresholded.push_back(scores[i] >= options.score_threshold ? 1 : 0);
  }
  ResolutionImpact impact;
  impact.f1_before = ml::Evaluate(truth, thresholded).F1();
  impact.f1_after =
      ml::Evaluate(truth, ResolveOneToOne(pairs, scores, options)).F1();
  return impact;
}

}  // namespace rlbench::core
