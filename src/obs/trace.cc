#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/json.h"

namespace rlbench::obs {

namespace internal {
// NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
std::atomic<int> g_trace_state{0};
}  // namespace internal

namespace {

// Per-thread buffers are bounded so a pathological run cannot balloon the
// JSON past what chrome://tracing will load; overflow is counted and
// reported, never silently swallowed.
constexpr size_t kMaxEventsPerThread = 1u << 20;

struct CompletedSpan {
  std::string name;
  double start_us;
  double dur_us;
  uint64_t chunk;
  bool has_chunk;
};

struct OpenSpan {
  const char* name;
  double start_us;
  uint64_t chunk;
  bool has_chunk;
};

struct ThreadBuffer {
  uint32_t tid = 0;
  std::string name;
  std::vector<OpenSpan> stack;
  std::vector<CompletedSpan> events;
  uint64_t dropped = 0;
};

struct TraceState {
  Mutex mutex;
  std::string path RLBENCH_GUARDED_BY(mutex);
  // Registration is guarded; each ThreadBuffer's contents stay private to
  // its owning thread until WriteTraceIfEnabled(), whose contract is "no
  // parallel work in flight" (see trace.h).
  std::vector<ThreadBuffer*> buffers RLBENCH_GUARDED_BY(mutex);
  // Trace epoch in steady_clock nanoseconds. Atomic, not guarded:
  // NowMicros() reads it on the span hot path where taking the state
  // mutex would serialise every worker; SetTraceFile() publishes a new
  // epoch with a release store.
  std::atomic<int64_t> epoch_ns{
      std::chrono::steady_clock::now().time_since_epoch().count()};
};

TraceState& State() {
  static TraceState* state = new TraceState();  // leaked: alive at exit
  return *state;
}

// The name a thread asks for before it ever records a span; applied when
// its buffer is created so naming stays allocation-free while disabled.
// NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
thread_local std::string tls_pending_name;
// NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
thread_local ThreadBuffer* tls_buffer = nullptr;

ThreadBuffer* CurrentBuffer() {
  if (tls_buffer == nullptr) {
    auto* buffer = new ThreadBuffer();  // leaked: events outlive the thread
    TraceState& state = State();
    MutexLock lock(&state.mutex);
    buffer->tid = static_cast<uint32_t>(state.buffers.size());
    buffer->name = tls_pending_name.empty()
                       ? "thread-" + std::to_string(buffer->tid)
                       : tls_pending_name;
    state.buffers.push_back(buffer);
    tls_buffer = buffer;
  }
  return tls_buffer;
}

double NowMicros() {
  int64_t now_ns =
      std::chrono::steady_clock::now().time_since_epoch().count();
  int64_t epoch_ns = State().epoch_ns.load(std::memory_order_acquire);
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::duration(now_ns - epoch_ns))
      .count();
}

}  // namespace

namespace internal {

int ResolveTraceState() {
  TraceState& state = State();
  MutexLock lock(&state.mutex);
  int current = g_trace_state.load(std::memory_order_relaxed);
  if (current != 0) return current;  // lost the race; someone resolved it
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at gate resolution
  const char* env = std::getenv("RLBENCH_TRACE");
  int resolved = 1;
  if (env != nullptr && env[0] != '\0') {
    state.path = env;
    resolved = 2;
  }
  g_trace_state.store(resolved, std::memory_order_relaxed);
  return resolved;
}

void BeginSpan(const char* name, uint64_t chunk, bool has_chunk) {
  ThreadBuffer* buffer = CurrentBuffer();
  buffer->stack.push_back(OpenSpan{name, NowMicros(), chunk, has_chunk});
}

void EndSpan() {
  ThreadBuffer* buffer = tls_buffer;
  if (buffer == nullptr || buffer->stack.empty()) return;
  OpenSpan open = buffer->stack.back();
  buffer->stack.pop_back();
  if (buffer->events.size() >= kMaxEventsPerThread) {
    ++buffer->dropped;
    return;
  }
  double end_us = NowMicros();
  buffer->events.push_back(CompletedSpan{open.name, open.start_us,
                                         end_us - open.start_us, open.chunk,
                                         open.has_chunk});
}

}  // namespace internal

const char* CurrentSpanName() {
  ThreadBuffer* buffer = tls_buffer;
  if (buffer == nullptr || buffer->stack.empty()) return nullptr;
  return buffer->stack.back().name;
}

void SetCurrentThreadName(const std::string& name) {
  tls_pending_name = name;
  if (tls_buffer != nullptr) {
    TraceState& state = State();
    MutexLock lock(&state.mutex);
    tls_buffer->name = name;
  }
}

void SetTraceFile(const std::string& path) {
  TraceState& state = State();
  MutexLock lock(&state.mutex);
  state.path = path;
  for (ThreadBuffer* buffer : state.buffers) {
    buffer->events.clear();
    buffer->stack.clear();
    buffer->dropped = 0;
  }
  state.epoch_ns.store(
      std::chrono::steady_clock::now().time_since_epoch().count(),
      std::memory_order_release);
  internal::g_trace_state.store(path.empty() ? 1 : 2,
                                std::memory_order_relaxed);
}

std::string TraceFilePath() {
  if (!TraceEnabled()) return "";
  TraceState& state = State();
  MutexLock lock(&state.mutex);
  return state.path;
}

uint64_t DroppedTraceEvents() {
  TraceState& state = State();
  MutexLock lock(&state.mutex);
  uint64_t dropped = 0;
  for (const ThreadBuffer* buffer : state.buffers) dropped += buffer->dropped;
  return dropped;
}

std::string WriteTraceIfEnabled() {
  if (!TraceEnabled()) return "";
  TraceState& state = State();
  MutexLock lock(&state.mutex);
  if (state.path.empty()) return "";
  FILE* out = std::fopen(state.path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "obs: cannot write trace file %s\n",
                 state.path.c_str());
    return "";
  }
  std::fprintf(out, "{\"traceEvents\": [\n");
  std::fprintf(out,
               "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 1, "
               "\"tid\": 0, \"args\": {\"name\": \"rlbench\"}}");
  for (const ThreadBuffer* buffer : state.buffers) {
    std::fprintf(out,
                 ",\n{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, "
                 "\"tid\": %u, \"args\": {\"name\": %s}}",
                 buffer->tid, JsonString(buffer->name).c_str());
    if (buffer->dropped > 0) {
      std::fprintf(out,
                   ",\n{\"ph\": \"M\", \"name\": \"rlbench_dropped_events\", "
                   "\"pid\": 1, \"tid\": %u, \"args\": {\"count\": %llu}}",
                   buffer->tid,
                   static_cast<unsigned long long>(buffer->dropped));
    }
    for (const CompletedSpan& span : buffer->events) {
      std::fprintf(out,
                   ",\n{\"ph\": \"X\", \"name\": %s, \"pid\": 1, "
                   "\"tid\": %u, \"ts\": %s, \"dur\": %s",
                   JsonString(span.name).c_str(), buffer->tid,
                   JsonNumber(span.start_us).c_str(),
                   JsonNumber(span.dur_us).c_str());
      if (span.has_chunk) {
        std::fprintf(out, ", \"args\": {\"chunk\": %llu}",
                     static_cast<unsigned long long>(span.chunk));
      }
      std::fprintf(out, "}");
    }
  }
  std::fprintf(out, "\n], \"displayTimeUnit\": \"ms\"}\n");
  std::fclose(out);
  return state.path;
}

}  // namespace rlbench::obs
