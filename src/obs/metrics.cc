#include "obs/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <map>

#include "common/thread_annotations.h"

namespace rlbench::obs {

namespace internal {

// NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
std::atomic<int> g_metrics_state{0};

int ResolveMetricsState() {
  // Racing first callers all compute the same answer from the same
  // environment; last store wins harmlessly.
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at gate resolution
  const char* env = std::getenv("RLBENCH_METRICS");
  int state = (env != nullptr && env[0] != '\0' && env[0] != '0') ? 2 : 1;
  g_metrics_state.store(state, std::memory_order_relaxed);
  return state;
}

size_t ThreadOrdinal() {
  static std::atomic<size_t> next{0};
  thread_local size_t ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

namespace {

// Lock-free max-merge on an atomic<double> via CAS. Relaxed ordering is
// fine: the value is only read after all recording threads are quiescent.
void AtomicMax(std::atomic<double>* slot, double value) {
  double current = slot->load(std::memory_order_relaxed);
  while (value > current &&
         !slot->compare_exchange_weak(current, value,
                                      std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* slot, double value) {
  double current = slot->load(std::memory_order_relaxed);
  while (value < current &&
         !slot->compare_exchange_weak(current, value,
                                      std::memory_order_relaxed)) {
  }
}

void AtomicAdd(std::atomic<double>* slot, double value) {
  double current = slot->load(std::memory_order_relaxed);
  while (!slot->compare_exchange_weak(current, current + value,
                                      std::memory_order_relaxed)) {
  }
}

}  // namespace
}  // namespace internal

// --- Counter --------------------------------------------------------------

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (auto& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

// --- Gauge ----------------------------------------------------------------

void Gauge::Observe(double value) {
  auto& shard = shards_[internal::ThreadOrdinal() % internal::kMetricShards];
  uint64_t seen = shard.count.fetch_add(1, std::memory_order_relaxed);
  if (seen == 0) {
    // First observation on this shard: the stored 0.0 is a placeholder,
    // not data, so seed it unconditionally before the max-merge. A racing
    // second observer may interleave, but both then funnel through
    // AtomicMax, so the final value is still the true maximum.
    double expected = 0.0;
    if (!shard.max.compare_exchange_strong(expected, value,
                                           std::memory_order_relaxed)) {
      internal::AtomicMax(&shard.max, value);
    }
  } else {
    internal::AtomicMax(&shard.max, value);
  }
}

double Gauge::Value() const {
  double best = 0.0;
  bool any = false;
  for (const auto& shard : shards_) {
    if (shard.count.load(std::memory_order_relaxed) == 0) continue;
    double v = shard.max.load(std::memory_order_relaxed);
    best = any ? std::max(best, v) : v;
    any = true;
  }
  return any ? best : 0.0;
}

uint64_t Gauge::ObservationCount() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

void Gauge::Reset() {
  for (auto& shard : shards_) {
    shard.count.store(0, std::memory_order_relaxed);
    shard.max.store(0.0, std::memory_order_relaxed);
  }
}

// --- Histogram ------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  size_t buckets = bounds_.size() + 1;  // + overflow
  row_ = (buckets + 7) / 8 * 8;         // pad rows to a 64-byte boundary
  counts_.reset(new std::atomic<uint64_t>[internal::kMetricShards * row_]());
  for (auto& stat : stats_) {
    stat.min.store(std::numeric_limits<double>::infinity(),
                   std::memory_order_relaxed);
    stat.max.store(-std::numeric_limits<double>::infinity(),
                   std::memory_order_relaxed);
  }
}

void Histogram::Record(double value) {
  size_t shard = internal::ThreadOrdinal() % internal::kMetricShards;
  size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  counts_[shard * row_ + bucket].fetch_add(1, std::memory_order_relaxed);
  auto& stat = stats_[shard];
  stat.total.fetch_add(1, std::memory_order_relaxed);
  internal::AtomicAdd(&stat.sum, value);
  internal::AtomicMin(&stat.min, value);
  internal::AtomicMax(&stat.max, value);
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& stat : stats_) {
    total += stat.total.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  // Shard partials are added in fixed shard order, so the floating-point
  // grouping is stable for a given event→shard assignment. Integer-valued
  // samples (the common case: sizes, counts) are exact regardless.
  double total = 0.0;
  for (const auto& stat : stats_) {
    if (stat.total.load(std::memory_order_relaxed) == 0) continue;
    total += stat.sum.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Min() const {
  double best = std::numeric_limits<double>::infinity();
  bool any = false;
  for (const auto& stat : stats_) {
    if (stat.total.load(std::memory_order_relaxed) == 0) continue;
    best = std::min(best, stat.min.load(std::memory_order_relaxed));
    any = true;
  }
  return any ? best : 0.0;
}

double Histogram::Max() const {
  double best = -std::numeric_limits<double>::infinity();
  bool any = false;
  for (const auto& stat : stats_) {
    if (stat.total.load(std::memory_order_relaxed) == 0) continue;
    best = std::max(best, stat.max.load(std::memory_order_relaxed));
    any = true;
  }
  return any ? best : 0.0;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> merged(bounds_.size() + 1, 0);
  for (size_t shard = 0; shard < internal::kMetricShards; ++shard) {
    for (size_t b = 0; b < merged.size(); ++b) {
      merged[b] += counts_[shard * row_ + b].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

double Histogram::Percentile(double p) const {
  std::vector<uint64_t> merged = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : merged) total += c;
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the target sample, 1-based: p=0 → first, p=1 → last.
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(total));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  uint64_t cumulative = 0;
  for (size_t b = 0; b < merged.size(); ++b) {
    cumulative += merged[b];
    if (cumulative >= rank) {
      return b < bounds_.size() ? bounds_[b] : Max();
    }
  }
  return Max();  // unreachable
}

void Histogram::Reset() {
  for (size_t i = 0; i < internal::kMetricShards * row_; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  for (auto& stat : stats_) {
    stat.total.store(0, std::memory_order_relaxed);
    stat.sum.store(0.0, std::memory_order_relaxed);
    stat.min.store(std::numeric_limits<double>::infinity(),
                   std::memory_order_relaxed);
    stat.max.store(-std::numeric_limits<double>::infinity(),
                   std::memory_order_relaxed);
  }
}

std::vector<double> ExponentialBounds(double lo, double factor, size_t n) {
  std::vector<double> bounds;
  bounds.reserve(n);
  double bound = lo;
  for (size_t i = 0; i < n; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> LinearBounds(double lo, double hi, size_t n) {
  std::vector<double> bounds;
  bounds.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double t = n == 1 ? 1.0 : static_cast<double>(i) / (n - 1);
    bounds.push_back(lo + (hi - lo) * t);
  }
  return bounds;
}

// --- Registry -------------------------------------------------------------

struct Metrics::Impl {
  Mutex mutex;
  // std::map keeps iteration sorted by name, which makes every export
  // deterministic without a sort at snapshot time. Metric objects are
  // owned here and never erased, so references handed out stay valid.
  std::map<std::string, std::unique_ptr<Counter>> counters
      RLBENCH_GUARDED_BY(mutex);
  std::map<std::string, std::unique_ptr<Gauge>> gauges
      RLBENCH_GUARDED_BY(mutex);
  std::map<std::string, std::unique_ptr<Histogram>> histograms
      RLBENCH_GUARDED_BY(mutex);
};

Metrics& Metrics::Instance() {
  static Metrics* instance = new Metrics();  // leaked: alive at exit
  return *instance;
}

Metrics::Impl& Metrics::impl() const {
  static Impl* impl = new Impl();  // leaked alongside the registry
  return *impl;
}

Counter& Metrics::GetCounter(const std::string& name) {
  Impl& state = impl();
  MutexLock lock(&state.mutex);
  auto& slot = state.counters[name];
  if (!slot) slot.reset(new Counter());
  return *slot;
}

Gauge& Metrics::GetGauge(const std::string& name) {
  Impl& state = impl();
  MutexLock lock(&state.mutex);
  auto& slot = state.gauges[name];
  if (!slot) slot.reset(new Gauge());
  return *slot;
}

Histogram& Metrics::GetHistogram(const std::string& name,
                                 std::vector<double> bounds) {
  Impl& state = impl();
  MutexLock lock(&state.mutex);
  auto& slot = state.histograms[name];
  if (!slot) slot.reset(new Histogram(std::move(bounds)));
  return *slot;
}

void Metrics::SetEnabled(bool enabled) {
  internal::g_metrics_state.store(enabled ? 2 : 1, std::memory_order_relaxed);
}

void Metrics::ResetAll() {
  Impl& state = impl();
  MutexLock lock(&state.mutex);
  for (auto& entry : state.counters) entry.second->Reset();
  for (auto& entry : state.gauges) entry.second->Reset();
  for (auto& entry : state.histograms) entry.second->Reset();
}

std::vector<std::pair<std::string, const Counter*>> Metrics::Counters() const {
  Impl& state = impl();
  MutexLock lock(&state.mutex);
  std::vector<std::pair<std::string, const Counter*>> out;
  out.reserve(state.counters.size());
  for (const auto& entry : state.counters) {
    out.emplace_back(entry.first, entry.second.get());
  }
  return out;
}

std::vector<std::pair<std::string, const Gauge*>> Metrics::Gauges() const {
  Impl& state = impl();
  MutexLock lock(&state.mutex);
  std::vector<std::pair<std::string, const Gauge*>> out;
  out.reserve(state.gauges.size());
  for (const auto& entry : state.gauges) {
    out.emplace_back(entry.first, entry.second.get());
  }
  return out;
}

std::vector<std::pair<std::string, const Histogram*>> Metrics::Histograms()
    const {
  Impl& state = impl();
  MutexLock lock(&state.mutex);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(state.histograms.size());
  for (const auto& entry : state.histograms) {
    out.emplace_back(entry.first, entry.second.get());
  }
  return out;
}

}  // namespace rlbench::obs
