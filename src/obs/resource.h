// Process resource introspection for run manifests. Kept inside obs (not
// data/) so the manifest layer stays dependency-free; the only consumer-
// facing value today is the peak resident set size that every bench
// harness records.
#ifndef RLBENCH_SRC_OBS_RESOURCE_H_
#define RLBENCH_SRC_OBS_RESOURCE_H_

#include <cstdint>

namespace rlbench::obs {

/// Peak resident set size of this process in bytes (the high-water mark,
/// not the current RSS), or 0 when the platform cannot report it. Reads
/// getrusage(RUSAGE_SELF) first and falls back to /proc/self/status VmHWM.
int64_t PeakRssBytes();

}  // namespace rlbench::obs

#endif  // RLBENCH_SRC_OBS_RESOURCE_H_
