// Minimal JSON emission + syntax validation for the observability layer.
//
// The obs subsystem writes two machine-readable artefacts — Chrome
// trace-event files and per-bench run manifests — and both must be valid
// JSON without pulling a parser dependency into the repo. This header
// provides the three escaping/formatting helpers the writers share, plus
// a strict syntax checker used by the tests (and by validate_manifest.py
// on the Python side) to prove round-trip loadability.
#ifndef RLBENCH_SRC_OBS_JSON_H_
#define RLBENCH_SRC_OBS_JSON_H_

#include <string>
#include <string_view>

namespace rlbench::obs {

/// \brief `text` with JSON string escapes applied (no surrounding quotes).
///
/// Escapes `"` `\` and control characters (the latter as \u00XX); all
/// other bytes pass through untouched, so valid UTF-8 stays valid.
std::string JsonEscape(std::string_view text);

/// \brief `text` as a quoted JSON string literal.
std::string JsonString(std::string_view text);

/// \brief `value` as a JSON number token.
///
/// Finite values round-trip through %.17g (shortest form readable back
/// bit-exactly by strtod); NaN and infinities — which JSON cannot
/// represent — become `null`.
std::string JsonNumber(double value);

/// \brief True iff `text` is one syntactically complete JSON value.
///
/// A recursive-descent checker: objects, arrays, strings (with escape
/// validation), numbers, true/false/null, arbitrary whitespace. It does
/// not build a DOM and enforces no semantic schema — callers layer their
/// own key checks on top.
bool JsonSyntaxValid(std::string_view text);

}  // namespace rlbench::obs

#endif  // RLBENCH_SRC_OBS_JSON_H_
