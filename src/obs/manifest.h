// Machine-readable run manifests for the bench harnesses.
//
// Every bench binary records what it ran (git revision, seed, thread
// count, dataset ids, flag values), how long each phase took, and — when
// RLBENCH_METRICS is on — a snapshot of every registered counter, gauge,
// and histogram. The result is written beside the printed table as
// `bench_results/<name>.manifest.json` so downstream tooling
// (tools/validate_manifest.py, plotting scripts, CI) can consume runs
// without scraping stdout.
//
// Manifest schema (schema_version 2):
//   {
//     "schema_version": 2,
//     "bench": "<name>",
//     "git": "<git describe --always --dirty, or 'unknown'>",
//     "threads": N, "hardware_concurrency": N,
//     "peak_rss_bytes": N,           // process high-water RSS; 0 = unknown
//     "seed": N,                     // only when set
//     "datasets": ["Ds1", ...],
//     "config": {"flag": "value", ...},
//     "phases": [{"name": "...", "seconds": S,
//                 "status": "ok" | "failed",
//                 "error": "..."},   // only when failed
//                ...],
//     "total_seconds": S,
//     "trace_file": "path",          // only when tracing
//     "counters": {"name": N, ...},          // only with RLBENCH_METRICS
//     "gauges": {"name": V, ...},
//     "histograms": {"name": {"count": N, "sum": S, "min": V, "max": V,
//                             "p50": V, "p90": V, "p99": V}, ...}
//   }
//
// schema_version 2 added the per-phase "status"/"error" fields, which let
// a bench record a failed dataset (graceful degradation) while the rest of
// the run continues.
#ifndef RLBENCH_SRC_OBS_MANIFEST_H_
#define RLBENCH_SRC_OBS_MANIFEST_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace rlbench::obs {

/// \brief Mutable record of one bench run; serialised by ToJson().
/// Not thread-safe — benches drive it from the main thread only.
class RunManifest {
 public:
  explicit RunManifest(std::string bench_name);
  ~RunManifest();

  const std::string& name() const { return name_; }

  void set_threads(size_t threads) { threads_ = threads; }
  void set_hardware_concurrency(size_t n) { hardware_concurrency_ = n; }
  /// Peak resident set size (obs::PeakRssBytes()); 0 means unknown. The
  /// key is always serialised so downstream tooling can rely on it.
  void set_peak_rss_bytes(int64_t bytes) { peak_rss_bytes_ = bytes; }
  void set_seed(uint64_t seed) {
    seed_ = seed;
    has_seed_ = true;
  }
  void set_trace_file(std::string path) { trace_file_ = std::move(path); }
  void SetDatasets(std::vector<std::string> ids) { datasets_ = std::move(ids); }
  void AddDataset(const std::string& id) { datasets_.push_back(id); }

  void AddConfig(const std::string& key, const std::string& value);
  void AddConfig(const std::string& key, double value);
  void AddConfig(const std::string& key, int64_t value);

  /// Phases nest (stack discipline); serialised in begin order. Each open
  /// phase also holds a matching trace span, so manifests and traces tell
  /// the same story. Prefer the ManifestPhase RAII wrapper when a scope is
  /// natural; call these directly to bracket a statement run.
  void BeginPhase(const std::string& phase_name);
  void EndPhase();

  /// Marks the innermost open phase as failed with `error`; the phase is
  /// still closed by the matching EndPhase(). No-op when no phase is open.
  void FailPhase(const std::string& error);

  /// Appends an already-timed phase. This is the post-join path for
  /// parallel benches: workers time their datasets with a Stopwatch, the
  /// main thread records them here in deterministic order (the manifest
  /// itself is not thread-safe).
  void AddCompletedPhase(const std::string& phase_name, double seconds,
                         bool failed = false, const std::string& error = "");

  /// Wall seconds since construction; after Finalize(), the frozen value.
  double TotalSeconds() const;

  /// Freezes TotalSeconds() at the current elapsed time, so every later
  /// consumer (printed epilogue, ToJson) reports the same number.
  void Finalize();

  std::string ToJson() const;

  /// True when any recorded phase failed.
  bool HasFailedPhase() const;

 private:
  struct Phase {
    std::string name;
    double seconds = 0.0;
    bool open = true;
    bool failed = false;
    std::string error;
  };
  struct PhaseSpan;  // owns the phase name copy backing its trace span

  std::string name_;
  std::chrono::steady_clock::time_point start_;
  double frozen_total_ = -1.0;  // < 0 = not frozen
  size_t threads_ = 0;
  size_t hardware_concurrency_ = 0;
  int64_t peak_rss_bytes_ = 0;
  uint64_t seed_ = 0;
  bool has_seed_ = false;
  std::string trace_file_;
  std::vector<std::string> datasets_;
  std::vector<std::pair<std::string, std::string>> config_;  // pre-serialised
  std::vector<Phase> phases_;
  std::vector<size_t> phase_stack_;  // indices into phases_
  std::vector<std::chrono::steady_clock::time_point> phase_starts_;
  std::vector<std::unique_ptr<PhaseSpan>> phase_spans_;  // open phases only
};

/// \brief RAII wrapper over BeginPhase/EndPhase for scope-shaped phases.
class ManifestPhase {
 public:
  ManifestPhase(RunManifest* manifest, const std::string& phase_name)
      : manifest_(manifest) {
    manifest_->BeginPhase(phase_name);
  }
  ~ManifestPhase() { manifest_->EndPhase(); }

  ManifestPhase(const ManifestPhase&) = delete;
  ManifestPhase& operator=(const ManifestPhase&) = delete;

 private:
  RunManifest* manifest_;
};

}  // namespace rlbench::obs

#endif  // RLBENCH_SRC_OBS_MANIFEST_H_
