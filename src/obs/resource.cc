#include "obs/resource.h"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace rlbench::obs {

namespace {

// Linux fallback: VmHWM from /proc/self/status, in kB. Uses cstdio — obs
// sits below data::FileSource, and the repo lint reserves fstream for it.
int64_t ProcStatusHighWaterBytes() {
  std::FILE* file = std::fopen("/proc/self/status", "re");
  if (file == nullptr) return 0;
  char line[256];
  int64_t bytes = 0;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    long long kb = 0;
    if (std::sscanf(line, "VmHWM: %lld kB", &kb) == 1) {
      bytes = static_cast<int64_t>(kb) * 1024;
      break;
    }
  }
  std::fclose(file);
  return bytes;
}

}  // namespace

int64_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  std::memset(&usage, 0, sizeof(usage));
  if (getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
#if defined(__APPLE__)
    return static_cast<int64_t>(usage.ru_maxrss);  // bytes on macOS
#else
    return static_cast<int64_t>(usage.ru_maxrss) * 1024;  // kB on Linux
#endif
  }
#endif
  return ProcStatusHighWaterBytes();
}

}  // namespace rlbench::obs
