#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace rlbench::obs {
namespace {

// --- Syntax checker -------------------------------------------------------
//
// One cursor walked by mutually recursive Skip* functions. Every function
// returns false on the first violation; depth is bounded so adversarially
// nested input cannot blow the stack.

constexpr int kMaxDepth = 64;

struct Cursor {
  std::string_view text;
  size_t pos = 0;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }
  bool Consume(char c) {
    if (AtEnd() || text[pos] != c) return false;
    ++pos;
    return true;
  }
  void SkipWhitespace() {
    while (!AtEnd()) {
      char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }
};

bool SkipValue(Cursor* cur, int depth);

bool IsHexDigit(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
         (c >= 'A' && c <= 'F');
}

bool SkipString(Cursor* cur) {
  if (!cur->Consume('"')) return false;
  while (!cur->AtEnd()) {
    char c = cur->text[cur->pos++];
    if (c == '"') return true;
    if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
    if (c != '\\') continue;
    if (cur->AtEnd()) return false;
    char esc = cur->text[cur->pos++];
    switch (esc) {
      case '"':
      case '\\':
      case '/':
      case 'b':
      case 'f':
      case 'n':
      case 'r':
      case 't':
        break;
      case 'u':
        for (int i = 0; i < 4; ++i) {
          if (cur->AtEnd() || !IsHexDigit(cur->text[cur->pos])) return false;
          ++cur->pos;
        }
        break;
      default:
        return false;
    }
  }
  return false;  // unterminated
}

bool SkipDigits(Cursor* cur) {
  size_t start = cur->pos;
  while (!cur->AtEnd() && cur->Peek() >= '0' && cur->Peek() <= '9') ++cur->pos;
  return cur->pos > start;
}

bool SkipNumber(Cursor* cur) {
  cur->Consume('-');
  if (cur->AtEnd()) return false;
  if (cur->Peek() == '0') {
    ++cur->pos;  // leading zero must stand alone
  } else if (!SkipDigits(cur)) {
    return false;
  }
  if (cur->Consume('.') && !SkipDigits(cur)) return false;
  if (!cur->AtEnd() && (cur->Peek() == 'e' || cur->Peek() == 'E')) {
    ++cur->pos;
    if (!cur->AtEnd() && (cur->Peek() == '+' || cur->Peek() == '-')) ++cur->pos;
    if (!SkipDigits(cur)) return false;
  }
  return true;
}

bool SkipLiteral(Cursor* cur, std::string_view word) {
  if (cur->text.substr(cur->pos, word.size()) != word) return false;
  cur->pos += word.size();
  return true;
}

bool SkipObject(Cursor* cur, int depth) {
  if (!cur->Consume('{')) return false;
  cur->SkipWhitespace();
  if (cur->Consume('}')) return true;
  while (true) {
    cur->SkipWhitespace();
    if (!SkipString(cur)) return false;
    cur->SkipWhitespace();
    if (!cur->Consume(':')) return false;
    if (!SkipValue(cur, depth)) return false;
    cur->SkipWhitespace();
    if (cur->Consume('}')) return true;
    if (!cur->Consume(',')) return false;
  }
}

bool SkipArray(Cursor* cur, int depth) {
  if (!cur->Consume('[')) return false;
  cur->SkipWhitespace();
  if (cur->Consume(']')) return true;
  while (true) {
    if (!SkipValue(cur, depth)) return false;
    cur->SkipWhitespace();
    if (cur->Consume(']')) return true;
    if (!cur->Consume(',')) return false;
  }
}

bool SkipValue(Cursor* cur, int depth) {
  if (depth > kMaxDepth) return false;
  cur->SkipWhitespace();
  if (cur->AtEnd()) return false;
  switch (cur->Peek()) {
    case '{':
      return SkipObject(cur, depth + 1);
    case '[':
      return SkipArray(cur, depth + 1);
    case '"':
      return SkipString(cur);
    case 't':
      return SkipLiteral(cur, "true");
    case 'f':
      return SkipLiteral(cur, "false");
    case 'n':
      return SkipLiteral(cur, "null");
    default:
      return SkipNumber(cur);
  }
}

}  // namespace

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonString(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  out += JsonEscape(text);
  out += '"';
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // %.17g is exact but verbose; prefer the shortest representation that
  // still round-trips so manifests stay human-readable.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[40];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, value);
    if (std::strtod(shorter, nullptr) == value) return shorter;
  }
  return buf;
}

bool JsonSyntaxValid(std::string_view text) {
  Cursor cur{text};
  if (!SkipValue(&cur, 0)) return false;
  cur.SkipWhitespace();
  return cur.AtEnd();
}

}  // namespace rlbench::obs
