// Scoped trace spans exported as Chrome trace-event JSON.
//
// RLBENCH_TRACE_SPAN("complexity/n2") opens a span for the enclosing
// scope; spans nest naturally (per-thread open-span stack) and completed
// spans land in a per-thread buffer — no locks, no cross-thread traffic
// on the hot path. WriteTraceIfEnabled() merges the buffers into one
// `{"traceEvents": [...]}` file loadable by chrome://tracing or
// https://ui.perfetto.dev.
//
// The parallel pool (common/parallel.cc) integrates directly: when a
// traced region fans out, every worker chunk appears as a nested span on
// that worker's track, labelled after the span that was open on the
// calling thread (see CurrentSpanName()).
//
// Gating mirrors the metrics registry: set RLBENCH_TRACE=<path> in the
// environment, or SetTraceFile() programmatically. Disabled cost is one
// relaxed atomic load per span. Tracing never changes what instrumented
// code computes — results stay bit-identical with tracing on or off.
#ifndef RLBENCH_SRC_OBS_TRACE_H_
#define RLBENCH_SRC_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace rlbench::obs {

namespace internal {

// 0 = unresolved (consult RLBENCH_TRACE), 1 = off, 2 = on.
// NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
extern std::atomic<int> g_trace_state;
int ResolveTraceState();

void BeginSpan(const char* name, uint64_t chunk, bool has_chunk);
void EndSpan();

}  // namespace internal

/// \brief True iff span recording is currently enabled.
inline bool TraceEnabled() {
  int state = internal::g_trace_state.load(std::memory_order_relaxed);
  if (state == 0) state = internal::ResolveTraceState();
  return state == 2;
}

/// \brief RAII span. `name` must stay valid for the span's lifetime — a
/// string literal, or a caller-owned string that outlives the scope (the
/// name is copied into the event buffer when the span closes).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (TraceEnabled()) {
      active_ = true;
      internal::BeginSpan(name, 0, false);
    }
  }
  /// Span tagged with a chunk index (rendered as `args.chunk`); used by
  /// the pool for per-chunk worker spans.
  TraceSpan(const char* name, uint64_t chunk) {
    if (TraceEnabled()) {
      active_ = true;
      internal::BeginSpan(name, chunk, true);
    }
  }
  ~TraceSpan() {
    if (active_) internal::EndSpan();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool active_ = false;
};

/// \brief Name of the innermost span open on this thread, or nullptr.
/// The pointer stays valid while that span remains open.
const char* CurrentSpanName();

/// \brief Names this thread's track in the exported trace ("main",
/// "pool-worker-3", ...). Safe to call whether or not tracing is enabled;
/// the name sticks for the thread's lifetime.
void SetCurrentThreadName(const std::string& name);

/// \brief Programmatic gate: non-empty enables tracing to `path`
/// (overriding RLBENCH_TRACE), empty disables. Also clears all buffered
/// events, so tests start from a clean slate. Must not be called while
/// spans are open or parallel work is in flight.
void SetTraceFile(const std::string& path);

/// \brief Resolved output path ("" when tracing is disabled).
std::string TraceFilePath();

/// \brief Events dropped because a thread hit its buffer cap.
uint64_t DroppedTraceEvents();

/// \brief Writes the merged Chrome trace JSON to TraceFilePath().
///
/// Call from the main thread with no parallel work in flight (bench
/// epilogues satisfy this: the pool quiesces before each Run() returns).
/// Returns the path written, or "" if tracing is disabled or the file
/// could not be opened. Buffered events are retained, so later calls
/// rewrite a superset.
std::string WriteTraceIfEnabled();

}  // namespace rlbench::obs

#define RLBENCH_TRACE_CONCAT_INNER_(a, b) a##b
#define RLBENCH_TRACE_CONCAT_(a, b) RLBENCH_TRACE_CONCAT_INNER_(a, b)

/// Opens a span covering the rest of the enclosing scope.
#define RLBENCH_TRACE_SPAN(name)              \
  ::rlbench::obs::TraceSpan RLBENCH_TRACE_CONCAT_(rlbench_trace_span_, \
                                                  __LINE__)(name)

#endif  // RLBENCH_SRC_OBS_TRACE_H_
