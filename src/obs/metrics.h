// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms with lock-free per-thread shards.
//
// Design constraints, in order:
//   1. Determinism — recording a metric may never change what the
//      instrumented code computes, and exported values must not depend on
//      the thread count. Counters/histograms merge by integer summation
//      (order-free); gauges merge by max (order-free); so any shard→thread
//      assignment yields the same export.
//   2. Near-zero cost when disabled — every RLBENCH_* macro is a single
//      relaxed atomic load on the off path; no registry lookup, no
//      allocation.
//   3. Race-freedom when enabled — hot-path updates are relaxed atomic
//      RMWs on cache-line-padded shards; registration takes a mutex once
//      per call site (cached in a function-local static).
//
// Enable with RLBENCH_METRICS=1 in the environment, or programmatically
// via Metrics::SetEnabled(true) (tests, micro_parallel). Export via
// Metrics snapshots — see manifest.h for the JSON embedding.
#ifndef RLBENCH_SRC_OBS_METRICS_H_
#define RLBENCH_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace rlbench::obs {

namespace internal {

// Shard count: a power of two comfortably above any realistic pool size so
// concurrent threads rarely collide on a cache line. Threads hash to a
// shard by a monotonically assigned thread ordinal mod kMetricShards;
// collisions are correct (atomic RMW), just slower.
inline constexpr size_t kMetricShards = 64;

struct alignas(64) CounterShard {
  std::atomic<uint64_t> value{0};
};

struct alignas(64) GaugeShard {
  std::atomic<uint64_t> count{0};
  std::atomic<double> max{0.0};
};

// Tri-state so MetricsEnabled() is one relaxed load after first resolution:
// 0 = unresolved (consult RLBENCH_METRICS), 1 = off, 2 = on.
// NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
extern std::atomic<int> g_metrics_state;
int ResolveMetricsState();

/// \brief Stable small ordinal for the calling thread (used mod kMetricShards).
size_t ThreadOrdinal();

}  // namespace internal

/// \brief True iff metric recording is currently enabled.
inline bool MetricsEnabled() {
  int state = internal::g_metrics_state.load(std::memory_order_relaxed);
  if (state == 0) state = internal::ResolveMetricsState();
  return state == 2;
}

/// \brief Monotonic event counter. Add() is lock-free; Value() merges the
/// shards by summation, so the total is thread-count invariant.
class Counter {
 public:
  void Add(uint64_t delta) {
    shards_[internal::ThreadOrdinal() % internal::kMetricShards].value
        .fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const;
  void Reset();

 private:
  friend class Metrics;
  Counter() = default;
  internal::CounterShard shards_[internal::kMetricShards];
};

/// \brief Max-merge gauge: records the largest value observed. Max is
/// commutative and associative, so the export is deterministic no matter
/// which thread observed what.
class Gauge {
 public:
  void Observe(double value);

  /// Largest observed value, or 0.0 if nothing was ever observed.
  double Value() const;
  uint64_t ObservationCount() const;
  void Reset();

 private:
  friend class Metrics;
  Gauge() = default;
  internal::GaugeShard shards_[internal::kMetricShards];
};

/// \brief Fixed-bucket histogram. Bucket upper bounds are set at first
/// registration and never change; sample `v` lands in the first bucket
/// with `v <= bound`, or the overflow bucket past the last bound. Counts
/// merge by summation; min/max merge by min/max — all order-free.
class Histogram {
 public:
  void Record(double value);

  uint64_t Count() const;
  double Sum() const;
  double Min() const;  ///< 0.0 when empty.
  double Max() const;  ///< 0.0 when empty.

  /// Merged per-bucket counts; size() == bounds().size() + 1, the last
  /// entry being the overflow bucket.
  std::vector<uint64_t> BucketCounts() const;
  const std::vector<double>& bounds() const { return bounds_; }

  /// \brief Upper bound of the bucket holding the `p`-quantile sample
  /// (`p` in [0, 1]); the overflow bucket reports the exact observed Max().
  /// Empty histograms report 0.0.
  double Percentile(double p) const;

  void Reset();

 private:
  friend class Metrics;
  explicit Histogram(std::vector<double> bounds);

  struct alignas(64) StatShard {
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};
    std::atomic<double> max{0.0};
    std::atomic<uint64_t> total{0};
  };

  std::vector<double> bounds_;  // ascending upper bounds
  size_t row_ = 0;  // bounds_.size() + 1 padded to a cache line multiple
  // Per-shard bucket counts, shard s owning counts_[s * row_ ... ).
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;
  StatShard stats_[internal::kMetricShards];
};

/// \brief Exponentially spaced bucket bounds: lo, lo*factor, ... (n bounds).
std::vector<double> ExponentialBounds(double lo, double factor, size_t n);

/// \brief Evenly spaced bounds over [lo, hi] (n bounds, last == hi).
std::vector<double> LinearBounds(double lo, double hi, size_t n);

/// \brief The process-wide registry. Metric objects are created on first
/// use, never moved or destroyed, so cached references stay valid forever.
class Metrics {
 public:
  static Metrics& Instance();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// First registration fixes the bucket bounds; later calls with the same
  /// name return the existing histogram regardless of `bounds`.
  Histogram& GetHistogram(const std::string& name, std::vector<double> bounds);

  /// Programmatic override of the RLBENCH_METRICS gate (tests, benches).
  static void SetEnabled(bool enabled);

  /// Zeroes every registered metric (tests). Not safe concurrently with
  /// recording on other threads.
  void ResetAll();

  // Deterministic exports: entries sorted by name.
  std::vector<std::pair<std::string, const Counter*>> Counters() const;
  std::vector<std::pair<std::string, const Gauge*>> Gauges() const;
  std::vector<std::pair<std::string, const Histogram*>> Histograms() const;

 private:
  Metrics() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace rlbench::obs

// Hot-path macros. Each caches its registry lookup in a function-local
// static (initialised thread-safely on the first *enabled* pass through
// the call site, then pinned forever — registry objects are never freed)
// and is a no-op — one relaxed load — while metrics are disabled.
#define RLBENCH_OBS_CONCAT_INNER_(a, b) a##b
#define RLBENCH_OBS_CONCAT_(a, b) RLBENCH_OBS_CONCAT_INNER_(a, b)

#define RLBENCH_COUNTER_ADD(name, delta)                                 \
  do {                                                                   \
    if (::rlbench::obs::MetricsEnabled()) {                              \
      static ::rlbench::obs::Counter& rlbench_obs_counter_ =             \
          ::rlbench::obs::Metrics::Instance().GetCounter(name);          \
      rlbench_obs_counter_.Add(static_cast<uint64_t>(delta));            \
    }                                                                    \
  } while (0)

#define RLBENCH_COUNTER_INC(name) RLBENCH_COUNTER_ADD(name, 1)

#define RLBENCH_GAUGE_OBSERVE(name, value)                               \
  do {                                                                   \
    if (::rlbench::obs::MetricsEnabled()) {                              \
      static ::rlbench::obs::Gauge& rlbench_obs_gauge_ =                 \
          ::rlbench::obs::Metrics::Instance().GetGauge(name);            \
      rlbench_obs_gauge_.Observe(static_cast<double>(value));            \
    }                                                                    \
  } while (0)

#define RLBENCH_HISTOGRAM_RECORD(name, bounds, value)                    \
  do {                                                                   \
    if (::rlbench::obs::MetricsEnabled()) {                              \
      static ::rlbench::obs::Histogram& rlbench_obs_histogram_ =         \
          ::rlbench::obs::Metrics::Instance().GetHistogram(name, bounds); \
      rlbench_obs_histogram_.Record(static_cast<double>(value));         \
    }                                                                    \
  } while (0)

#endif  // RLBENCH_SRC_OBS_METRICS_H_
