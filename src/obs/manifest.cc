#include "obs/manifest.h"

#include <cstdio>
#include <mutex>

#include "obs/json.h"
#include "obs/metrics.h"

namespace rlbench::obs {

namespace {

// `git describe` of the working tree, resolved once per process. Benches
// run from arbitrary cwds, so a failure (no git, no repo) degrades to
// "unknown" rather than erroring.
std::string GitDescribe() {
  static std::once_flag once;
  static std::string cached = "unknown";
  std::call_once(once, [] {
    FILE* pipe =
        popen("git describe --always --dirty --tags 2>/dev/null", "r");
    if (pipe == nullptr) return;
    char buf[256];
    std::string out;
    while (std::fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
    if (pclose(pipe) == 0 && !out.empty()) {
      while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
        out.pop_back();
      }
      if (!out.empty()) cached = out;
    }
  });
  return cached;
}

void AppendHistogramJson(std::string* out, const Histogram& histogram) {
  *out += "{\"count\": " + std::to_string(histogram.Count());
  *out += ", \"sum\": " + JsonNumber(histogram.Sum());
  *out += ", \"min\": " + JsonNumber(histogram.Min());
  *out += ", \"max\": " + JsonNumber(histogram.Max());
  *out += ", \"p50\": " + JsonNumber(histogram.Percentile(0.5));
  *out += ", \"p90\": " + JsonNumber(histogram.Percentile(0.9));
  *out += ", \"p99\": " + JsonNumber(histogram.Percentile(0.99));
  *out += "}";
}

}  // namespace

// The trace span inside an open phase needs a stable name string; the
// holder owns the copy so `phases_` reallocations cannot dangle it.
struct RunManifest::PhaseSpan {
  explicit PhaseSpan(std::string phase_name)
      : name(std::move(phase_name)), span(name.c_str()) {}
  std::string name;
  TraceSpan span;
};

RunManifest::RunManifest(std::string bench_name)
    : name_(std::move(bench_name)), start_(std::chrono::steady_clock::now()) {}

RunManifest::~RunManifest() = default;

void RunManifest::AddConfig(const std::string& key, const std::string& value) {
  config_.emplace_back(key, JsonString(value));
}

void RunManifest::AddConfig(const std::string& key, double value) {
  config_.emplace_back(key, JsonNumber(value));
}

void RunManifest::AddConfig(const std::string& key, int64_t value) {
  config_.emplace_back(key, std::to_string(value));
}

void RunManifest::BeginPhase(const std::string& phase_name) {
  phases_.push_back(Phase{phase_name, 0.0, true, false, ""});
  phase_stack_.push_back(phases_.size() - 1);
  phase_spans_.push_back(std::make_unique<PhaseSpan>(phase_name));
  phase_starts_.push_back(std::chrono::steady_clock::now());
}

void RunManifest::EndPhase() {
  if (phase_stack_.empty()) return;
  phase_spans_.pop_back();  // closes the trace span first
  size_t index = phase_stack_.back();
  phase_stack_.pop_back();
  auto started = phase_starts_.back();
  phase_starts_.pop_back();
  phases_[index].seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  phases_[index].open = false;
}

void RunManifest::FailPhase(const std::string& error) {
  if (phase_stack_.empty()) return;
  Phase& phase = phases_[phase_stack_.back()];
  phase.failed = true;
  phase.error = error;
}

void RunManifest::AddCompletedPhase(const std::string& phase_name,
                                    double seconds, bool failed,
                                    const std::string& error) {
  phases_.push_back(Phase{phase_name, seconds, false, failed, error});
}

bool RunManifest::HasFailedPhase() const {
  for (const Phase& phase : phases_) {
    if (phase.failed) return true;
  }
  return false;
}

double RunManifest::TotalSeconds() const {
  if (frozen_total_ >= 0.0) return frozen_total_;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

void RunManifest::Finalize() {
  frozen_total_ = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
}

std::string RunManifest::ToJson() const {
  std::string out = "{\n";
  out += "  \"schema_version\": 2,\n";
  out += "  \"bench\": " + JsonString(name_) + ",\n";
  out += "  \"git\": " + JsonString(GitDescribe()) + ",\n";
  out += "  \"threads\": " + std::to_string(threads_) + ",\n";
  out += "  \"hardware_concurrency\": " +
         std::to_string(hardware_concurrency_) + ",\n";
  out += "  \"peak_rss_bytes\": " + std::to_string(peak_rss_bytes_) + ",\n";
  if (has_seed_) {
    out += "  \"seed\": " + std::to_string(seed_) + ",\n";
  }
  out += "  \"datasets\": [";
  for (size_t i = 0; i < datasets_.size(); ++i) {
    if (i > 0) out += ", ";
    out += JsonString(datasets_[i]);
  }
  out += "],\n";
  out += "  \"config\": {";
  for (size_t i = 0; i < config_.size(); ++i) {
    if (i > 0) out += ", ";
    out += JsonString(config_[i].first) + ": " + config_[i].second;
  }
  out += "},\n";
  out += "  \"phases\": [";
  for (size_t i = 0; i < phases_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"name\": " + JsonString(phases_[i].name) +
           ", \"seconds\": " + JsonNumber(phases_[i].seconds) +
           ", \"status\": " + (phases_[i].failed ? "\"failed\"" : "\"ok\"");
    if (phases_[i].failed) {
      out += ", \"error\": " + JsonString(phases_[i].error);
    }
    out += "}";
  }
  out += "],\n";
  out += "  \"total_seconds\": " + JsonNumber(TotalSeconds());
  if (!trace_file_.empty()) {
    out += ",\n  \"trace_file\": " + JsonString(trace_file_);
  }
  if (MetricsEnabled()) {
    Metrics& metrics = Metrics::Instance();
    out += ",\n  \"counters\": {";
    bool first = true;
    for (const auto& entry : metrics.Counters()) {
      if (!first) out += ", ";
      first = false;
      out += "\n    " + JsonString(entry.first) + ": " +
             std::to_string(entry.second->Value());
    }
    out += first ? "}" : "\n  }";
    out += ",\n  \"gauges\": {";
    first = true;
    for (const auto& entry : metrics.Gauges()) {
      if (!first) out += ", ";
      first = false;
      out += "\n    " + JsonString(entry.first) + ": " +
             JsonNumber(entry.second->Value());
    }
    out += first ? "}" : "\n  }";
    out += ",\n  \"histograms\": {";
    first = true;
    for (const auto& entry : metrics.Histograms()) {
      if (!first) out += ", ";
      first = false;
      out += "\n    " + JsonString(entry.first) + ": ";
      AppendHistogramJson(&out, *entry.second);
    }
    out += first ? "}" : "\n  }";
  }
  out += "\n}\n";
  return out;
}

}  // namespace rlbench::obs
