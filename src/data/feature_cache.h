// Per-record derived-feature caches. Records participate in many candidate
// pairs, so token sets, q-gram sets and token sequences are computed once
// per record and shared across every pair that touches the record. This is
// the main performance lever for Algorithm 1, the ESDE matchers and the
// Magellan feature extractor.
#ifndef RLBENCH_SRC_DATA_FEATURE_CACHE_H_
#define RLBENCH_SRC_DATA_FEATURE_CACHE_H_

#include <memory>
#include <optional>
#include <vector>

#include "data/record.h"
#include "text/qgrams.h"
#include "text/tokenizer.h"

namespace rlbench::data {

/// \brief Lazily memoised per-record text features over one table.
///
/// Two-phase threading contract (common/parallel.h drives the phases):
///
///   Phase 1 — warm-up. Entries are filled either lazily by the accessors
///   (single-threaded callers only) or in bulk by the Warm*() methods,
///   which parallelise over records (each record's entry is written by
///   exactly one chunk, so warm-up itself is deterministic and race-free).
///
///   Phase 2 — frozen. After Freeze() the cache is immutable and any number
///   of threads may call the accessors concurrently. A cache miss in this
///   phase is a contract violation (the warm-up was incomplete) and trips
///   RLBENCH_DCHECK instead of racing on a lazy fill. Thaw() re-enters
///   phase 1; the caller must sequence it after all concurrent readers
///   have finished (parallel regions in this codebase always end before
///   control returns, so calling Thaw() between regions is safe).
class RecordFeatureCache {
 public:
  static constexpr int kMinQ = 2;
  static constexpr int kMaxQ = 10;

  /// Characters of text considered when building q-gram sets; bounds the
  /// per-record memory on long-text datasets (q-gram sets grow linearly in
  /// text length and are cached for nine values of q).
  static constexpr size_t kQGramCharCap = 160;

  explicit RecordFeatureCache(const Table* table);

  const Table& table() const { return *table_; }

  /// Lower-cased tokens of all attribute values, in order (schema-agnostic).
  const std::vector<std::string>& Tokens(size_t record) const;

  /// Deduplicated token set over all attribute values (schema-agnostic).
  const text::TokenSet& TokenSetAll(size_t record) const;

  /// Token set of one attribute value.
  const text::TokenSet& TokenSetAttr(size_t record, size_t attr) const;

  /// Tokens of one attribute value.
  const std::vector<std::string>& TokensAttr(size_t record, size_t attr) const;

  /// q-gram set over the concatenation of all attribute values,
  /// q in [kMinQ, kMaxQ].
  const text::TokenSet& QGramSetAll(size_t record, int q) const;

  /// q-gram set of one attribute value.
  const text::TokenSet& QGramSetAttr(size_t record, size_t attr, int q) const;

  // --- Phase control ---------------------------------------------------------

  /// Bulk-fill every token-derived slot (Tokens, TokenSetAll, per-attribute
  /// tokens and token sets) for all records; parallel over records.
  /// Warm-up phase only.
  void WarmTokens() const;

  /// Bulk-fill every q-gram slot (schema-agnostic and per-attribute, all q)
  /// for all records; parallel over records. Warm-up phase only.
  void WarmQGrams() const;

  /// Enter the frozen (immutable, concurrent-read) phase. Idempotent.
  void Freeze() const { frozen_ = true; }

  /// Return to the warm-up phase. The caller must guarantee no concurrent
  /// readers are in flight.
  void Thaw() const { frozen_ = false; }

  bool frozen() const { return frozen_; }

 private:
  struct Entry {
    std::optional<std::vector<std::string>> tokens;
    std::optional<text::TokenSet> token_set_all;
    std::vector<std::optional<text::TokenSet>> token_set_attr;
    std::vector<std::optional<std::vector<std::string>>> tokens_attr;
    // Indexed [q - kMinQ].
    std::vector<std::optional<text::TokenSet>> qgrams_all;
    // Indexed [attr * kNumQ + (q - kMinQ)].
    std::vector<std::optional<text::TokenSet>> qgrams_attr;
  };

  static constexpr int kNumQ = kMaxQ - kMinQ + 1;

  Entry& entry(size_t record) const { return entries_[record]; }

  /// Fill every token-derived slot of one record (warm-up work item).
  void FillTokenSlots(Entry& e, size_t record) const;

  /// Fill every q-gram slot of one record (warm-up work item).
  void FillQGramSlots(Entry& e, size_t record) const;

  const Table* table_;
  mutable std::vector<Entry> entries_;
  mutable bool frozen_ = false;
  // Warm*() is idempotent and gets re-invoked from both the row path
  // (MatchingContext construction) and the batch paths (ESDE warm-up,
  // ColumnarStore build). These flags make the re-warms O(1) no-ops and
  // keep the feature_cache/warmed_*_records counters exact — each record
  // population is counted once, not once per caller.
  mutable bool tokens_warmed_ = false;
  mutable bool qgrams_warmed_ = false;
};

}  // namespace rlbench::data

#endif  // RLBENCH_SRC_DATA_FEATURE_CACHE_H_
