// Relational record model. A record linkage task compares records from two
// duplicate-free sources that share a schema (the paper's Clean-Clean ER
// setting); records are identified positionally within their table.
#ifndef RLBENCH_SRC_DATA_RECORD_H_
#define RLBENCH_SRC_DATA_RECORD_H_

#include <string>
#include <vector>

namespace rlbench::data {

/// \brief Ordered attribute names shared by the records of a table.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> attributes)
      : attributes_(std::move(attributes)) {}

  size_t num_attributes() const { return attributes_.size(); }
  const std::string& attribute(size_t i) const { return attributes_[i]; }
  const std::vector<std::string>& attributes() const { return attributes_; }

  /// Index of the attribute with the given name, or -1 if absent.
  int IndexOf(const std::string& name) const;

  bool operator==(const Schema& other) const = default;

 private:
  std::vector<std::string> attributes_;
};

/// \brief One entity description: an id plus one value per schema attribute.
struct Record {
  std::string id;
  std::vector<std::string> values;

  /// Concatenation of all attribute values separated by single spaces.
  std::string ConcatenatedValues() const;
};

/// \brief A named collection of records under one schema.
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  const Record& record(size_t i) const { return records_[i]; }
  Record& record(size_t i) { return records_[i]; }
  const std::vector<Record>& records() const { return records_; }

  void Add(Record record) { records_.push_back(std::move(record)); }
  void Reserve(size_t n) { records_.reserve(n); }

 private:
  std::string name_;
  Schema schema_;
  std::vector<Record> records_;
};

}  // namespace rlbench::data

#endif  // RLBENCH_SRC_DATA_RECORD_H_
