#include "data/task.h"

namespace rlbench::data {

PairSetStats ComputeStats(const std::vector<LabeledPair>& pairs) {
  PairSetStats stats;
  stats.total = pairs.size();
  for (const auto& pair : pairs) {
    if (pair.is_match) {
      ++stats.positives;
    } else {
      ++stats.negatives;
    }
  }
  return stats;
}

std::vector<LabeledPair> MatchingTask::AllPairs() const {
  std::vector<LabeledPair> all;
  all.reserve(train_.size() + valid_.size() + test_.size());
  all.insert(all.end(), train_.begin(), train_.end());
  all.insert(all.end(), valid_.begin(), valid_.end());
  all.insert(all.end(), test_.begin(), test_.end());
  return all;
}

}  // namespace rlbench::data
