#include "data/benchmark_io.h"

#include <filesystem>

#include "data/csv.h"

namespace rlbench::data {

Status ExportBenchmark(const MatchingTask& task,
                       const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) return Status::IOError("cannot create " + directory);
  RLBENCH_RETURN_NOT_OK(WriteTableCsv(task.left(), directory + "/d1.csv"));
  RLBENCH_RETURN_NOT_OK(WriteTableCsv(task.right(), directory + "/d2.csv"));
  RLBENCH_RETURN_NOT_OK(WritePairsCsv(task.train(), directory + "/train.csv"));
  RLBENCH_RETURN_NOT_OK(WritePairsCsv(task.valid(), directory + "/valid.csv"));
  RLBENCH_RETURN_NOT_OK(WritePairsCsv(task.test(), directory + "/test.csv"));
  return Status::OK();
}

Result<MatchingTask> ImportBenchmark(const std::string& directory,
                                     const std::string& name,
                                     const ImportOptions& options) {
  std::error_code ec;
  if (!std::filesystem::is_directory(directory, ec) || ec) {
    return Status::NotFound("no such benchmark directory: " + directory);
  }
  CsvReadOptions csv_options;
  csv_options.lenient = options.lenient;
  csv_options.quarantine = options.quarantine;

  RLBENCH_ASSIGN_OR_RETURN(
      Table d1, ReadTableCsv(directory + "/d1.csv", "d1", csv_options));
  RLBENCH_ASSIGN_OR_RETURN(
      Table d2, ReadTableCsv(directory + "/d2.csv", "d2", csv_options));

  size_t left_size = d1.size();
  size_t right_size = d2.size();

  // Validate one split: strict rejects the import at the first bad index,
  // lenient quarantines and drops the pair.
  auto load_split =
      [&](const std::string& file) -> Result<std::vector<LabeledPair>> {
    std::string path = directory + "/" + file;
    RLBENCH_ASSIGN_OR_RETURN(std::vector<LabeledPair> pairs,
                             ReadPairsCsv(path, csv_options));
    std::vector<LabeledPair> kept;
    kept.reserve(pairs.size());
    for (const auto& pair : pairs) {
      if (pair.left < left_size && pair.right < right_size) {
        kept.push_back(pair);
        continue;
      }
      std::string reason = "pair index out of range: (" +
                           std::to_string(pair.left) + ", " +
                           std::to_string(pair.right) + ") vs tables of " +
                           std::to_string(left_size) + " x " +
                           std::to_string(right_size);
      if (!options.lenient) {
        return Status::InvalidArgument(path + ": " + reason);
      }
      if (options.quarantine != nullptr) {
        options.quarantine->Add(path, 0, reason);
      }
    }
    return kept;
  };

  RLBENCH_ASSIGN_OR_RETURN(std::vector<LabeledPair> train,
                           load_split("train.csv"));
  RLBENCH_ASSIGN_OR_RETURN(std::vector<LabeledPair> valid,
                           load_split("valid.csv"));
  RLBENCH_ASSIGN_OR_RETURN(std::vector<LabeledPair> test,
                           load_split("test.csv"));

  MatchingTask task(name, std::move(d1), std::move(d2));
  task.set_train(std::move(train));
  task.set_valid(std::move(valid));
  task.set_test(std::move(test));
  return task;
}

}  // namespace rlbench::data
