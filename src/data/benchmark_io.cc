#include "data/benchmark_io.h"

#include <filesystem>

#include "data/csv.h"

namespace rlbench::data {

Status ExportBenchmark(const MatchingTask& task,
                       const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) return Status::IOError("cannot create " + directory);
  RLBENCH_RETURN_NOT_OK(WriteTableCsv(task.left(), directory + "/d1.csv"));
  RLBENCH_RETURN_NOT_OK(WriteTableCsv(task.right(), directory + "/d2.csv"));
  RLBENCH_RETURN_NOT_OK(WritePairsCsv(task.train(), directory + "/train.csv"));
  RLBENCH_RETURN_NOT_OK(WritePairsCsv(task.valid(), directory + "/valid.csv"));
  RLBENCH_RETURN_NOT_OK(WritePairsCsv(task.test(), directory + "/test.csv"));
  return Status::OK();
}

Result<MatchingTask> ImportBenchmark(const std::string& directory,
                                     const std::string& name) {
  auto d1 = ReadTableCsv(directory + "/d1.csv", "d1");
  if (!d1.ok()) return d1.status();
  auto d2 = ReadTableCsv(directory + "/d2.csv", "d2");
  if (!d2.ok()) return d2.status();
  auto train = ReadPairsCsv(directory + "/train.csv");
  if (!train.ok()) return train.status();
  auto valid = ReadPairsCsv(directory + "/valid.csv");
  if (!valid.ok()) return valid.status();
  auto test = ReadPairsCsv(directory + "/test.csv");
  if (!test.ok()) return test.status();

  size_t left_size = d1->size();
  size_t right_size = d2->size();
  for (const auto* split : {&*train, &*valid, &*test}) {
    for (const auto& pair : *split) {
      if (pair.left >= left_size || pair.right >= right_size) {
        return Status::InvalidArgument(
            "pair index out of range in " + directory);
      }
    }
  }

  MatchingTask task(name, std::move(*d1), std::move(*d2));
  task.set_train(std::move(*train));
  task.set_valid(std::move(*valid));
  task.set_test(std::move(*test));
  return task;
}

}  // namespace rlbench::data
