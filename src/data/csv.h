// CSV serialisation for tables and labelled pair sets, RFC-4180 style
// quoting. Lets users export generated benchmarks and import their own.
//
// Reads come in two modes. Strict (the default) rejects the whole file at
// the first malformed row with a precise Status. Lenient quarantines each
// malformed row into a QuarantineReport and keeps going, so one torn line
// cannot gate a whole dataset. File-level damage (unreadable file, empty
// document, bad header) is an error in both modes.
#ifndef RLBENCH_SRC_DATA_CSV_H_
#define RLBENCH_SRC_DATA_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/quarantine.h"
#include "data/record.h"
#include "data/task.h"

namespace rlbench::data {

/// Row-level tolerance for ReadTableCsv / ReadPairsCsv.
struct CsvReadOptions {
  /// Quarantine malformed rows instead of failing the whole read.
  bool lenient = false;
  /// Collects quarantined rows in lenient mode (may be nullptr).
  QuarantineReport* quarantine = nullptr;
};

/// Parse one CSV document into rows of fields. Handles quoted fields with
/// embedded commas, quotes ("" escape) and newlines. Row terminators: LF,
/// CRLF, and lone CR all end a row; a final row without a trailing
/// terminator is kept. A quote still open at end of input is an
/// InvalidArgument, never silently closed.
[[nodiscard]] Result<std::vector<std::vector<std::string>>> ParseCsv(const std::string& text);

/// Serialise rows of fields to CSV text, quoting where needed.
std::string WriteCsv(const std::vector<std::vector<std::string>>& rows);

/// Read a table from a CSV file: first row is the header, first column is
/// the record id, remaining columns are the schema attributes. Every data
/// row must have exactly the header's arity; offenders fail the read
/// (strict) or are quarantined (lenient). Failpoint: data/csv/table_row.
[[nodiscard]] Result<Table> ReadTableCsv(const std::string& path, const std::string& name,
                           const CsvReadOptions& options = {});

/// Write a table in the same layout (atomically: temp file + rename).
[[nodiscard]] Status WriteTableCsv(const Table& table, const std::string& path);

/// Read labelled pairs from a CSV file. The header must be exactly
/// "left,right,label" (ASCII case-insensitive); rows must carry two
/// non-negative integers that fit in uint32 and a label in {0, 1, true,
/// false}. Offenders fail the read (strict) or are quarantined (lenient).
/// Failpoint: data/csv/pair_row.
[[nodiscard]] Result<std::vector<LabeledPair>> ReadPairsCsv(
    const std::string& path, const CsvReadOptions& options = {});

/// Write labelled pairs in the same layout (atomically).
[[nodiscard]] Status WritePairsCsv(const std::vector<LabeledPair>& pairs,
                     const std::string& path);

}  // namespace rlbench::data

#endif  // RLBENCH_SRC_DATA_CSV_H_
