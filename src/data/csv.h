// CSV serialisation for tables and labelled pair sets, RFC-4180 style
// quoting. Lets users export generated benchmarks and import their own.
#ifndef RLBENCH_SRC_DATA_CSV_H_
#define RLBENCH_SRC_DATA_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/record.h"
#include "data/task.h"

namespace rlbench::data {

/// Parse one CSV document into rows of fields. Handles quoted fields with
/// embedded commas, quotes ("" escape) and newlines. CRLF is accepted.
Result<std::vector<std::vector<std::string>>> ParseCsv(const std::string& text);

/// Serialise rows of fields to CSV text, quoting where needed.
std::string WriteCsv(const std::vector<std::vector<std::string>>& rows);

/// Read a table from a CSV file: first row is the header, first column is
/// the record id, remaining columns are the schema attributes.
Result<Table> ReadTableCsv(const std::string& path, const std::string& name);

/// Write a table in the same layout.
Status WriteTableCsv(const Table& table, const std::string& path);

/// Read labelled pairs from a CSV file with header "left,right,label".
Result<std::vector<LabeledPair>> ReadPairsCsv(const std::string& path);

/// Write labelled pairs in the same layout.
Status WritePairsCsv(const std::vector<LabeledPair>& pairs,
                     const std::string& path);

}  // namespace rlbench::data

#endif  // RLBENCH_SRC_DATA_CSV_H_
