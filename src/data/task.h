// The labelled matching task: candidate pairs over two tables partitioned
// into training, validation and testing sets (Problem 1 in the paper).
#ifndef RLBENCH_SRC_DATA_TASK_H_
#define RLBENCH_SRC_DATA_TASK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/record.h"

namespace rlbench::data {

/// \brief One candidate pair with its ground-truth label.
///
/// Indices refer to positions in the task's left and right tables.
struct LabeledPair {
  uint32_t left = 0;
  uint32_t right = 0;
  bool is_match = false;
};

/// Counts of positive and negative pairs in a pair set.
struct PairSetStats {
  size_t total = 0;
  size_t positives = 0;
  size_t negatives = 0;

  /// Imbalance ratio: positives / total, as in Table III's IR column.
  double ImbalanceRatio() const {
    return total == 0 ? 0.0 : static_cast<double>(positives) /
                                  static_cast<double>(total);
  }
};

PairSetStats ComputeStats(const std::vector<LabeledPair>& pairs);

/// \brief A complete supervised matching benchmark.
///
/// Owns the two record tables and the three mutually exclusive labelled
/// pair sets (train : valid : test, typically 3:1:1).
class MatchingTask {
 public:
  MatchingTask() = default;
  MatchingTask(std::string name, Table left, Table right)
      : name_(std::move(name)),
        left_(std::move(left)),
        right_(std::move(right)) {}

  const std::string& name() const { return name_; }
  const Table& left() const { return left_; }
  const Table& right() const { return right_; }

  const std::vector<LabeledPair>& train() const { return train_; }
  const std::vector<LabeledPair>& valid() const { return valid_; }
  const std::vector<LabeledPair>& test() const { return test_; }

  void set_train(std::vector<LabeledPair> pairs) { train_ = std::move(pairs); }
  void set_valid(std::vector<LabeledPair> pairs) { valid_ = std::move(pairs); }
  void set_test(std::vector<LabeledPair> pairs) { test_ = std::move(pairs); }

  /// All labelled pairs (train + valid + test), the set D of Algorithm 1.
  std::vector<LabeledPair> AllPairs() const;

  PairSetStats TrainStats() const { return ComputeStats(train_); }
  PairSetStats ValidStats() const { return ComputeStats(valid_); }
  PairSetStats TestStats() const { return ComputeStats(test_); }
  PairSetStats TotalStats() const { return ComputeStats(AllPairs()); }

 private:
  std::string name_;
  Table left_;
  Table right_;
  std::vector<LabeledPair> train_;
  std::vector<LabeledPair> valid_;
  std::vector<LabeledPair> test_;
};

}  // namespace rlbench::data

#endif  // RLBENCH_SRC_DATA_TASK_H_
