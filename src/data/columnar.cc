#include "data/columnar.h"

#include <algorithm>

#include "common/check.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/kernels.h"

namespace rlbench::data {

namespace {
// Records per chunk in the parallel fill passes; columnar fill per record
// is a few microseconds, matching the feature-cache warm grain.
constexpr size_t kBuildGrain = 64;
}  // namespace

void PackedMatrix::Reset(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0F);
  sorted_.clear();
  sorted_built_ = false;
}

std::span<const float> PackedMatrix::row(size_t r) const {
  RLBENCH_DCHECK_INDEX(r, rows_);
  return {data_.data() + r * cols_, cols_};
}

std::span<float> PackedMatrix::mutable_row(size_t r) {
  RLBENCH_DCHECK_INDEX(r, rows_);
  return {data_.data() + r * cols_, cols_};
}

void PackedMatrix::BuildSortedRows() {
  sorted_ = data_;
  ParallelFor(0, rows_, kBuildGrain, [this](size_t r) {
    float* begin = sorted_.data() + r * cols_;
    std::sort(begin, begin + cols_);
  });
  sorted_built_ = true;
}

std::span<const float> PackedMatrix::sorted_row(size_t r) const {
  RLBENCH_DCHECK(sorted_built_);
  RLBENCH_DCHECK_INDEX(r, rows_);
  return {sorted_.data() + r * cols_, cols_};
}

ColumnarStore::ColumnarStore(const RecordFeatureCache& left,
                             const RecordFeatureCache& right)
    : caches_{&left, &right},
      num_attrs_(left.table().schema().num_attributes()) {
  RLBENCH_TRACE_SPAN("data/columnar/build");
  RLBENCH_CHECK_EQ(num_attrs_,
                   right.table().schema().num_attributes());
  // Token slots must be complete before the parallel fill reads them; the
  // re-warm is a no-op when the context already warmed the caches.
  if (!left.frozen()) left.WarmTokens();
  if (!right.frozen()) right.WarmTokens();
  BuildVocab();
  BuildTokenColumns(kLeft);
  BuildTokenColumns(kRight);
  RLBENCH_GAUGE_OBSERVE("columnar/vocab_size", vocab_.size());
  RLBENCH_COUNTER_ADD("columnar/token_ids", sides_[kLeft].ids_all.size() +
                                                sides_[kRight].ids_all.size());
}

void ColumnarStore::BuildVocab() {
  RLBENCH_TRACE_SPAN("data/columnar/vocab");
  size_t total = 0;
  for (const RecordFeatureCache* cache : caches_) {
    for (size_t r = 0; r < cache->table().size(); ++r) {
      total += cache->TokenSetAll(r).size();
    }
  }
  vocab_.reserve(total);
  for (const RecordFeatureCache* cache : caches_) {
    for (size_t r = 0; r < cache->table().size(); ++r) {
      const auto& hashes = cache->TokenSetAll(r).hashes();
      vocab_.insert(vocab_.end(), hashes.begin(), hashes.end());
    }
  }
  std::sort(vocab_.begin(), vocab_.end());
  vocab_.erase(std::unique(vocab_.begin(), vocab_.end()), vocab_.end());
  // Rank interning requires ids to fit uint32; a vocabulary past 4B unique
  // tokens is far outside any benchmark in this repo.
  RLBENCH_CHECK_LT(vocab_.size(), size_t{UINT32_MAX});
}

uint32_t ColumnarStore::IdOfHash(uint64_t hash) const {
  auto it = std::lower_bound(vocab_.begin(), vocab_.end(), hash);
  if (it == vocab_.end() || *it != hash) {
    return static_cast<uint32_t>(vocab_.size());
  }
  return static_cast<uint32_t>(it - vocab_.begin());
}

namespace {

/// Map a sorted unique hash array onto its vocabulary ranks. Monotone, so
/// the output is sorted unique too.
void MapHashesToIds(const std::vector<uint64_t>& hashes,
                    const std::vector<uint64_t>& vocab, uint32_t* out) {
  auto pos = vocab.begin();
  for (size_t i = 0; i < hashes.size(); ++i) {
    pos = std::lower_bound(pos, vocab.end(), hashes[i]);
    RLBENCH_DCHECK(pos != vocab.end() && *pos == hashes[i]);
    out[i] = static_cast<uint32_t>(pos - vocab.begin());
  }
}

}  // namespace

void ColumnarStore::BuildTokenColumns(size_t side) {
  RLBENCH_TRACE_SPAN("data/columnar/token_columns");
  const RecordFeatureCache& cache = *caches_[side];
  const Table& table = cache.table();
  SideColumns& c = sides_[side];
  size_t n = table.size();
  size_t attrs = num_attrs_;
  c.records = n;

  // Sizing pass: every offset is fixed here, so the parallel fill below
  // writes disjoint, pre-addressed slices (bit-identical at any thread
  // count).
  c.ids_all_off.assign(n + 1, 0);
  c.ids_attr_off.assign(n * attrs + 1, 0);
  c.token_seq_off.assign(n * attrs + 1, 0);
  std::vector<size_t> token_byte_off(n * attrs + 1, 0);
  std::vector<size_t> lowered_off(n * attrs + 1, 0);
  for (size_t r = 0; r < n; ++r) {
    c.ids_all_off[r + 1] = c.ids_all_off[r] + cache.TokenSetAll(r).size();
    for (size_t a = 0; a < attrs; ++a) {
      size_t slot = r * attrs + a;
      c.ids_attr_off[slot + 1] =
          c.ids_attr_off[slot] + cache.TokenSetAttr(r, a).size();
      const auto& tokens = cache.TokensAttr(r, a);
      size_t bytes = 0;
      for (const auto& t : tokens) bytes += t.size();
      c.token_seq_off[slot + 1] = c.token_seq_off[slot] + tokens.size();
      token_byte_off[slot + 1] = token_byte_off[slot] + bytes;
      lowered_off[slot + 1] =
          lowered_off[slot] + table.record(r).values[a].size();
    }
  }

  c.ids_all.resize(c.ids_all_off[n]);
  c.ids_attr.resize(c.ids_attr_off[n * attrs]);
  c.token_views.resize(c.token_seq_off[n * attrs]);
  c.token_chars.resize(token_byte_off[n * attrs]);
  c.lowered_chars.resize(lowered_off[n * attrs]);
  c.lowered_views.resize(n * attrs);
  c.values.resize(n * attrs);
  c.numeric_ok.assign(n * attrs, 0);
  c.numeric_val.assign(n * attrs, 0.0);

  ParallelFor(0, n, kBuildGrain, [&](size_t r) {
    MapHashesToIds(cache.TokenSetAll(r).hashes(), vocab_,
                   c.ids_all.data() + c.ids_all_off[r]);
    for (size_t a = 0; a < attrs; ++a) {
      size_t slot = r * attrs + a;
      MapHashesToIds(cache.TokenSetAttr(r, a).hashes(), vocab_,
                     c.ids_attr.data() + c.ids_attr_off[slot]);
      const auto& tokens = cache.TokensAttr(r, a);
      size_t byte_pos = token_byte_off[slot];
      for (size_t t = 0; t < tokens.size(); ++t) {
        std::copy(tokens[t].begin(), tokens[t].end(),
                  c.token_chars.begin() + byte_pos);
        c.token_views[c.token_seq_off[slot] + t] =
            std::string_view(c.token_chars.data() + byte_pos,
                             tokens[t].size());
        byte_pos += tokens[t].size();
      }
      const std::string& value = table.record(r).values[a];
      c.values[slot] = value;
      std::string lowered = ToLowerAscii(value);
      std::copy(lowered.begin(), lowered.end(),
                c.lowered_chars.begin() + lowered_off[slot]);
      c.lowered_views[slot] = std::string_view(
          c.lowered_chars.data() + lowered_off[slot], lowered.size());
      double parsed = 0.0;
      if (text::kernels::ParseNumeric(value, &parsed)) {
        c.numeric_ok[slot] = 1;
        c.numeric_val[slot] = parsed;
      }
    }
  });
}

void ColumnarStore::EnsureQGrams() const {
  if (qgrams_built_) return;
  RLBENCH_TRACE_SPAN("data/columnar/qgrams");
  for (const RecordFeatureCache* cache : caches_) {
    if (!cache->frozen()) cache->WarmQGrams();
  }
  BuildQGramColumns(kLeft);
  BuildQGramColumns(kRight);
  qgrams_built_ = true;
  RLBENCH_COUNTER_ADD("columnar/qgram_hashes",
                      sides_[kLeft].qgram_all.size() +
                          sides_[kRight].qgram_all.size());
}

void ColumnarStore::BuildQGramColumns(size_t side) const {
  const RecordFeatureCache& cache = *caches_[side];
  SideColumns& c = sides_[side];
  size_t n = c.records;
  size_t attrs = num_attrs_;

  c.qgram_all_off.assign(n * kNumQ + 1, 0);
  c.qgram_attr_off.assign(n * attrs * kNumQ + 1, 0);
  for (size_t r = 0; r < n; ++r) {
    for (int q = kMinQ; q <= kMaxQ; ++q) {
      size_t qi = static_cast<size_t>(q - kMinQ);
      size_t slot = r * kNumQ + qi;
      c.qgram_all_off[slot + 1] =
          c.qgram_all_off[slot] + cache.QGramSetAll(r, q).size();
      for (size_t a = 0; a < attrs; ++a) {
        size_t attr_slot = (r * attrs + a) * kNumQ + qi;
        c.qgram_attr_off[attr_slot + 1] = cache.QGramSetAttr(r, a, q).size();
      }
    }
  }
  // The attr sizing above stored per-slot sizes; prefix-sum them serially
  // (the nested loop order over (r, q, a) differs from slot order, so the
  // running sum cannot be kept inline there).
  for (size_t s = 0; s < n * attrs * kNumQ; ++s) {
    c.qgram_attr_off[s + 1] += c.qgram_attr_off[s];
  }

  c.qgram_all.resize(c.qgram_all_off[n * kNumQ]);
  c.qgram_attr.resize(c.qgram_attr_off[n * attrs * kNumQ]);

  ParallelFor(0, n, kBuildGrain, [&](size_t r) {
    for (int q = kMinQ; q <= kMaxQ; ++q) {
      size_t qi = static_cast<size_t>(q - kMinQ);
      const auto& all = cache.QGramSetAll(r, q).hashes();
      std::copy(all.begin(), all.end(),
                c.qgram_all.begin() + c.qgram_all_off[r * kNumQ + qi]);
      for (size_t a = 0; a < attrs; ++a) {
        size_t attr_slot = (r * attrs + a) * kNumQ + qi;
        const auto& hashes = cache.QGramSetAttr(r, a, q).hashes();
        std::copy(hashes.begin(), hashes.end(),
                  c.qgram_attr.begin() + c.qgram_attr_off[attr_slot]);
      }
    }
  });
}

}  // namespace rlbench::data
