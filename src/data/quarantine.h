// Quarantine bookkeeping for lenient ingestion: malformed rows are data,
// not crashes. A lenient import drops each bad row into a
// QuarantineReport — with its source file, row number, and reason — and
// keeps going, so a single torn line cannot silently gate which datasets
// get measured (the integrity failure mode the paper warns about).
#ifndef RLBENCH_SRC_DATA_QUARANTINE_H_
#define RLBENCH_SRC_DATA_QUARANTINE_H_

#include <cstddef>
#include <string>
#include <vector>

namespace rlbench::data {

/// One quarantined row.
struct QuarantineEntry {
  std::string source;  ///< file path (or logical stream name)
  size_t row = 0;      ///< 1-based row number in the source; header is row 1
  std::string reason;  ///< why the row was rejected
};

/// \brief Accumulates quarantined rows across one ingestion run.
/// Not thread-safe; ingestion is serial.
class QuarantineReport {
 public:
  void Add(std::string source, size_t row, std::string reason);

  const std::vector<QuarantineEntry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  void Clear() { entries_.clear(); }

  /// Human-readable digest: one line per entry, capped at `max_lines`
  /// entries with a "... and N more" trailer.
  std::string Summary(size_t max_lines = 10) const;

 private:
  std::vector<QuarantineEntry> entries_;
};

}  // namespace rlbench::data

#endif  // RLBENCH_SRC_DATA_QUARANTINE_H_
