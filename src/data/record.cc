#include "data/record.h"

namespace rlbench::data {

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

std::string Record::ConcatenatedValues() const {
  std::string out;
  for (const auto& value : values) {
    if (value.empty()) continue;
    if (!out.empty()) out.push_back(' ');
    out.append(value);
  }
  return out;
}

}  // namespace rlbench::data
