// Deterministic random splitting of candidate pairs into train / validation
// / test sets (Section VI step 3: "randomly split the candidate pairs...
// with a typical ratio", the benchmarks use 3:1:1).
#ifndef RLBENCH_SRC_DATA_SPLIT_H_
#define RLBENCH_SRC_DATA_SPLIT_H_

#include <cstdint>
#include <vector>

#include "data/task.h"

namespace rlbench::data {

/// Relative sizes of the three splits.
struct SplitRatio {
  double train = 3.0;
  double valid = 1.0;
  double test = 1.0;
};

struct SplitResult {
  std::vector<LabeledPair> train;
  std::vector<LabeledPair> valid;
  std::vector<LabeledPair> test;
};

/// Shuffle the pairs with the given seed and cut them into three parts
/// according to the ratio. Stratified per class so that the imbalance ratio
/// is (up to rounding) identical in all three sets, as in Table V ("the
/// imbalance ratio in the rightmost column is the same in all sets").
SplitResult SplitPairs(const std::vector<LabeledPair>& pairs,
                       const SplitRatio& ratio, uint64_t seed);

}  // namespace rlbench::data

#endif  // RLBENCH_SRC_DATA_SPLIT_H_
