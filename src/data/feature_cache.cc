#include "data/feature_cache.h"

namespace rlbench::data {

RecordFeatureCache::RecordFeatureCache(const Table* table) : table_(table) {
  entries_.resize(table_->size());
  size_t num_attrs = table_->schema().num_attributes();
  for (auto& e : entries_) {
    e.token_set_attr.resize(num_attrs);
    e.tokens_attr.resize(num_attrs);
    e.qgrams_all.resize(kNumQ);
    e.qgrams_attr.resize(num_attrs * kNumQ);
  }
}

const std::vector<std::string>& RecordFeatureCache::Tokens(
    size_t record) const {
  Entry& e = entry(record);
  if (!e.tokens) {
    e.tokens = text::TokenizeAll(table_->record(record).values);
  }
  return *e.tokens;
}

const text::TokenSet& RecordFeatureCache::TokenSetAll(size_t record) const {
  Entry& e = entry(record);
  if (!e.token_set_all) {
    e.token_set_all = text::TokenSet(Tokens(record));
  }
  return *e.token_set_all;
}

const text::TokenSet& RecordFeatureCache::TokenSetAttr(size_t record,
                                                       size_t attr) const {
  Entry& e = entry(record);
  if (!e.token_set_attr[attr]) {
    e.token_set_attr[attr] = text::TokenSet(TokensAttr(record, attr));
  }
  return *e.token_set_attr[attr];
}

const std::vector<std::string>& RecordFeatureCache::TokensAttr(
    size_t record, size_t attr) const {
  Entry& e = entry(record);
  if (!e.tokens_attr[attr]) {
    e.tokens_attr[attr] = text::Tokenize(table_->record(record).values[attr]);
  }
  return *e.tokens_attr[attr];
}

const text::TokenSet& RecordFeatureCache::QGramSetAll(size_t record,
                                                      int q) const {
  Entry& e = entry(record);
  auto& slot = e.qgrams_all[q - kMinQ];
  if (!slot) {
    std::string text = table_->record(record).ConcatenatedValues();
    if (text.size() > kQGramCharCap) text.resize(kQGramCharCap);
    slot = text::QGramSet(text, q);
  }
  return *slot;
}

const text::TokenSet& RecordFeatureCache::QGramSetAttr(size_t record,
                                                       size_t attr,
                                                       int q) const {
  Entry& e = entry(record);
  auto& slot = e.qgrams_attr[attr * kNumQ + (q - kMinQ)];
  if (!slot) {
    std::string_view text = table_->record(record).values[attr];
    slot = text::QGramSet(text.substr(0, kQGramCharCap), q);
  }
  return *slot;
}

}  // namespace rlbench::data
