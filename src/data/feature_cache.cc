#include "data/feature_cache.h"

#include "common/check.h"
#include "common/parallel.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rlbench::data {

namespace {
// Tokenising a record costs microseconds; keep chunks coarse enough that
// dispatch overhead stays negligible.
constexpr size_t kWarmGrain = 64;

// Under injected allocation pressure the warm-up degrades to a serial
// fill instead of fanning out. Results are bit-identical either way (each
// slot is owned by one record index); only the wall-clock changes.
bool WarmSeriallyUnderPressure() {
  if (auto hit = RLBENCH_FAULT_POINT("data/feature_cache/warm")) {
    (void)hit;
    RLBENCH_COUNTER_INC("feature_cache/degraded_serial_warms");
    return true;
  }
  return false;
}
}  // namespace

RecordFeatureCache::RecordFeatureCache(const Table* table) : table_(table) {
  entries_.resize(table_->size());
  size_t num_attrs = table_->schema().num_attributes();
  for (auto& e : entries_) {
    e.token_set_attr.resize(num_attrs);
    e.tokens_attr.resize(num_attrs);
    e.qgrams_all.resize(kNumQ);
    e.qgrams_attr.resize(num_attrs * kNumQ);
  }
}

const std::vector<std::string>& RecordFeatureCache::Tokens(
    size_t record) const {
  Entry& e = entry(record);
  if (!e.tokens) {
    RLBENCH_DCHECK(!frozen_);  // frozen-phase miss: warm-up was incomplete
    RLBENCH_COUNTER_INC("feature_cache/misses");
    e.tokens = text::TokenizeAll(table_->record(record).values);
  } else {
    RLBENCH_COUNTER_INC("feature_cache/hits");
  }
  return *e.tokens;
}

const text::TokenSet& RecordFeatureCache::TokenSetAll(size_t record) const {
  Entry& e = entry(record);
  if (!e.token_set_all) {
    RLBENCH_DCHECK(!frozen_);
    RLBENCH_COUNTER_INC("feature_cache/misses");
    e.token_set_all = text::TokenSet(Tokens(record));
  } else {
    RLBENCH_COUNTER_INC("feature_cache/hits");
  }
  return *e.token_set_all;
}

const text::TokenSet& RecordFeatureCache::TokenSetAttr(size_t record,
                                                       size_t attr) const {
  Entry& e = entry(record);
  if (!e.token_set_attr[attr]) {
    RLBENCH_DCHECK(!frozen_);
    RLBENCH_COUNTER_INC("feature_cache/misses");
    e.token_set_attr[attr] = text::TokenSet(TokensAttr(record, attr));
  } else {
    RLBENCH_COUNTER_INC("feature_cache/hits");
  }
  return *e.token_set_attr[attr];
}

const std::vector<std::string>& RecordFeatureCache::TokensAttr(
    size_t record, size_t attr) const {
  Entry& e = entry(record);
  if (!e.tokens_attr[attr]) {
    RLBENCH_DCHECK(!frozen_);
    RLBENCH_COUNTER_INC("feature_cache/misses");
    e.tokens_attr[attr] = text::Tokenize(table_->record(record).values[attr]);
  } else {
    RLBENCH_COUNTER_INC("feature_cache/hits");
  }
  return *e.tokens_attr[attr];
}

const text::TokenSet& RecordFeatureCache::QGramSetAll(size_t record,
                                                      int q) const {
  Entry& e = entry(record);
  auto& slot = e.qgrams_all[q - kMinQ];
  if (!slot) {
    RLBENCH_DCHECK(!frozen_);
    RLBENCH_COUNTER_INC("feature_cache/misses");
    std::string text = table_->record(record).ConcatenatedValues();
    if (text.size() > kQGramCharCap) text.resize(kQGramCharCap);
    slot = text::QGramSet(text, q);
  } else {
    RLBENCH_COUNTER_INC("feature_cache/hits");
  }
  return *slot;
}

const text::TokenSet& RecordFeatureCache::QGramSetAttr(size_t record,
                                                       size_t attr,
                                                       int q) const {
  Entry& e = entry(record);
  auto& slot = e.qgrams_attr[attr * kNumQ + (q - kMinQ)];
  if (!slot) {
    RLBENCH_DCHECK(!frozen_);
    RLBENCH_COUNTER_INC("feature_cache/misses");
    std::string_view text = table_->record(record).values[attr];
    slot = text::QGramSet(text.substr(0, kQGramCharCap), q);
  } else {
    RLBENCH_COUNTER_INC("feature_cache/hits");
  }
  return *slot;
}

void RecordFeatureCache::FillTokenSlots(Entry& e, size_t record) const {
  const Record& row = table_->record(record);
  size_t num_attrs = table_->schema().num_attributes();
  for (size_t a = 0; a < num_attrs; ++a) {
    if (!e.tokens_attr[a]) e.tokens_attr[a] = text::Tokenize(row.values[a]);
    if (!e.token_set_attr[a]) {
      e.token_set_attr[a] = text::TokenSet(*e.tokens_attr[a]);
    }
  }
  if (!e.tokens) e.tokens = text::TokenizeAll(row.values);
  if (!e.token_set_all) e.token_set_all = text::TokenSet(*e.tokens);
}

void RecordFeatureCache::FillQGramSlots(Entry& e, size_t record) const {
  const Record& row = table_->record(record);
  size_t num_attrs = table_->schema().num_attributes();
  std::string all_text = row.ConcatenatedValues();
  if (all_text.size() > kQGramCharCap) all_text.resize(kQGramCharCap);
  for (int q = kMinQ; q <= kMaxQ; ++q) {
    auto& all_slot = e.qgrams_all[q - kMinQ];
    if (!all_slot) all_slot = text::QGramSet(all_text, q);
    for (size_t a = 0; a < num_attrs; ++a) {
      auto& slot = e.qgrams_attr[a * kNumQ + (q - kMinQ)];
      if (!slot) {
        std::string_view text = row.values[a];
        slot = text::QGramSet(text.substr(0, kQGramCharCap), q);
      }
    }
  }
}

void RecordFeatureCache::WarmTokens() const {
  RLBENCH_CHECK_MSG(!frozen_, "WarmTokens on a frozen RecordFeatureCache");
  if (tokens_warmed_) return;
  tokens_warmed_ = true;
  RLBENCH_TRACE_SPAN("feature_cache/warm_tokens");
  RLBENCH_COUNTER_ADD("feature_cache/warmed_token_records", entries_.size());
  RLBENCH_GAUGE_OBSERVE("feature_cache/entries", entries_.size());
  if (WarmSeriallyUnderPressure()) {
    for (size_t record = 0; record < entries_.size(); ++record) {
      FillTokenSlots(entry(record), record);
    }
    return;
  }
  ParallelFor(0, entries_.size(), kWarmGrain,
              [this](size_t record) { FillTokenSlots(entry(record), record); });
}

void RecordFeatureCache::WarmQGrams() const {
  RLBENCH_CHECK_MSG(!frozen_, "WarmQGrams on a frozen RecordFeatureCache");
  if (qgrams_warmed_) return;
  qgrams_warmed_ = true;
  RLBENCH_TRACE_SPAN("feature_cache/warm_qgrams");
  RLBENCH_COUNTER_ADD("feature_cache/warmed_qgram_records", entries_.size());
  RLBENCH_GAUGE_OBSERVE("feature_cache/entries", entries_.size());
  if (WarmSeriallyUnderPressure()) {
    for (size_t record = 0; record < entries_.size(); ++record) {
      FillQGramSlots(entry(record), record);
    }
    return;
  }
  ParallelFor(0, entries_.size(), kWarmGrain,
              [this](size_t record) { FillQGramSlots(entry(record), record); });
}

}  // namespace rlbench::data
