#include "data/quarantine.h"

#include "obs/metrics.h"

namespace rlbench::data {

void QuarantineReport::Add(std::string source, size_t row,
                           std::string reason) {
  RLBENCH_COUNTER_INC("data/quarantined_rows");
  entries_.push_back(
      QuarantineEntry{std::move(source), row, std::move(reason)});
}

std::string QuarantineReport::Summary(size_t max_lines) const {
  std::string out;
  size_t shown = entries_.size() < max_lines ? entries_.size() : max_lines;
  for (size_t i = 0; i < shown; ++i) {
    const QuarantineEntry& entry = entries_[i];
    out += entry.source + ":" + std::to_string(entry.row) + ": " +
           entry.reason + "\n";
  }
  if (entries_.size() > shown) {
    out += "... and " + std::to_string(entries_.size() - shown) +
           " more quarantined row(s)\n";
  }
  return out;
}

}  // namespace rlbench::data
