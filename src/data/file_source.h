// The single choke point for file IO in rlbench. Every read and write of
// benchmark data, score caches, and run manifests flows through
// FileSource so that (a) failure semantics are uniform Status values,
// (b) writes that must never be observed half-done go through an atomic
// write-temp-then-rename with bounded retry, and (c) the fault-injection
// layer (src/fault/) can strike every IO path from one place.
//
// Failpoints wired here:
//   data/file/read       io | truncate | corrupt | alloc  (whole-file reads)
//   data/file/write      io | truncate                    (plain writes; a
//                        truncate hit models a torn write: prefix lands,
//                        Status reports the failure)
//   data/file/tmp_write  io | truncate   (atomic write, temp-file stage)
//   data/file/rename     io              (atomic write, publish stage)
//
// The repo lint bans raw std::ifstream/std::ofstream everywhere else; see
// docs/robustness.md.
#ifndef RLBENCH_SRC_DATA_FILE_SOURCE_H_
#define RLBENCH_SRC_DATA_FILE_SOURCE_H_

#include <string>

#include "common/status.h"

namespace rlbench::data {

/// Knobs for FileSource::WriteAtomic.
struct AtomicWriteOptions {
  int max_attempts = 3;  ///< total tries of the write+rename sequence
  int backoff_ms = 1;    ///< base backoff between tries, doubled each retry
};

class FileSource {
 public:
  /// Read the whole file. NotFound when the path does not name a regular
  /// file, IOError when it cannot be opened or read, ResourceExhausted
  /// under injected allocation pressure.
  [[nodiscard]] static Result<std::string> ReadAll(const std::string& path);

  /// Overwrite `path` in place. Not atomic: a crash (or injected truncate
  /// fault) can leave a prefix. Use for scratch data only; anything a later
  /// run re-reads belongs in WriteAtomic.
  [[nodiscard]] static Status WriteAll(const std::string& path, const std::string& content);

  /// Write `path` atomically: the content lands in `path + ".tmp"` first
  /// and is renamed over the target, so readers observe either the old
  /// file or the complete new one, never a torn write. The whole sequence
  /// retries up to `options.max_attempts` times with doubling backoff;
  /// the temp file is removed on every failure path.
  [[nodiscard]] static Status WriteAtomic(const std::string& path,
                            const std::string& content,
                            const AtomicWriteOptions& options = {});
};

}  // namespace rlbench::data

#endif  // RLBENCH_SRC_DATA_FILE_SOURCE_H_
