// The single choke point for file IO in rlbench. Every read and write of
// benchmark data, score caches, and run manifests flows through
// FileSource so that (a) failure semantics are uniform Status values,
// (b) writes that must never be observed half-done go through an atomic
// write-temp-then-rename with bounded retry, and (c) the fault-injection
// layer (src/fault/) can strike every IO path from one place.
//
// Failpoints wired here:
//   data/file/read        io | truncate | corrupt | alloc (whole-file reads)
//   data/file/read_stream io | truncate | corrupt | alloc (LineReader
//                         refills; truncate/corrupt mutate the in-flight
//                         chunk, the caller's parser must cope)
//   data/file/write       io | truncate                   (plain writes; a
//                         truncate hit models a torn write: prefix lands,
//                         Status reports the failure)
//   data/file/tmp_write   io | truncate  (atomic write, temp-file stage)
//   data/file/rename      io             (atomic write, publish stage)
//
// The repo lint bans raw std::ifstream/std::ofstream everywhere else; see
// docs/robustness.md.
#ifndef RLBENCH_SRC_DATA_FILE_SOURCE_H_
#define RLBENCH_SRC_DATA_FILE_SOURCE_H_

#include <memory>
#include <string>

#include "common/status.h"

namespace rlbench::data {

/// Knobs for FileSource::WriteAtomic.
struct AtomicWriteOptions {
  int max_attempts = 3;  ///< total tries of the write+rename sequence
  int backoff_ms = 1;    ///< base backoff between tries, doubled each retry
};

class FileSource {
 public:
  /// Read the whole file. NotFound when the path does not name a regular
  /// file, IOError when it cannot be opened or read, ResourceExhausted
  /// under injected allocation pressure.
  [[nodiscard]] static Result<std::string> ReadAll(const std::string& path);

  /// Overwrite `path` in place. Not atomic: a crash (or injected truncate
  /// fault) can leave a prefix. Use for scratch data only; anything a later
  /// run re-reads belongs in WriteAtomic.
  [[nodiscard]] static Status WriteAll(const std::string& path, const std::string& content);

  /// Write `path` atomically: the content lands in `path + ".tmp"` first
  /// and is renamed over the target, so readers observe either the old
  /// file or the complete new one, never a torn write. The whole sequence
  /// retries up to `options.max_attempts` times with doubling backoff;
  /// the temp file is removed on every failure path.
  [[nodiscard]] static Status WriteAtomic(const std::string& path,
                            const std::string& content,
                            const AtomicWriteOptions& options = {});
};

/// \brief Streaming line reader over one file with a bounded refill buffer.
///
/// The out-of-core companion to FileSource::ReadAll: memory use is capped
/// at `buffer_bytes` regardless of file size, so spill-shard consumers can
/// walk multi-gigabyte partitions without materializing them. Line
/// terminator handling matches the CSV parser's row terminators: LF, CRLF
/// and lone CR all end a line (terminators are stripped), a CRLF split
/// across two refills is still one terminator, and an unterminated final
/// line is returned before end-of-stream is reported.
///
/// Not thread-safe; one reader per consumer. Reads flow through the
/// `data/file/read_stream` failpoint chunk by chunk.
class LineReader {
 public:
  static constexpr size_t kDefaultBufferBytes = 64 * 1024;

  /// Open `path` for streaming. NotFound when the path does not name a
  /// regular file, IOError when it cannot be opened. `buffer_bytes` caps
  /// the refill chunk (floored at 1).
  [[nodiscard]] static Result<LineReader> Open(
      const std::string& path, size_t buffer_bytes = kDefaultBufferBytes);

  ~LineReader();
  LineReader(LineReader&& other) noexcept;
  LineReader& operator=(LineReader&& other) noexcept;
  LineReader(const LineReader&) = delete;
  LineReader& operator=(const LineReader&) = delete;

  /// Read the next line into *line (terminator stripped). Sets *done to
  /// true — leaving *line empty — once the stream is exhausted; every
  /// earlier call yields a line (possibly empty) with *done false. IO and
  /// injected failures surface as Status errors; the reader is dead after
  /// the first error.
  [[nodiscard]] Status Next(std::string* line, bool* done);

 private:
  struct Impl;
  explicit LineReader(std::unique_ptr<Impl> impl);

  std::unique_ptr<Impl> impl_;
};

}  // namespace rlbench::data

#endif  // RLBENCH_SRC_DATA_FILE_SOURCE_H_
