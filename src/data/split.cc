#include "data/split.h"

#include <algorithm>

#include "common/rng.h"

namespace rlbench::data {

SplitResult SplitPairs(const std::vector<LabeledPair>& pairs,
                       const SplitRatio& ratio, uint64_t seed) {
  Rng rng(seed);
  std::vector<LabeledPair> positives;
  std::vector<LabeledPair> negatives;
  for (const auto& pair : pairs) {
    (pair.is_match ? positives : negatives).push_back(pair);
  }
  rng.Shuffle(&positives);
  rng.Shuffle(&negatives);

  double total_ratio = ratio.train + ratio.valid + ratio.test;
  SplitResult result;
  auto distribute = [&](const std::vector<LabeledPair>& from) {
    size_t n = from.size();
    size_t n_train = static_cast<size_t>(n * ratio.train / total_ratio);
    size_t n_valid = static_cast<size_t>(n * ratio.valid / total_ratio);
    for (size_t i = 0; i < n; ++i) {
      if (i < n_train) {
        result.train.push_back(from[i]);
      } else if (i < n_train + n_valid) {
        result.valid.push_back(from[i]);
      } else {
        result.test.push_back(from[i]);
      }
    }
  };
  distribute(positives);
  distribute(negatives);

  // Interleave classes inside each split so that mini-batch learners do not
  // see long single-class runs.
  Rng mix(SplitMix64(seed ^ 0xA5A5A5A5ULL));
  mix.Shuffle(&result.train);
  mix.Shuffle(&result.valid);
  mix.Shuffle(&result.test);
  return result;
}

}  // namespace rlbench::data
