// Structure-of-arrays columnar view over one matching task's two tables
// (ISSUE 7 tentpole). The row-oriented model (Table of Records holding
// std::string values, RecordFeatureCache holding per-record TokenSets)
// stays the source of truth and the cold-path API; this store lays the same
// derived features out contiguously so the batch extraction loops run the
// vectorized kernels in text/kernels.h without per-pair allocation or
// pointer chasing:
//
//   * Token ids — every distinct token hash across BOTH tables is interned
//     as its rank in the globally sorted unique hash vocabulary. The
//     mapping hash -> id is therefore a monotone bijection: a record's
//     sorted unique hash set maps to a sorted unique uint32 id array with
//     identical pairwise intersection counts, so set similarities over id
//     spans are bit-identical to the TokenSet scalar path at half the
//     memory bandwidth. Rank interning also makes ids independent of
//     record insertion order by construction.
//   * Per-record id arrays (schema-agnostic and per-attribute) live in two
//     contiguous pools addressed by offset indexes.
//   * Ordered token sequences (for Monge-Elkan) are string_views into one
//     packed character arena per side.
//   * Per-value derivations that the row path recomputes per PAIR are
//     hoisted to once per RECORD: lower-cased values (exact match),
//     strtod parses (numeric similarity).
//   * Q-gram sets (lazy, EnsureQGrams) keep their raw salted uint64 hashes
//     in contiguous sorted pools — q-grams have no shared vocabulary worth
//     building.
//
// Build is deterministic at any thread count: a serial sizing pass pins
// every offset, then a ParallelFor fills disjoint slices (the
// common/parallel.h contract). Differential coverage lives in
// tests/data/columnar_test.cc and tests/text/kernels_differential_test.cc.
#ifndef RLBENCH_SRC_DATA_COLUMNAR_H_
#define RLBENCH_SRC_DATA_COLUMNAR_H_

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "data/feature_cache.h"

namespace rlbench::data {

/// \brief Dense row-major float matrix with an optional per-row sorted
/// copy (the Wasserstein kernel consumes coordinate-sorted rows, so the
/// per-pair sort is paid once per record here).
class PackedMatrix {
 public:
  PackedMatrix() = default;

  /// Allocate rows x cols zeros; drops any previous contents.
  void Reset(size_t rows, size_t cols);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }

  std::span<const float> row(size_t r) const;
  std::span<float> mutable_row(size_t r);

  /// Fill the sorted-row shadow (each row's coordinates ascending).
  /// Call after the rows are final; parallel over rows, deterministic.
  void BuildSortedRows();
  bool sorted_built() const { return sorted_built_; }
  std::span<const float> sorted_row(size_t r) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
  std::vector<float> sorted_;
  bool sorted_built_ = false;
};

/// \brief Columnar token / q-gram / value columns over (left, right).
///
/// Threading contract mirrors RecordFeatureCache: construction and
/// EnsureQGrams() are warm-phase operations (single caller, internally
/// parallel); afterwards any number of threads may call the accessors
/// concurrently — all reads, no mutation.
class ColumnarStore {
 public:
  static constexpr size_t kLeft = 0;
  static constexpr size_t kRight = 1;
  static constexpr int kMinQ = RecordFeatureCache::kMinQ;
  static constexpr int kMaxQ = RecordFeatureCache::kMaxQ;

  /// Builds the token columns (warms the caches' token slots first if the
  /// caller has not). Both caches must outlive the store (EnsureQGrams
  /// reads them again).
  ColumnarStore(const RecordFeatureCache& left,
                const RecordFeatureCache& right);

  size_t num_attrs() const { return num_attrs_; }
  size_t num_records(size_t side) const;
  size_t vocab_size() const { return vocab_.size(); }

  /// Sorted unique token ids over all attribute values (schema-agnostic).
  std::span<const uint32_t> TokenIdsAll(size_t side, size_t record) const;

  /// Sorted unique token ids of one attribute value.
  std::span<const uint32_t> TokenIdsAttr(size_t side, size_t record,
                                         size_t attr) const;

  /// Ordered token sequence of one attribute (views into the token arena).
  std::span<const std::string_view> TokenSeqAttr(size_t side, size_t record,
                                                 size_t attr) const;

  /// Raw attribute value (view into the backing Table).
  std::string_view Value(size_t side, size_t record, size_t attr) const;

  /// Lower-cased attribute value (view into the lowered arena).
  std::string_view LoweredValue(size_t side, size_t record,
                                size_t attr) const;

  /// Result of the hoisted numeric parse of one attribute value.
  bool NumericOk(size_t side, size_t record, size_t attr) const;
  double NumericValue(size_t side, size_t record, size_t attr) const;

  /// Build the q-gram pools (warms the caches' q-gram slots first if
  /// needed). Idempotent; warm-phase only.
  void EnsureQGrams() const;
  bool qgrams_built() const { return qgrams_built_; }

  /// Sorted unique q-gram hashes over the concatenated record text,
  /// q in [kMinQ, kMaxQ]. EnsureQGrams() must have run.
  std::span<const uint64_t> QGramAll(size_t side, size_t record, int q) const;

  /// Sorted unique q-gram hashes of one attribute value.
  std::span<const uint64_t> QGramAttr(size_t side, size_t record, size_t attr,
                                      int q) const;

  /// Rank of a token hash in the vocabulary, or vocab_size() when absent
  /// (test hook for the interning-stability property).
  uint32_t IdOfHash(uint64_t hash) const;

 private:
  static constexpr int kNumQ = kMaxQ - kMinQ + 1;

  struct SideColumns {
    size_t records = 0;
    // Schema-agnostic token ids: [ids_all_off[r], ids_all_off[r+1]).
    std::vector<uint32_t> ids_all;
    std::vector<size_t> ids_all_off;
    // Per-attribute token ids, slot r * num_attrs + a.
    std::vector<uint32_t> ids_attr;
    std::vector<size_t> ids_attr_off;
    // Ordered per-attribute token views into `token_chars`.
    std::vector<char> token_chars;
    std::vector<std::string_view> token_views;
    std::vector<size_t> token_seq_off;
    // Per-value columns, slot r * num_attrs + a.
    std::vector<std::string_view> values;
    std::vector<char> lowered_chars;
    std::vector<std::string_view> lowered_views;
    std::vector<uint8_t> numeric_ok;
    std::vector<double> numeric_val;
    // Q-gram pools (filled by EnsureQGrams). Schema-agnostic slot is
    // r * kNumQ + (q - kMinQ); per-attribute slot is
    // (r * num_attrs + a) * kNumQ + (q - kMinQ).
    std::vector<uint64_t> qgram_all;
    std::vector<size_t> qgram_all_off;
    std::vector<uint64_t> qgram_attr;
    std::vector<size_t> qgram_attr_off;
  };

  void BuildVocab();
  void BuildTokenColumns(size_t side);
  void BuildQGramColumns(size_t side) const;

  const SideColumns& columns(size_t side) const;

  std::array<const RecordFeatureCache*, 2> caches_;
  size_t num_attrs_ = 0;
  std::vector<uint64_t> vocab_;
  mutable std::array<SideColumns, 2> sides_;
  mutable bool qgrams_built_ = false;
};

// The accessors below are defined inline: the batch extraction loops call
// them once or more per (pair, attribute), so a cross-TU call per lookup
// would dominate the vectorized kernels they feed.

inline const ColumnarStore::SideColumns& ColumnarStore::columns(
    size_t side) const {
  RLBENCH_DCHECK_INDEX(side, sides_.size());
  return sides_[side];
}

inline size_t ColumnarStore::num_records(size_t side) const {
  return columns(side).records;
}

inline std::span<const uint32_t> ColumnarStore::TokenIdsAll(
    size_t side, size_t record) const {
  const SideColumns& c = columns(side);
  RLBENCH_DCHECK_INDEX(record, c.records);
  return {c.ids_all.data() + c.ids_all_off[record],
          c.ids_all_off[record + 1] - c.ids_all_off[record]};
}

inline std::span<const uint32_t> ColumnarStore::TokenIdsAttr(
    size_t side, size_t record, size_t attr) const {
  const SideColumns& c = columns(side);
  RLBENCH_DCHECK_INDEX(record, c.records);
  RLBENCH_DCHECK_INDEX(attr, num_attrs_);
  size_t slot = record * num_attrs_ + attr;
  return {c.ids_attr.data() + c.ids_attr_off[slot],
          c.ids_attr_off[slot + 1] - c.ids_attr_off[slot]};
}

inline std::span<const std::string_view> ColumnarStore::TokenSeqAttr(
    size_t side, size_t record, size_t attr) const {
  const SideColumns& c = columns(side);
  RLBENCH_DCHECK_INDEX(record, c.records);
  RLBENCH_DCHECK_INDEX(attr, num_attrs_);
  size_t slot = record * num_attrs_ + attr;
  return {c.token_views.data() + c.token_seq_off[slot],
          c.token_seq_off[slot + 1] - c.token_seq_off[slot]};
}

inline std::string_view ColumnarStore::Value(size_t side, size_t record,
                                             size_t attr) const {
  const SideColumns& c = columns(side);
  return c.values[DcheckedIndex(record * num_attrs_ + attr,
                                c.values.size())];
}

inline std::string_view ColumnarStore::LoweredValue(size_t side, size_t record,
                                                    size_t attr) const {
  const SideColumns& c = columns(side);
  return c.lowered_views[DcheckedIndex(record * num_attrs_ + attr,
                                       c.lowered_views.size())];
}

inline bool ColumnarStore::NumericOk(size_t side, size_t record,
                                     size_t attr) const {
  const SideColumns& c = columns(side);
  return c.numeric_ok[DcheckedIndex(record * num_attrs_ + attr,
                                    c.numeric_ok.size())] != 0;
}

inline double ColumnarStore::NumericValue(size_t side, size_t record,
                                          size_t attr) const {
  const SideColumns& c = columns(side);
  return c.numeric_val[DcheckedIndex(record * num_attrs_ + attr,
                                     c.numeric_val.size())];
}

inline std::span<const uint64_t> ColumnarStore::QGramAll(size_t side,
                                                         size_t record,
                                                         int q) const {
  RLBENCH_DCHECK(qgrams_built_);
  const SideColumns& c = columns(side);
  RLBENCH_DCHECK_INDEX(record, c.records);
  RLBENCH_DCHECK(q >= kMinQ && q <= kMaxQ);
  size_t slot = record * kNumQ + static_cast<size_t>(q - kMinQ);
  return {c.qgram_all.data() + c.qgram_all_off[slot],
          c.qgram_all_off[slot + 1] - c.qgram_all_off[slot]};
}

inline std::span<const uint64_t> ColumnarStore::QGramAttr(size_t side,
                                                          size_t record,
                                                          size_t attr,
                                                          int q) const {
  RLBENCH_DCHECK(qgrams_built_);
  const SideColumns& c = columns(side);
  RLBENCH_DCHECK_INDEX(record, c.records);
  RLBENCH_DCHECK_INDEX(attr, num_attrs_);
  RLBENCH_DCHECK(q >= kMinQ && q <= kMaxQ);
  size_t slot = (record * num_attrs_ + attr) * kNumQ +
                static_cast<size_t>(q - kMinQ);
  return {c.qgram_attr.data() + c.qgram_attr_off[slot],
          c.qgram_attr_off[slot + 1] - c.qgram_attr_off[slot]};
}

}  // namespace rlbench::data

#endif  // RLBENCH_SRC_DATA_COLUMNAR_H_
