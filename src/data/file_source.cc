#include "data/file_source.h"

#include <chrono>  // backoff sleeps; FileSource is on the lint allowlist
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/rng.h"
#include "fault/failpoint.h"
#include "obs/metrics.h"

namespace rlbench::data {

namespace {

// Apply a read-side fault to the freshly read buffer. Truncation and
// corruption mutate the data (the caller's parser must cope — that is the
// point); io/alloc turn into the matching Status.
Status ApplyReadFault(const fault::FaultHit& hit, const std::string& path,
                      std::string* content) {
  switch (hit.kind) {
    case fault::FaultKind::kIOError:
      return Status::IOError("injected: read of " + path);
    case fault::FaultKind::kAlloc:
      return Status::ResourceExhausted("injected: allocation reading " + path);
    case fault::FaultKind::kTruncate:
      content->resize(hit.payload % (content->size() + 1));
      return Status::OK();
    case fault::FaultKind::kCorrupt: {
      if (content->empty()) return Status::OK();
      // Mangle 1-8 seeded positions; SplitMix64 of the payload stream keeps
      // the positions deterministic per hit.
      uint64_t state = hit.payload;
      size_t flips = 1 + static_cast<size_t>(hit.payload % 8);
      for (size_t i = 0; i < flips; ++i) {
        state = SplitMix64(state);
        size_t pos = static_cast<size_t>(state % content->size());
        (*content)[pos] = static_cast<char>(state >> 32);
      }
      return Status::OK();
    }
    case fault::FaultKind::kNone:
      return Status::OK();
  }
  return Status::OK();
}

Status WriteStream(const std::string& path, const std::string& content,
                   const char* failpoint) {
  if (auto hit = RLBENCH_FAULT_POINT(failpoint)) {
    if (hit.kind == fault::FaultKind::kTruncate) {
      // Torn write: a prefix reaches the disk, the Status reports failure.
      std::ofstream torn(path, std::ios::binary);
      if (torn) {
        torn.write(content.data(),
                   static_cast<std::streamsize>(
                       hit.payload % (content.size() + 1)));
      }
    }
    return Status::IOError("injected: write of " + path);
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace

Result<std::string> FileSource::ReadAll(const std::string& path) {
  RLBENCH_COUNTER_INC("file_source/reads");
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) {
    return Status::NotFound("no such file: " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed: " + path);
  std::string content = buffer.str();
  if (auto hit = RLBENCH_FAULT_POINT("data/file/read")) {
    RLBENCH_COUNTER_INC("file_source/read_faults");
    RLBENCH_RETURN_NOT_OK(ApplyReadFault(hit, path, &content));
  }
  return content;
}

Status FileSource::WriteAll(const std::string& path,
                            const std::string& content) {
  RLBENCH_COUNTER_INC("file_source/writes");
  return WriteStream(path, content, "data/file/write");
}

Status FileSource::WriteAtomic(const std::string& path,
                               const std::string& content,
                               const AtomicWriteOptions& options) {
  RLBENCH_COUNTER_INC("file_source/atomic_writes");
  const std::string tmp_path = path + ".tmp";
  Status last = Status::Internal("atomic write never attempted: " + path);
  int attempts = options.max_attempts < 1 ? 1 : options.max_attempts;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      RLBENCH_COUNTER_INC("file_source/atomic_write_retries");
      if (options.backoff_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options.backoff_ms << (attempt - 1)));
      }
    }
    last = WriteStream(tmp_path, content, "data/file/tmp_write");
    if (!last.ok()) {
      std::error_code ec;
      std::filesystem::remove(tmp_path, ec);
      continue;
    }
    if (auto hit = RLBENCH_FAULT_POINT("data/file/rename")) {
      (void)hit;
      last = Status::IOError("injected: rename to " + path);
      std::error_code ec;
      std::filesystem::remove(tmp_path, ec);
      continue;
    }
    std::error_code ec;
    std::filesystem::rename(tmp_path, path, ec);
    if (ec) {
      last = Status::IOError("rename " + tmp_path + " -> " + path + ": " +
                             ec.message());
      std::error_code remove_ec;
      std::filesystem::remove(tmp_path, remove_ec);
      continue;
    }
    return Status::OK();
  }
  RLBENCH_COUNTER_INC("file_source/atomic_write_failures");
  return last;
}

struct LineReader::Impl {
  std::string path;
  std::ifstream in;
  size_t cap = LineReader::kDefaultBufferBytes;
  std::string buffer;
  size_t pos = 0;
  bool exhausted = false;     // underlying stream has no more bytes
  bool pending_skip_lf = false;  // last chunk ended mid-CRLF

  // Pull the next chunk through the read_stream failpoint. An empty chunk
  // (or an injected truncation to zero) flips `exhausted`.
  Status Refill() {
    buffer.resize(cap);
    in.read(buffer.data(), static_cast<std::streamsize>(cap));
    if (in.bad()) return Status::IOError("read failed: " + path);
    buffer.resize(static_cast<size_t>(in.gcount()));
    pos = 0;
    if (auto hit = RLBENCH_FAULT_POINT("data/file/read_stream")) {
      RLBENCH_COUNTER_INC("file_source/stream_faults");
      RLBENCH_RETURN_NOT_OK(ApplyReadFault(hit, path, &buffer));
    }
    if (buffer.empty()) exhausted = true;
    return Status::OK();
  }
};

LineReader::LineReader(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
LineReader::~LineReader() = default;
LineReader::LineReader(LineReader&& other) noexcept = default;
LineReader& LineReader::operator=(LineReader&& other) noexcept = default;

Result<LineReader> LineReader::Open(const std::string& path,
                                    size_t buffer_bytes) {
  RLBENCH_COUNTER_INC("file_source/stream_opens");
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec) || ec) {
    return Status::NotFound("no such file: " + path);
  }
  auto impl = std::make_unique<Impl>();
  impl->path = path;
  impl->cap = buffer_bytes < 1 ? 1 : buffer_bytes;
  impl->in.open(path, std::ios::binary);
  if (!impl->in) return Status::IOError("cannot open " + path);
  return LineReader(std::move(impl));
}

Status LineReader::Next(std::string* line, bool* done) {
  Impl& s = *impl_;
  line->clear();
  *done = false;
  if (s.pending_skip_lf) {
    // The previous line ended with '\r' as the final byte of a chunk; a
    // leading '\n' in the next chunk belongs to that terminator.
    s.pending_skip_lf = false;
    if (s.pos >= s.buffer.size() && !s.exhausted) {
      RLBENCH_RETURN_NOT_OK(s.Refill());
    }
    if (s.pos < s.buffer.size() && s.buffer[s.pos] == '\n') ++s.pos;
  }
  while (true) {
    if (s.pos >= s.buffer.size()) {
      if (s.exhausted) break;
      RLBENCH_RETURN_NOT_OK(s.Refill());
      continue;
    }
    size_t terminator = s.buffer.find_first_of("\r\n", s.pos);
    if (terminator == std::string::npos) {
      line->append(s.buffer, s.pos, std::string::npos);
      s.pos = s.buffer.size();
      continue;
    }
    line->append(s.buffer, s.pos, terminator - s.pos);
    char kind = s.buffer[terminator];
    s.pos = terminator + 1;
    if (kind == '\r') {
      if (s.pos < s.buffer.size()) {
        if (s.buffer[s.pos] == '\n') ++s.pos;
      } else if (!s.exhausted) {
        s.pending_skip_lf = true;
      }
    }
    return Status::OK();
  }
  if (line->empty()) {
    *done = true;
    return Status::OK();
  }
  // Unterminated final line: hand it out now; the next call reports done.
  return Status::OK();
}

}  // namespace rlbench::data
