#include "data/csv.h"

#include <cstdint>

#include "data/file_source.h"
#include "fault/failpoint.h"

namespace rlbench::data {

Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&]() {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&]() {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field_started && field.empty()) {
          in_quotes = true;
          field_started = true;
        } else {
          field.push_back(c);
        }
        break;
      case ',':
        end_field();
        break;
      case '\r':
        // CRLF counts as one terminator; a lone CR (classic Mac, or a torn
        // CRLF) still ends the row rather than leaking into the next field.
        if (i + 1 < text.size() && text[i + 1] == '\n') ++i;
        end_row();
        break;
      case '\n':
        end_row();
        break;
      default:
        field.push_back(c);
        field_started = true;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  if (field_started || !field.empty() || !row.empty()) end_row();
  return rows;
}

namespace {

std::string QuoteField(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

// No-throw uint32 parser for pair indices. Rejects empty, non-digit, and
// overflowing input; std::stoul would throw (or accept "12abc").
bool ParseUint32Field(const std::string& text, uint32_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
    if (value > 0xFFFFFFFFULL) return false;
  }
  *out = static_cast<uint32_t>(value);
  return true;
}

bool ParseLabelField(const std::string& text, bool* out) {
  if (text == "1" || text == "true") {
    *out = true;
    return true;
  }
  if (text == "0" || text == "false") {
    *out = false;
    return true;
  }
  return false;
}

bool AsciiEqualsIgnoreCase(const std::string& a, const char* b) {
  size_t i = 0;
  for (; i < a.size() && b[i] != '\0'; ++i) {
    char ca = a[i];
    if (ca >= 'A' && ca <= 'Z') ca = static_cast<char>(ca - 'A' + 'a');
    if (ca != b[i]) return false;
  }
  return i == a.size() && b[i] == '\0';
}

// Per-row fault handling shared by the two readers. A hit either aborts the
// read (strict, or io/alloc kinds), quarantines the row (lenient), or
// mutates the row in place (truncate/corrupt in strict mode fall through to
// normal validation on the mangled row).
enum class RowFaultAction { kNone, kSkipRow };

Result<RowFaultAction> ApplyRowFault(const fault::FaultHit& hit,
                                     const std::string& path, size_t row_num,
                                     const CsvReadOptions& options,
                                     std::vector<std::string>* row) {
  if (!hit) return RowFaultAction::kNone;
  if (options.lenient) {
    if (options.quarantine != nullptr) {
      options.quarantine->Add(path, row_num,
                              std::string("injected ") +
                                  fault::FaultKindName(hit.kind));
    }
    return RowFaultAction::kSkipRow;
  }
  switch (hit.kind) {
    case fault::FaultKind::kIOError:
      return Status::IOError("injected: row " + std::to_string(row_num) +
                             " of " + path);
    case fault::FaultKind::kAlloc:
      return Status::ResourceExhausted("injected: row " +
                                       std::to_string(row_num) + " of " +
                                       path);
    case fault::FaultKind::kTruncate:
      if (!row->empty()) row->resize(hit.payload % row->size() + 1);
      return RowFaultAction::kNone;
    case fault::FaultKind::kCorrupt:
      if (!row->empty()) {
        (*row)[hit.payload % row->size()] = "\xff<injected-corrupt>";
      }
      return RowFaultAction::kNone;
    case fault::FaultKind::kNone:
      return RowFaultAction::kNone;
  }
  return RowFaultAction::kNone;
}

// Strict mode fails the read; lenient mode quarantines the row and tells
// the caller to skip it.
Result<RowFaultAction> RejectRow(const std::string& path, size_t row_num,
                                 const std::string& reason,
                                 const CsvReadOptions& options) {
  if (!options.lenient) {
    return Status::InvalidArgument(path + ": row " + std::to_string(row_num) +
                                   ": " + reason);
  }
  if (options.quarantine != nullptr) {
    options.quarantine->Add(path, row_num, reason);
  }
  return RowFaultAction::kSkipRow;
}

}  // namespace

std::string WriteCsv(const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      out.append(QuoteField(row[i]));
    }
    out.push_back('\n');
  }
  return out;
}

Result<Table> ReadTableCsv(const std::string& path, const std::string& name,
                           const CsvReadOptions& options) {
  RLBENCH_ASSIGN_OR_RETURN(std::string text, FileSource::ReadAll(path));
  RLBENCH_ASSIGN_OR_RETURN(auto rows, ParseCsv(text));
  if (rows.empty()) return Status::InvalidArgument("empty CSV: " + path);

  const auto& header = rows[0];
  if (header.size() < 2) {
    return Status::InvalidArgument("table CSV needs id + 1 attribute: " + path);
  }
  Schema schema(std::vector<std::string>(header.begin() + 1, header.end()));
  Table table(name, schema);
  table.Reserve(rows.size() - 1);
  for (size_t r = 1; r < rows.size(); ++r) {
    auto& row = rows[r];
    size_t row_num = r + 1;  // 1-based; header is row 1
    {
      auto action = ApplyRowFault(RLBENCH_FAULT_POINT("data/csv/table_row"),
                                  path, row_num, options, &row);
      if (!action.ok()) return action.status();
      if (*action == RowFaultAction::kSkipRow) continue;
    }
    if (row.size() != 1 + schema.num_attributes()) {
      auto action = RejectRow(
          path, row_num,
          "expected " + std::to_string(1 + schema.num_attributes()) +
              " fields, got " + std::to_string(row.size()),
          options);
      if (!action.ok()) return action.status();
      continue;  // the only non-error action for a bad row is kSkipRow
    }
    Record record;
    record.id = std::move(row[0]);
    record.values.assign(std::make_move_iterator(row.begin() + 1),
                         std::make_move_iterator(row.end()));
    table.Add(std::move(record));
  }
  return table;
}

Status WriteTableCsv(const Table& table, const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(table.size() + 1);
  std::vector<std::string> header = {"id"};
  for (const auto& attr : table.schema().attributes()) header.push_back(attr);
  rows.push_back(std::move(header));
  for (const auto& record : table.records()) {
    std::vector<std::string> row = {record.id};
    row.insert(row.end(), record.values.begin(), record.values.end());
    rows.push_back(std::move(row));
  }
  return FileSource::WriteAtomic(path, WriteCsv(rows));
}

Result<std::vector<LabeledPair>> ReadPairsCsv(const std::string& path,
                                              const CsvReadOptions& options) {
  RLBENCH_ASSIGN_OR_RETURN(std::string text, FileSource::ReadAll(path));
  RLBENCH_ASSIGN_OR_RETURN(auto rows, ParseCsv(text));
  if (rows.empty()) return Status::InvalidArgument("empty CSV: " + path);
  const auto& header = rows[0];
  // A wrong header means the file is not a pair CSV at all; that stays a
  // hard error even in lenient mode.
  if (header.size() != 3 || !AsciiEqualsIgnoreCase(header[0], "left") ||
      !AsciiEqualsIgnoreCase(header[1], "right") ||
      !AsciiEqualsIgnoreCase(header[2], "label")) {
    return Status::InvalidArgument(
        "pair CSV header must be left,right,label: " + path);
  }
  std::vector<LabeledPair> pairs;
  pairs.reserve(rows.size() - 1);
  for (size_t r = 1; r < rows.size(); ++r) {
    auto& row = rows[r];
    size_t row_num = r + 1;
    {
      auto action = ApplyRowFault(RLBENCH_FAULT_POINT("data/csv/pair_row"),
                                  path, row_num, options, &row);
      if (!action.ok()) return action.status();
      if (*action == RowFaultAction::kSkipRow) continue;
    }
    auto reject = [&](const std::string& reason) {
      return RejectRow(path, row_num, reason, options);
    };
    if (row.size() != 3) {
      auto action =
          reject("expected 3 fields, got " + std::to_string(row.size()));
      if (!action.ok()) return action.status();
      continue;
    }
    LabeledPair pair;
    if (!ParseUint32Field(row[0], &pair.left)) {
      auto action = reject("bad left index: \"" + row[0] + "\"");
      if (!action.ok()) return action.status();
      continue;
    }
    if (!ParseUint32Field(row[1], &pair.right)) {
      auto action = reject("bad right index: \"" + row[1] + "\"");
      if (!action.ok()) return action.status();
      continue;
    }
    if (!ParseLabelField(row[2], &pair.is_match)) {
      auto action = reject("bad label: \"" + row[2] + "\"");
      if (!action.ok()) return action.status();
      continue;
    }
    pairs.push_back(pair);
  }
  return pairs;
}

Status WritePairsCsv(const std::vector<LabeledPair>& pairs,
                     const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(pairs.size() + 1);
  rows.push_back({"left", "right", "label"});
  for (const auto& pair : pairs) {
    rows.push_back({std::to_string(pair.left), std::to_string(pair.right),
                    pair.is_match ? "1" : "0"});
  }
  return FileSource::WriteAtomic(path, WriteCsv(rows));
}

}  // namespace rlbench::data
