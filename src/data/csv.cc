#include "data/csv.h"

#include <fstream>
#include <sstream>

namespace rlbench::data {

Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&]() {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&]() {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field_started && field.empty()) {
          in_quotes = true;
          field_started = true;
        } else {
          field.push_back(c);
        }
        break;
      case ',':
        end_field();
        break;
      case '\r':
        break;  // swallow; LF terminates the row
      case '\n':
        end_row();
        break;
      default:
        field.push_back(c);
        field_started = true;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  if (field_started || !field.empty() || !row.empty()) end_row();
  return rows;
}

namespace {

std::string QuoteField(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << content;
  return out ? Status::OK() : Status::IOError("write failed: " + path);
}

}  // namespace

std::string WriteCsv(const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      out.append(QuoteField(row[i]));
    }
    out.push_back('\n');
  }
  return out;
}

Result<Table> ReadTableCsv(const std::string& path, const std::string& name) {
  auto text = ReadFile(path);
  if (!text.ok()) return text.status();
  auto rows = ParseCsv(*text);
  if (!rows.ok()) return rows.status();
  if (rows->empty()) return Status::InvalidArgument("empty CSV: " + path);

  const auto& header = (*rows)[0];
  if (header.size() < 2) {
    return Status::InvalidArgument("table CSV needs id + 1 attribute: " + path);
  }
  Schema schema(std::vector<std::string>(header.begin() + 1, header.end()));
  Table table(name, schema);
  table.Reserve(rows->size() - 1);
  for (size_t r = 1; r < rows->size(); ++r) {
    const auto& row = (*rows)[r];
    Record record;
    record.id = row.empty() ? "" : row[0];
    record.values.assign(schema.num_attributes(), "");
    for (size_t i = 1; i < row.size() && i - 1 < schema.num_attributes(); ++i) {
      record.values[i - 1] = row[i];
    }
    table.Add(std::move(record));
  }
  return table;
}

Status WriteTableCsv(const Table& table, const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(table.size() + 1);
  std::vector<std::string> header = {"id"};
  for (const auto& attr : table.schema().attributes()) header.push_back(attr);
  rows.push_back(std::move(header));
  for (const auto& record : table.records()) {
    std::vector<std::string> row = {record.id};
    row.insert(row.end(), record.values.begin(), record.values.end());
    rows.push_back(std::move(row));
  }
  return WriteFile(path, WriteCsv(rows));
}

Result<std::vector<LabeledPair>> ReadPairsCsv(const std::string& path) {
  auto text = ReadFile(path);
  if (!text.ok()) return text.status();
  auto rows = ParseCsv(*text);
  if (!rows.ok()) return rows.status();
  std::vector<LabeledPair> pairs;
  for (size_t r = 1; r < rows->size(); ++r) {
    const auto& row = (*rows)[r];
    if (row.size() < 3) {
      return Status::InvalidArgument("pair CSV row needs 3 fields: " + path);
    }
    LabeledPair pair;
    pair.left = static_cast<uint32_t>(std::stoul(row[0]));
    pair.right = static_cast<uint32_t>(std::stoul(row[1]));
    pair.is_match = row[2] == "1" || row[2] == "true";
    pairs.push_back(pair);
  }
  return pairs;
}

Status WritePairsCsv(const std::vector<LabeledPair>& pairs,
                     const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(pairs.size() + 1);
  rows.push_back({"left", "right", "label"});
  for (const auto& pair : pairs) {
    rows.push_back({std::to_string(pair.left), std::to_string(pair.right),
                    pair.is_match ? "1" : "0"});
  }
  return WriteFile(path, WriteCsv(rows));
}

}  // namespace rlbench::data
