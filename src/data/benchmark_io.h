// Whole-benchmark serialisation: a MatchingTask as a directory of CSV
// files (d1.csv, d2.csv, train.csv, valid.csv, test.csv), the layout the
// examples and external consumers use.
#ifndef RLBENCH_SRC_DATA_BENCHMARK_IO_H_
#define RLBENCH_SRC_DATA_BENCHMARK_IO_H_

#include <string>

#include "common/status.h"
#include "data/task.h"

namespace rlbench::data {

/// Write the task's tables and splits into `directory` (created if absent).
Status ExportBenchmark(const MatchingTask& task, const std::string& directory);

/// Load a benchmark previously written by ExportBenchmark (or hand-built
/// in the same layout). Pair indices are validated against table sizes.
Result<MatchingTask> ImportBenchmark(const std::string& directory,
                                     const std::string& name = "imported");

}  // namespace rlbench::data

#endif  // RLBENCH_SRC_DATA_BENCHMARK_IO_H_
