// Whole-benchmark serialisation: a MatchingTask as a directory of CSV
// files (d1.csv, d2.csv, train.csv, valid.csv, test.csv), the layout the
// examples and external consumers use.
#ifndef RLBENCH_SRC_DATA_BENCHMARK_IO_H_
#define RLBENCH_SRC_DATA_BENCHMARK_IO_H_

#include <string>

#include "common/status.h"
#include "data/quarantine.h"
#include "data/task.h"

namespace rlbench::data {

/// Tolerance knobs for ImportBenchmark; see CsvReadOptions for the row
/// semantics. Lenient mode additionally quarantines (instead of rejecting)
/// pairs whose indices fall outside the imported tables.
struct ImportOptions {
  bool lenient = false;
  QuarantineReport* quarantine = nullptr;
};

/// Write the task's tables and splits into `directory` (created if absent).
/// Each file is written atomically (temp file + rename), so a failed export
/// never leaves a half-written CSV behind.
[[nodiscard]] Status ExportBenchmark(const MatchingTask& task, const std::string& directory);

/// Load a benchmark previously written by ExportBenchmark (or hand-built
/// in the same layout). A missing directory or split file is NotFound;
/// malformed rows and out-of-range pair indices are InvalidArgument in
/// strict mode, quarantined in lenient mode.
[[nodiscard]] Result<MatchingTask> ImportBenchmark(const std::string& directory,
                                     const std::string& name = "imported",
                                     const ImportOptions& options = {});

}  // namespace rlbench::data

#endif  // RLBENCH_SRC_DATA_BENCHMARK_IO_H_
