#include "fault/failpoint.h"

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/rng.h"
#include "common/thread_annotations.h"
#include "common/strings.h"
#include "obs/metrics.h"

namespace rlbench::fault {

namespace {

// One armed spec clause. Counters are atomic so failpoints may be
// evaluated concurrently; the decision for the n-th evaluation depends
// only on (seed, pattern, n), never on other clauses or wall time.
struct Clause {
  std::string pattern;         // may end in '*'
  bool wildcard = false;       // pattern ends in '*'
  FaultKind kind = FaultKind::kNone;  // kNone encodes 'any'
  double probability = 0.0;
  uint64_t max_hits = UINT64_MAX;
  uint64_t stream_seed = 0;    // SplitMix64(seed ^ Fnv1a64(pattern))
  std::atomic<uint64_t> evaluations{0};
  std::atomic<uint64_t> hits{0};
};

struct Registry {
  Mutex mutex;  // guards re-arming, not evaluation
  std::string spec RLBENCH_GUARDED_BY(mutex);
  uint64_t seed RLBENCH_GUARDED_BY(mutex) = 0;
  std::vector<std::unique_ptr<Clause>> clauses RLBENCH_GUARDED_BY(mutex);
  bool env_resolved RLBENCH_GUARDED_BY(mutex) = false;  // env consulted
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

bool PatternMatches(const Clause& clause, std::string_view point) {
  if (clause.wildcard) {
    std::string_view prefix(clause.pattern);
    prefix.remove_suffix(1);
    return point.substr(0, prefix.size()) == prefix;
  }
  return point == clause.pattern;
}

bool ParseUint64(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool ParseProbability(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  if (!(value >= 0.0 && value <= 1.0)) return false;
  *out = value;
  return true;
}

bool ParseKind(std::string_view text, FaultKind* kind) {
  if (text == "io") *kind = FaultKind::kIOError;
  else if (text == "truncate") *kind = FaultKind::kTruncate;
  else if (text == "corrupt") *kind = FaultKind::kCorrupt;
  else if (text == "alloc") *kind = FaultKind::kAlloc;
  else if (text == "any") *kind = FaultKind::kNone;  // resolved per hit
  else return false;
  return true;
}

// Parse into `clauses` + `seed`; on error returns InvalidArgument naming
// the offending clause and leaves the outputs untouched.
Status ParseSpec(const std::string& spec,
                 std::vector<std::unique_ptr<Clause>>* clauses,
                 uint64_t* seed) {
  std::vector<std::unique_ptr<Clause>> parsed;
  uint64_t parsed_seed = 0;
  for (const std::string& raw : SplitAny(spec, ";")) {
    std::string piece(StripAscii(raw));
    if (piece.empty()) continue;
    size_t eq = piece.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("fault spec clause '" + piece +
                                     "': expected point=kind:prob or seed=N");
    }
    std::string left = piece.substr(0, eq);
    std::string right = piece.substr(eq + 1);
    if (left == "seed") {
      if (!ParseUint64(right, &parsed_seed)) {
        return Status::InvalidArgument("fault spec: bad seed '" + right + "'");
      }
      continue;
    }
    auto clause = std::make_unique<Clause>();
    clause->pattern = left;
    clause->wildcard = !left.empty() && left.back() == '*';
    if (clause->wildcard && left.size() == 1) {
      // A bare "*" matches everything; allowed, reads as "every failpoint".
    }
    auto parts = SplitAny(right, ":");
    if (parts.size() < 2 || parts.size() > 3) {
      return Status::InvalidArgument("fault spec clause '" + piece +
                                     "': expected kind:prob[:max=N]");
    }
    if (!ParseKind(parts[0], &clause->kind)) {
      return Status::InvalidArgument("fault spec clause '" + piece +
                                     "': unknown kind '" + parts[0] + "'");
    }
    if (!ParseProbability(parts[1], &clause->probability)) {
      return Status::InvalidArgument("fault spec clause '" + piece +
                                     "': probability '" + parts[1] +
                                     "' not in [0, 1]");
    }
    if (parts.size() == 3) {
      if (!StartsWith(parts[2], "max=") ||
          !ParseUint64(std::string_view(parts[2]).substr(4),
                       &clause->max_hits)) {
        return Status::InvalidArgument("fault spec clause '" + piece +
                                       "': expected max=N, got '" + parts[2] +
                                       "'");
      }
    }
    parsed.push_back(std::move(clause));
  }
  for (auto& clause : parsed) {
    clause->stream_seed =
        SplitMix64(parsed_seed ^ Fnv1a64(clause->pattern));
  }
  *clauses = std::move(parsed);
  *seed = parsed_seed;
  return Status::OK();
}

// 53-bit uniform in [0, 1) from one SplitMix64 output.
double ToUnitInterval(uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kIOError:
      return "io";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kAlloc:
      return "alloc";
  }
  return "none";
}

namespace internal {

// NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
std::atomic<int> g_fault_state{0};

int ResolveFaultState() {
  Registry& registry = GetRegistry();
  MutexLock lock(&registry.mutex);
  int state = g_fault_state.load(std::memory_order_relaxed);
  if (state != 0) return state;  // raced with another resolver / SetSpec
  registry.env_resolved = true;
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at gate resolution
  const char* env = std::getenv("RLBENCH_FAULTS");
  if (env == nullptr || env[0] == '\0') {
    g_fault_state.store(1, std::memory_order_relaxed);
    return 1;
  }
  Status status = ParseSpec(env, &registry.clauses, &registry.seed);
  if (!status.ok()) {
    // Aborting here is deliberate: a typo'd RLBENCH_FAULTS that silently
    // injected nothing would defeat the tests this layer backs.
    std::fprintf(stderr, "fault: cannot parse RLBENCH_FAULTS: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
  registry.spec = env;
  g_fault_state.store(2, std::memory_order_release);
  return 2;
}

FaultHit Evaluate(const char* point) {
  Registry& registry = GetRegistry();
  RLBENCH_COUNTER_INC("fault/evaluations");
  for (auto& clause_ptr : registry.clauses) {
    Clause& clause = *clause_ptr;
    if (!PatternMatches(clause, point)) continue;
    uint64_t n = clause.evaluations.fetch_add(1, std::memory_order_relaxed);
    uint64_t draw = SplitMix64(clause.stream_seed + n);
    if (ToUnitInterval(draw) >= clause.probability) return FaultHit{};
    // Cap accounting: only the first max_hits winners actually fire.
    uint64_t prior = clause.hits.fetch_add(1, std::memory_order_relaxed);
    if (prior >= clause.max_hits) {
      clause.hits.fetch_sub(1, std::memory_order_relaxed);
      return FaultHit{};
    }
    FaultHit hit;
    hit.payload = SplitMix64(draw ^ 0x9E3779B97F4A7C15ULL);
    hit.kind = clause.kind == FaultKind::kNone  // 'any': pick per hit
                   ? static_cast<FaultKind>(1 + hit.payload % 4)
                   : clause.kind;
    RLBENCH_COUNTER_INC("fault/hits");
    return hit;
  }
  return FaultHit{};
}

}  // namespace internal

Status SetSpec(const std::string& spec) {
  Registry& registry = GetRegistry();
  MutexLock lock(&registry.mutex);
  if (spec.empty()) {
    registry.clauses.clear();
    registry.spec.clear();
    internal::g_fault_state.store(1, std::memory_order_relaxed);
    return Status::OK();
  }
  std::vector<std::unique_ptr<Clause>> clauses;
  uint64_t seed = 0;
  RLBENCH_RETURN_NOT_OK(ParseSpec(spec, &clauses, &seed));
  registry.clauses = std::move(clauses);
  registry.seed = seed;
  registry.spec = spec;
  internal::g_fault_state.store(2, std::memory_order_release);
  return Status::OK();
}

void Clear() {
  Registry& registry = GetRegistry();
  MutexLock lock(&registry.mutex);
  registry.clauses.clear();
  registry.spec.clear();
  internal::g_fault_state.store(1, std::memory_order_relaxed);
}

std::string ActiveSpec() {
  if (!FaultsEnabled()) return "";
  Registry& registry = GetRegistry();
  MutexLock lock(&registry.mutex);
  return registry.spec;
}

std::vector<FaultPointStats> Stats() {
  Registry& registry = GetRegistry();
  MutexLock lock(&registry.mutex);
  std::vector<FaultPointStats> out;
  out.reserve(registry.clauses.size());
  for (const auto& clause : registry.clauses) {
    FaultPointStats stats;
    stats.point = clause->pattern;
    stats.kind = clause->kind;
    stats.evaluations = clause->evaluations.load(std::memory_order_relaxed);
    stats.hits = clause->hits.load(std::memory_order_relaxed);
    out.push_back(std::move(stats));
  }
  return out;
}

}  // namespace rlbench::fault
