// Deterministic, seeded fault injection behind named failpoints — the
// failpoint discipline storage engines use (RocksDB's fault-injection env,
// TiKV's fail-rs): production code declares *where* a fault can strike
// with RLBENCH_FAULT_POINT("data/file/read"); a spec supplied at run time
// decides *whether* it strikes, with what kind, and at what seeded
// probability. Off by default; one relaxed atomic load per failpoint when
// disabled (the same zero-cost gating as src/obs/).
//
// Spec grammar (RLBENCH_FAULTS environment variable, or SetSpec()):
//
//   spec    := clause (';' clause)*
//   clause  := 'seed=' <uint64>
//            | point '=' kind ':' prob [':max=' <uint64>]
//   point   := failpoint name, optionally ending in '*' (prefix wildcard)
//   kind    := 'io' | 'truncate' | 'corrupt' | 'alloc' | 'any'
//   prob    := real in [0, 1]
//
// Examples:
//   RLBENCH_FAULTS="seed=7;data/file/read=io:0.25"
//   RLBENCH_FAULTS="seed=3;data/file/*=any:0.1;core/build_benchmark=alloc:1:max=2"
//
// The first clause whose point matches wins. Each clause owns an
// independent decision stream derived from (seed, point pattern, n-th
// evaluation), so a given spec produces the same fault schedule on every
// run regardless of what other clauses fire — and a `max=` cap bounds how
// many times a clause may hit (handy for testing bounded retry).
//
// Determinism caveat: the n-th-evaluation counter is per clause, so the
// schedule is deterministic whenever matching failpoints are evaluated in
// a deterministic order. All current failpoints sit on serial paths (file
// IO, import, benchmark building); a failpoint inside a ParallelFor body
// would be deterministic only at a fixed thread count.
//
// A malformed spec in RLBENCH_FAULTS aborts at first resolution with a
// parse error: a typo'd spec silently injecting nothing would invalidate
// exactly the experiments this layer exists to protect.
#ifndef RLBENCH_SRC_FAULT_FAILPOINT_H_
#define RLBENCH_SRC_FAULT_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace rlbench::fault {

/// What an armed failpoint injects at a given hit.
enum class FaultKind {
  kNone = 0,
  kIOError,   ///< the operation reports an injected I/O failure
  kTruncate,  ///< data is cut short at a seeded offset
  kCorrupt,   ///< data is mangled at a seeded position
  kAlloc,     ///< allocation pressure: the operation reports exhaustion
};

/// Stable lower-case name ("io", "truncate", ...); "none" for kNone.
const char* FaultKindName(FaultKind kind);

/// \brief Outcome of evaluating one failpoint: no fault (the overwhelmingly
/// common case) or a fault kind plus deterministic per-hit entropy the call
/// site uses to pick offsets / bytes to mangle.
struct FaultHit {
  FaultKind kind = FaultKind::kNone;
  uint64_t payload = 0;

  explicit operator bool() const { return kind != FaultKind::kNone; }
};

namespace internal {

// 0 = unresolved (consult RLBENCH_FAULTS), 1 = off, 2 = on.
// NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
extern std::atomic<int> g_fault_state;
int ResolveFaultState();

/// Slow path behind RLBENCH_FAULT_POINT; only called while enabled.
/// Reads the armed clause list without its mutex — lock-free by contract
/// (SetSpec/Clear must not race with evaluation, see above), which the
/// thread-safety analysis cannot see.
FaultHit Evaluate(const char* point) RLBENCH_NO_THREAD_SAFETY_ANALYSIS;

}  // namespace internal

/// \brief True iff a fault spec is currently armed.
inline bool FaultsEnabled() {
  int state = internal::g_fault_state.load(std::memory_order_relaxed);
  if (state == 0) state = internal::ResolveFaultState();
  return state == 2;
}

/// \brief Programmatic override of RLBENCH_FAULTS (tests, harnesses).
/// Parses and arms `spec`; an empty spec disables injection. Returns
/// InvalidArgument (leaving the previous spec armed) when `spec` does not
/// parse. Must not be called while other threads evaluate failpoints.
[[nodiscard]] Status SetSpec(const std::string& spec);

/// \brief Disarm injection and forget any spec (env or programmatic);
/// counters reset. RLBENCH_FAULTS is not re-read afterwards.
void Clear();

/// \brief The armed spec string ("" when disabled).
std::string ActiveSpec();

/// \brief Per-clause accounting, in spec order.
struct FaultPointStats {
  std::string point;         ///< pattern as written (may end in '*')
  FaultKind kind = FaultKind::kNone;
  uint64_t evaluations = 0;  ///< matching failpoint evaluations
  uint64_t hits = 0;         ///< evaluations that injected a fault
};
std::vector<FaultPointStats> Stats();

}  // namespace rlbench::fault

/// Evaluate the named failpoint: yields a FaultHit that converts to false
/// when nothing is injected. `point` must be a string literal (or outlive
/// the call). Usage:
///
///   if (auto hit = RLBENCH_FAULT_POINT("data/file/read")) {
///     return Status::IOError("injected: read of " + path);
///   }
#define RLBENCH_FAULT_POINT(point)                   \
  (::rlbench::fault::FaultsEnabled()                 \
       ? ::rlbench::fault::internal::Evaluate(point) \
       : ::rlbench::fault::FaultHit{})

#endif  // RLBENCH_SRC_FAULT_FAILPOINT_H_
