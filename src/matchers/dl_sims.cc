#include "matchers/dl_sims.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace rlbench::matchers {

const char* DlMethodName(DlMethod method) {
  switch (method) {
    case DlMethod::kDeepMatcher:
      return "DeepMatcher";
    case DlMethod::kEmTransformerB:
      return "EMTransformer-B";
    case DlMethod::kEmTransformerR:
      return "EMTransformer-R";
    case DlMethod::kGnem:
      return "GNEM";
    case DlMethod::kDitto:
      return "DITTO";
    case DlMethod::kHierMatcher:
      return "HierMatcher";
  }
  return "DL";
}

namespace {
// Per-column alignment feature slots for the transformer family (the
// widest catalog schema has 8 attributes).
constexpr size_t kMaxColumnFeatures = 8;
}  // namespace

DlMatcher::DlMatcher(DlMethod method, int epochs, DlOptions options)
    : method_(method),
      epochs_(epochs),
      options_(options),
      static_model_(options.attr_dim, options.seed ^ 0x57A71CULL) {}

std::string DlMatcher::name() const {
  return std::string(DlMethodName(method_)) + " (" + std::to_string(epochs_) +
         ")";
}

std::vector<std::string> DlMatcher::SequenceTokens(
    const MatchingContext& context, bool left_side, uint32_t record) const {
  const auto& cache = left_side ? context.left() : context.right();
  const auto& tokens = cache.Tokens(record);
  if (method_ == DlMethod::kDitto) {
    // DITTO summarises long inputs by TF-IDF weight instead of truncating.
    return context.tfidf().Summarize(tokens, options_.max_sequence_tokens);
  }
  if (tokens.size() <= options_.max_sequence_tokens) return tokens;
  return std::vector<std::string>(
      tokens.begin(), tokens.begin() + options_.max_sequence_tokens);
}

DlMatcher::RecordRep DlMatcher::BuildRep(const MatchingContext& context,
                                         bool left_side, uint32_t record,
                                         Rng* dropout) const {
  RecordRep rep;
  const auto& cache = left_side ? context.left() : context.right();
  size_t num_attrs = context.task().left().schema().num_attributes();
  auto keep = [&](const std::string&) {
    return dropout == nullptr ||
           !dropout->Bernoulli(options_.ditto_token_dropout);
  };

  auto token_vec = [this](const std::string& token) -> const embed::Vec& {
    auto it = token_cache_.find(token);
    if (it == token_cache_.end()) {
      it = token_cache_.emplace(token, static_model_.EmbedToken(token)).first;
    }
    return it->second;
  };

  switch (method_) {
    case DlMethod::kDeepMatcher: {
      rep.attr_vecs.resize(num_attrs);
      for (size_t a = 0; a < num_attrs; ++a) {
        const auto& tokens = cache.TokensAttr(record, a);
        embed::Vec v(options_.attr_dim, 0.0F);
        for (const auto& token : tokens) {
          embed::AddInPlace(&v, token_vec(token));
        }
        if (!tokens.empty()) {
          embed::ScaleInPlace(&v, 1.0F / static_cast<float>(tokens.size()));
          embed::L2NormalizeInPlace(&v);
        }
        rep.attr_vecs[a] = std::move(v);
      }
      break;
    }
    case DlMethod::kEmTransformerB:
    case DlMethod::kEmTransformerR:
    case DlMethod::kGnem:
    case DlMethod::kDitto: {
      std::vector<std::string> tokens =
          SequenceTokens(context, left_side, record);
      if (dropout != nullptr) {
        std::vector<std::string> kept;
        kept.reserve(tokens.size());
        for (auto& token : tokens) {
          if (keep(token)) kept.push_back(std::move(token));
        }
        tokens = std::move(kept);
      }
      rep.seq_vec = dynamic_model_->EncodeSequence(tokens);
      if (rep.seq_vec.empty()) rep.seq_vec.assign(options_.seq_dim, 0.0F);
      // Token vectors for cross-sequence alignment features, capped like
      // HierMatcher's alignment window. Subword (static) vectors keep the
      // token identity crisp; the dynamic context enters via seq_vec.
      // The attribute id of each token is known because the serialized
      // input carries column tags (the "[COL] a [VAL] v" convention of
      // DITTO/EMTransformer), so same-column alignment is available to the
      // heterogeneous methods without requiring aligned schemas.
      for (size_t a = 0; a < num_attrs &&
                         rep.token_vecs.size() < options_.max_alignment_tokens;
           ++a) {
        for (const auto& token : cache.TokensAttr(record, a)) {
          if (rep.token_vecs.size() >= options_.max_alignment_tokens) break;
          if (!keep(token)) continue;
          rep.token_vecs.push_back(token_vec(token));
          rep.token_idf.push_back(context.tfidf().Idf(token));
          rep.token_attr.push_back(a);
        }
      }
      break;
    }
    case DlMethod::kHierMatcher: {
      for (size_t a = 0; a < num_attrs &&
                         rep.token_vecs.size() < options_.max_alignment_tokens;
           ++a) {
        for (const auto& token : cache.TokensAttr(record, a)) {
          if (rep.token_vecs.size() >= options_.max_alignment_tokens) break;
          rep.token_vecs.push_back(token_vec(token));
          rep.token_idf.push_back(context.tfidf().Idf(token));
          rep.token_attr.push_back(a);
        }
      }
      break;
    }
  }
  return rep;
}

const DlMatcher::RecordRep& DlMatcher::Rep(const MatchingContext& context,
                                           bool left_side, uint32_t record) {
  auto& cache = rep_cache_[left_side ? 0 : 1];
  auto it = cache.find(record);
  if (it == cache.end()) {
    it = cache.emplace(record, BuildRep(context, left_side, record, nullptr))
             .first;
  }
  return it->second;
}

size_t DlMatcher::FeatureDim(size_t num_attrs) const {
  switch (method_) {
    case DlMethod::kDeepMatcher:
      return 2 * options_.attr_dim * num_attrs;
    case DlMethod::kEmTransformerB:
    case DlMethod::kEmTransformerR:
    case DlMethod::kGnem:
    case DlMethod::kDitto:
      // 3 sequence sims + 8 global alignment stats + 4 same-column
      // alignment stats + kMaxColumnFeatures per-column means + 2x2
      // chunk-pooled interactions.
      return 3 + 8 + 4 + kMaxColumnFeatures + 4;
    case DlMethod::kHierMatcher:
      return 4 * num_attrs + 2;
  }
  return 0;
}

std::vector<float> DlMatcher::PairFeatures(const RecordRep& left,
                                           const RecordRep& right) const {
  std::vector<float> features;
  switch (method_) {
    case DlMethod::kDeepMatcher: {
      features.reserve(2 * options_.attr_dim * left.attr_vecs.size());
      for (size_t a = 0; a < left.attr_vecs.size(); ++a) {
        embed::Vec interaction =
            embed::InteractionFeatures(left.attr_vecs[a], right.attr_vecs[a]);
        features.insert(features.end(), interaction.begin(),
                        interaction.end());
      }
      break;
    }
    case DlMethod::kEmTransformerB:
    case DlMethod::kEmTransformerR:
    case DlMethod::kGnem:
    case DlMethod::kDitto: {
      features.push_back(static_cast<float>(
          embed::CosineSimilarity01(left.seq_vec, right.seq_vec)));
      features.push_back(static_cast<float>(
          embed::EuclideanSimilarity(left.seq_vec, right.seq_vec)));
      features.push_back(static_cast<float>(
          embed::WassersteinSimilarity(left.seq_vec, right.seq_vec)));
      // Cross-sequence token alignment (the cross-encoder's attention
      // between the two sequences): mean / max / IDF-weighted mean of each
      // token's best match on the other side, both directions.
      auto align = [](const RecordRep& from, const RecordRep& to,
                      float out[4]) {
        out[0] = out[1] = out[2] = out[3] = 0.0F;
        if (from.token_vecs.empty() || to.token_vecs.empty()) return;
        double sum = 0.0;
        double best_overall = 0.0;
        double idf_sum = 0.0;
        double idf_weight = 0.0;
        std::vector<double> bests;
        bests.reserve(from.token_vecs.size());
        for (size_t i = 0; i < from.token_vecs.size(); ++i) {
          double best = 0.0;
          for (const auto& other : to.token_vecs) {
            best = std::max(
                best, embed::CosineSimilarity01(from.token_vecs[i], other));
          }
          sum += best;
          best_overall = std::max(best_overall, best);
          idf_sum += from.token_idf[i] * best;
          idf_weight += from.token_idf[i];
          bests.push_back(best);
        }
        out[0] = static_cast<float>(
            sum / static_cast<double>(from.token_vecs.size()));
        out[1] = static_cast<float>(best_overall);
        out[2] = static_cast<float>(
            idf_weight > 0.0 ? idf_sum / idf_weight : 0.0);
        // Min-pooling over the worst-aligned tokens: the attention head
        // that notices "one token has no counterpart" — the signal that
        // separates a typo'd duplicate from a sibling entity.
        std::sort(bests.begin(), bests.end());
        size_t k = std::min<size_t>(3, bests.size());
        double worst = 0.0;
        for (size_t i = 0; i < k; ++i) worst += bests[i];
        out[3] = static_cast<float>(worst / static_cast<double>(k));
      };
      float l2r[4];
      float r2l[4];
      align(left, right, l2r);
      align(right, left, r2l);
      features.insert(features.end(), {l2r[0], l2r[1], l2r[2], l2r[3],
                                       r2l[0], r2l[1], r2l[2], r2l[3]});
      // Same-column alignment (available through the serialized column
      // tags): idf-weighted mean and worst-3 mean of each token's best
      // match *within the same attribute*, both directions.
      auto column_align = [](const RecordRep& from, const RecordRep& to,
                             float out[2]) {
        out[0] = out[1] = 0.0F;
        if (from.token_vecs.empty() || to.token_vecs.empty()) return;
        double idf_sum = 0.0;
        double idf_weight = 0.0;
        std::vector<double> bests;
        bests.reserve(from.token_vecs.size());
        for (size_t i = 0; i < from.token_vecs.size(); ++i) {
          double best = 0.0;
          for (size_t j = 0; j < to.token_vecs.size(); ++j) {
            if (to.token_attr[j] != from.token_attr[i]) continue;
            best = std::max(best, embed::CosineSimilarity01(
                                      from.token_vecs[i], to.token_vecs[j]));
          }
          idf_sum += from.token_idf[i] * best;
          idf_weight += from.token_idf[i];
          bests.push_back(best);
        }
        out[0] = static_cast<float>(
            idf_weight > 0.0 ? idf_sum / idf_weight : 0.0);
        std::sort(bests.begin(), bests.end());
        size_t k = std::min<size_t>(3, bests.size());
        double worst = 0.0;
        for (size_t i = 0; i < k; ++i) worst += bests[i];
        out[1] = static_cast<float>(k > 0 ? worst / static_cast<double>(k)
                                          : 0.0);
      };
      float col_l2r[2];
      float col_r2l[2];
      column_align(left, right, col_l2r);
      column_align(right, left, col_r2l);
      features.insert(features.end(),
                      {col_l2r[0], col_l2r[1], col_r2l[0], col_r2l[1]});
      // Per-column alignment means (two directions averaged), one slot per
      // column up to kMaxColumnFeatures: the hierarchical decomposition the
      // column tags make available to heterogeneous methods.
      {
        std::vector<double> sum(kMaxColumnFeatures, 0.0);
        std::vector<double> weight(kMaxColumnFeatures, 0.0);
        auto accumulate = [&](const RecordRep& from, const RecordRep& to) {
          for (size_t i = 0; i < from.token_vecs.size(); ++i) {
            size_t a = from.token_attr[i];
            if (a >= kMaxColumnFeatures) continue;
            double best = 0.0;
            for (size_t j = 0; j < to.token_vecs.size(); ++j) {
              if (to.token_attr[j] != a) continue;
              best = std::max(best,
                              embed::CosineSimilarity01(from.token_vecs[i],
                                                        to.token_vecs[j]));
            }
            sum[a] += best;
            weight[a] += 1.0;
          }
        };
        accumulate(left, right);
        accumulate(right, left);
        for (size_t a = 0; a < kMaxColumnFeatures; ++a) {
          features.push_back(static_cast<float>(
              weight[a] > 0.0 ? sum[a] / weight[a] : 0.0));
        }
      }
      // Chunk-pooled interaction of the sequence vectors: mean |a-b| and
      // mean a*b over 2 contiguous chunks each — a low-dimensional proxy
      // for the untrained interaction layer that behaves well on the small
      // training sets of Table III.
      {
        size_t dim = left.seq_vec.size();
        size_t chunks = 2;
        size_t chunk = std::max<size_t>(1, dim / chunks);
        for (size_t c = 0; c < chunks; ++c) {
          size_t begin = c * chunk;
          size_t end = c + 1 == chunks ? dim : std::min(dim, begin + chunk);
          double diff = 0.0;
          for (size_t i = begin; i < end; ++i) {
            diff += std::fabs(double{left.seq_vec[i]} - right.seq_vec[i]);
          }
          features.push_back(static_cast<float>(
              begin < end ? diff / static_cast<double>(end - begin) : 0.0));
        }
        for (size_t c = 0; c < chunks; ++c) {
          size_t begin = c * chunk;
          size_t end = c + 1 == chunks ? dim : std::min(dim, begin + chunk);
          double had = 0.0;
          for (size_t i = begin; i < end; ++i) {
            had += double{left.seq_vec[i]} * right.seq_vec[i];
          }
          features.push_back(static_cast<float>(
              begin < end ? had / static_cast<double>(end - begin) : 0.0));
        }
      }
      break;
    }
    case DlMethod::kHierMatcher: {
      // Cross-attribute token alignment: every token finds its best match
      // on the other side regardless of attribute (the heterogeneous step),
      // then alignment quality is pooled per attribute of the *query* side.
      size_t num_attrs = 0;
      for (size_t a : left.token_attr) num_attrs = std::max(num_attrs, a + 1);
      for (size_t a : right.token_attr) num_attrs = std::max(num_attrs, a + 1);

      auto align = [](const RecordRep& from, const RecordRep& to,
                      size_t attrs, double* overall) {
        std::vector<double> mean_per_attr(attrs, 0.0);
        std::vector<double> max_per_attr(attrs, 0.0);
        std::vector<double> count(attrs, 0.0);
        double total = 0.0;
        for (size_t i = 0; i < from.token_vecs.size(); ++i) {
          double best = 0.0;
          for (const auto& other : to.token_vecs) {
            best = std::max(best,
                            embed::CosineSimilarity01(from.token_vecs[i],
                                                      other));
          }
          size_t a = from.token_attr[i];
          mean_per_attr[a] += best;
          max_per_attr[a] = std::max(max_per_attr[a], best);
          count[a] += 1.0;
          total += best;
        }
        for (size_t a = 0; a < attrs; ++a) {
          if (count[a] > 0.0) mean_per_attr[a] /= count[a];
        }
        *overall = from.token_vecs.empty()
                       ? 0.0
                       : total / static_cast<double>(from.token_vecs.size());
        return std::make_pair(mean_per_attr, max_per_attr);
      };

      double overall_l2r = 0.0;
      double overall_r2l = 0.0;
      auto [mean_l2r, max_l2r] = align(left, right, num_attrs, &overall_l2r);
      auto [mean_r2l, max_r2l] = align(right, left, num_attrs, &overall_r2l);
      for (size_t a = 0; a < num_attrs; ++a) {
        features.push_back(static_cast<float>(mean_l2r[a]));
        features.push_back(static_cast<float>(max_l2r[a]));
        features.push_back(static_cast<float>(mean_r2l[a]));
        features.push_back(static_cast<float>(max_r2l[a]));
      }
      features.push_back(static_cast<float>(overall_l2r));
      features.push_back(static_cast<float>(overall_r2l));
      break;
    }
  }
  return features;
}

std::vector<uint8_t> DlMatcher::Run(const MatchingContext& context) {
  // One matcher instance may be reused across tasks: reset per-task state.
  token_cache_.clear();
  rep_cache_.assign(2, {});
  dynamic_model_ = std::make_unique<embed::ContextEncoder>(
      options_.seq_dim, options_.seed,
      method_ == DlMethod::kEmTransformerR || method_ == DlMethod::kDitto
          ? 0x20BE27A5ull  // the RoBERTa-style checkpoint
          : 0xBE27ull,     // the BERT-style checkpoint
      &context.tfidf());

  const auto& task = context.task();
  size_t num_attrs = task.left().schema().num_attributes();
  size_t dim = FeatureDim(num_attrs);

  // HierMatcher's feature width depends on the attribute count; pad to dim.
  auto pad = [dim](std::vector<float> features) {
    features.resize(dim, 0.0F);
    return features;
  };

  ml::Dataset train(dim);
  Rng augment_rng(options_.seed ^ 0xA06ULL);
  for (const auto& pair : task.train()) {
    train.Add(pad(PairFeatures(Rep(context, true, pair.left),
                               Rep(context, false, pair.right))),
              pair.is_match);
    if (method_ == DlMethod::kDitto &&
        augment_rng.Bernoulli(options_.ditto_augment_rate)) {
      // Augmented copy: re-encode both sides with token dropout.
      RecordRep l = BuildRep(context, true, pair.left, &augment_rng);
      RecordRep r = BuildRep(context, false, pair.right, &augment_rng);
      train.Add(pad(PairFeatures(l, r)), pair.is_match);
    }
  }
  ml::Dataset valid(dim);
  for (const auto& pair : task.valid()) {
    valid.Add(pad(PairFeatures(Rep(context, true, pair.left),
                               Rep(context, false, pair.right))),
              pair.is_match);
  }
  ml::Dataset test(dim);
  for (const auto& pair : task.test()) {
    test.Add(pad(PairFeatures(Rep(context, true, pair.left),
                              Rep(context, false, pair.right))),
             pair.is_match);
  }

  ml::MlpOptions mlp_options = options_.mlp;
  mlp_options.epochs = epochs_;
  mlp_options.seed = options_.seed;
  ml::Mlp mlp(mlp_options);
  mlp.Fit(train, valid);

  // Batched panel scoring through the affine kernels — bit-identical to a
  // per-row PredictScore loop (the differential tests pin it).
  std::vector<double> scores(test.size());
  mlp.PredictScoresBatch(test, scores);

  if (method_ == DlMethod::kGnem) {
    // Global step: reason jointly over all candidate pairs that share a
    // record. In Clean-Clean ER each record matches at most one record on
    // the other side, so a strong *competing* pair on the same record —
    // a labelled positive, or a higher-scoring test pair — is evidence
    // against this pair (GNEM's one-to-set interaction module).
    std::unordered_map<uint32_t, std::vector<std::pair<size_t, double>>>
        by_left, by_right;
    // Index space: test pairs carry their own index so a pair skips itself
    // during propagation; labelled pairs use a sentinel index.
    for (size_t i = 0; i < task.test().size(); ++i) {
      const auto& pair = task.test()[i];
      by_left[pair.left].emplace_back(i, scores[i]);
      by_right[pair.right].emplace_back(i, scores[i]);
    }
    for (const auto* split : {&task.train(), &task.valid()}) {
      for (const auto& pair : *split) {
        if (!pair.is_match) continue;  // non-matches carry no exclusivity
        by_left[pair.left].emplace_back(SIZE_MAX, 1.0);
        by_right[pair.right].emplace_back(SIZE_MAX, 1.0);
      }
    }

    std::vector<double> refined = scores;
    for (size_t i = 0; i < task.test().size(); ++i) {
      const auto& pair = task.test()[i];
      double strongest_competitor = 0.0;
      for (const auto* bucket : {&by_left[pair.left], &by_right[pair.right]}) {
        for (const auto& [j, anchor] : *bucket) {
          if (j == i) continue;
          strongest_competitor = std::max(strongest_competitor, anchor);
        }
      }
      // Suppress this pair in proportion to how much stronger the best
      // competitor is; pairs that dominate their neighbourhood are kept.
      if (strongest_competitor > scores[i]) {
        refined[i] = scores[i] - options_.gnem_lambda *
                                     (strongest_competitor - scores[i]);
        refined[i] = std::max(0.0, refined[i]);
      }
    }
    scores = std::move(refined);
  }

  std::vector<uint8_t> predictions(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    predictions[i] = scores[i] >= 0.5 ? 1 : 0;
  }
  return predictions;
}

}  // namespace rlbench::matchers
