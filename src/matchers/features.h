// Pair-level feature extractors: the Magellan-style per-attribute classical
// similarity features and the ESDE feature families of Algorithm 2.
#ifndef RLBENCH_SRC_MATCHERS_FEATURES_H_
#define RLBENCH_SRC_MATCHERS_FEATURES_H_

#include <span>
#include <string>
#include <vector>

#include "data/columnar.h"
#include "data/feature_cache.h"
#include "data/task.h"

namespace rlbench::matchers {

/// Number of Magellan features per attribute (Jaccard, Levenshtein,
/// Jaro-Winkler, Monge-Elkan, numeric, exact).
inline constexpr size_t kMagellanFeaturesPerAttr = 6;

/// Long values are truncated before the O(n^2) string measures; mirrors
/// the attribute-value summarisation every practical EM system applies.
inline constexpr size_t kMaxCharsForEditSims = 48;
inline constexpr size_t kMaxTokensForMongeElkan = 12;

/// Magellan feature vector of one candidate pair (one block of
/// kMagellanFeaturesPerAttr values per attribute).
std::vector<float> MagellanFeatures(const data::RecordFeatureCache& left,
                                    const data::RecordFeatureCache& right,
                                    const data::LabeledPair& pair);

/// Columnar hot path of MagellanFeatures: same features, bit-identical
/// values, written straight into `out` (size num_attrs *
/// kMagellanFeaturesPerAttr) with no per-pair allocation. The row-oriented
/// overload above stays as the cold-path adapter and the scalar reference
/// for the differential tests.
void MagellanFeaturesColumnar(const data::ColumnarStore& store,
                              const data::LabeledPair& pair,
                              std::span<float> out);

/// The six ESDE feature families of Section IV-C.
enum class EsdeVariant {
  kSchemaAgnostic,        // SA-ESDE: [CS, DS, JS] over all tokens
  kSchemaBased,           // SB-ESDE: [CS, DS, JS] per attribute
  kSchemaAgnosticQgram,   // SAQ-ESDE: [CS, DS, JS] per q in [2,10]
  kSchemaBasedQgram,      // SBQ-ESDE: [CS, DS, JS] per q per attribute
  kSchemaAgnosticSent,    // SAS-ESDE: [CS, ES, WS] of record embeddings
  kSchemaBasedSent,       // SBS-ESDE: [CS, ES, WS] per attribute embedding
};

const char* EsdeVariantName(EsdeVariant variant);

/// Dimensionality |F| of the variant's feature vector for a schema with
/// `num_attrs` attributes.
size_t EsdeFeatureCount(EsdeVariant variant, size_t num_attrs);

}  // namespace rlbench::matchers

#endif  // RLBENCH_SRC_MATCHERS_FEATURES_H_
