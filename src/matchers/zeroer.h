// ZeroER: unsupervised matching via a two-component Gaussian mixture over
// the Magellan feature vectors (Section IV-B). It ignores all labels and,
// as in the paper's setup, is decoupled from blocking — it fits on every
// candidate pair of the task (train + valid + test) and predicts the test
// pairs from the match-component posterior.
#ifndef RLBENCH_SRC_MATCHERS_ZEROER_H_
#define RLBENCH_SRC_MATCHERS_ZEROER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "matchers/matcher.h"
#include "ml/gmm_em.h"

namespace rlbench::matchers {

/// ZeroER's feature selection over a Magellan feature row: the
/// per-attribute Jaccard and Monge-Elkan scores (the edit-based features
/// are highly correlated with them, which violates the diagonal mixture
/// model's independence assumption). Shared by training and serving so
/// both see identical float pipelines.
std::vector<float> ZeroErSelectFeatures(std::span<const float> magellan_row);

struct ZeroErOptions {
  ml::GmmOptions gmm;
};

/// \brief Unsupervised EM-based matcher.
class ZeroErMatcher : public Matcher {
 public:
  explicit ZeroErMatcher(ZeroErOptions options = {}) : options_(options) {}

  std::string name() const override { return "ZeroER"; }
  std::vector<uint8_t> Run(const MatchingContext& context) override;

  /// Fit the mixture on all candidate pairs (transductive, as in the
  /// paper) and export it as a servable model.
  [[nodiscard]] Result<std::unique_ptr<TrainedModel>> TrainModel(
      const MatchingContext& context) override;

 private:
  ZeroErOptions options_;
};

}  // namespace rlbench::matchers

#endif  // RLBENCH_SRC_MATCHERS_ZEROER_H_
