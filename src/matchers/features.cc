#include "matchers/features.h"

#include <algorithm>

#include "common/check.h"
#include "text/kernels.h"
#include "text/similarity.h"

namespace rlbench::matchers {

namespace {

std::string_view Truncated(const std::string& value, size_t max_chars) {
  return std::string_view(value).substr(0, max_chars);
}

std::vector<std::string> CapTokens(const std::vector<std::string>& tokens,
                                   size_t max_tokens) {
  if (tokens.size() <= max_tokens) return tokens;
  return std::vector<std::string>(tokens.begin(), tokens.begin() + max_tokens);
}

}  // namespace

std::vector<float> MagellanFeatures(const data::RecordFeatureCache& left,
                                    const data::RecordFeatureCache& right,
                                    const data::LabeledPair& pair) {
  const data::Record& l = left.table().record(pair.left);
  const data::Record& r = right.table().record(pair.right);
  size_t num_attrs = left.table().schema().num_attributes();

  std::vector<float> features;
  features.reserve(num_attrs * kMagellanFeaturesPerAttr);
  for (size_t a = 0; a < num_attrs; ++a) {
    const std::string& lv = l.values[a];
    const std::string& rv = r.values[a];
    const auto& lset = left.TokenSetAttr(pair.left, a);
    const auto& rset = right.TokenSetAttr(pair.right, a);
    features.push_back(
        static_cast<float>(text::JaccardSimilarity(lset, rset)));
    features.push_back(static_cast<float>(text::LevenshteinSimilarity(
        Truncated(lv, kMaxCharsForEditSims), Truncated(rv, kMaxCharsForEditSims))));
    features.push_back(static_cast<float>(text::JaroWinklerSimilarity(
        Truncated(lv, kMaxCharsForEditSims), Truncated(rv, kMaxCharsForEditSims))));
    features.push_back(static_cast<float>(text::MongeElkanSimilarity(
        CapTokens(left.TokensAttr(pair.left, a), kMaxTokensForMongeElkan),
        CapTokens(right.TokensAttr(pair.right, a), kMaxTokensForMongeElkan))));
    features.push_back(static_cast<float>(text::NumericSimilarity(lv, rv)));
    features.push_back(static_cast<float>(text::ExactMatchSimilarity(lv, rv)));
  }
  return features;
}

void MagellanFeaturesColumnar(const data::ColumnarStore& store,
                              const data::LabeledPair& pair,
                              std::span<float> out) {
  namespace k = text::kernels;
  constexpr size_t kL = data::ColumnarStore::kLeft;
  constexpr size_t kR = data::ColumnarStore::kRight;
  size_t num_attrs = store.num_attrs();
  RLBENCH_DCHECK_EQ(out.size(), num_attrs * kMagellanFeaturesPerAttr);
  for (size_t a = 0; a < num_attrs; ++a) {
    std::string_view lv = store.Value(kL, pair.left, a);
    std::string_view rv = store.Value(kR, pair.right, a);
    std::string_view lt = lv.substr(0, std::min(lv.size(), kMaxCharsForEditSims));
    std::string_view rt = rv.substr(0, std::min(rv.size(), kMaxCharsForEditSims));
    auto seq_l = store.TokenSeqAttr(kL, pair.left, a);
    auto seq_r = store.TokenSeqAttr(kR, pair.right, a);
    float* f = out.data() + a * kMagellanFeaturesPerAttr;
    f[0] = static_cast<float>(
        k::JaccardSortedU32(store.TokenIdsAttr(kL, pair.left, a),
                            store.TokenIdsAttr(kR, pair.right, a)));
    f[1] = static_cast<float>(k::LevenshteinSimilarityBanded(lt, rt));
    f[2] = static_cast<float>(k::JaroWinklerKernel(lt, rt));
    f[3] = static_cast<float>(k::MongeElkanKernel(
        seq_l.first(std::min(seq_l.size(), kMaxTokensForMongeElkan)),
        seq_r.first(std::min(seq_r.size(), kMaxTokensForMongeElkan))));
    f[4] = static_cast<float>(k::NumericFromParsed(
        store.NumericOk(kL, pair.left, a), store.NumericValue(kL, pair.left, a),
        store.NumericOk(kR, pair.right, a),
        store.NumericValue(kR, pair.right, a)));
    f[5] = static_cast<float>(
        k::ExactMatchLowered(store.LoweredValue(kL, pair.left, a),
                             store.LoweredValue(kR, pair.right, a)));
  }
}

const char* EsdeVariantName(EsdeVariant variant) {
  switch (variant) {
    case EsdeVariant::kSchemaAgnostic:
      return "SA-ESDE";
    case EsdeVariant::kSchemaBased:
      return "SB-ESDE";
    case EsdeVariant::kSchemaAgnosticQgram:
      return "SAQ-ESDE";
    case EsdeVariant::kSchemaBasedQgram:
      return "SBQ-ESDE";
    case EsdeVariant::kSchemaAgnosticSent:
      return "SAS-ESDE";
    case EsdeVariant::kSchemaBasedSent:
      return "SBS-ESDE";
  }
  return "ESDE";
}

size_t EsdeFeatureCount(EsdeVariant variant, size_t num_attrs) {
  constexpr size_t kNumQ =
      data::RecordFeatureCache::kMaxQ - data::RecordFeatureCache::kMinQ + 1;
  switch (variant) {
    case EsdeVariant::kSchemaAgnostic:
    case EsdeVariant::kSchemaAgnosticSent:
      return 3;
    case EsdeVariant::kSchemaBased:
    case EsdeVariant::kSchemaBasedSent:
      return 3 * num_attrs;
    case EsdeVariant::kSchemaAgnosticQgram:
      return 3 * kNumQ;
    case EsdeVariant::kSchemaBasedQgram:
      return 3 * kNumQ * num_attrs;
  }
  return 0;
}

}  // namespace rlbench::matchers
