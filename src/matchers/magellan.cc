#include "matchers/magellan.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/parallel.h"
#include "matchers/features.h"
#include "ml/decision_tree.h"
#include "ml/linear_svm.h"
#include "ml/logistic_regression.h"
#include "ml/random_forest.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rlbench::matchers {

namespace {

// Chunk of candidate pairs per dispatch when scoring a served batch.
constexpr size_t kPairGrain = 256;

const char* ClassifierRowName(MagellanClassifier classifier) {
  switch (classifier) {
    case MagellanClassifier::kDecisionTree:
      return "Magellan-DT";
    case MagellanClassifier::kLogisticRegression:
      return "Magellan-LR";
    case MagellanClassifier::kRandomForest:
      return "Magellan-RF";
    case MagellanClassifier::kLinearSvm:
      return "Magellan-SVM";
  }
  return "Magellan";
}

std::unique_ptr<ml::Classifier> BuildClassifier(MagellanClassifier classifier,
                                                uint64_t seed) {
  switch (classifier) {
    case MagellanClassifier::kDecisionTree: {
      ml::DecisionTreeOptions options;
      options.seed = seed;
      return std::make_unique<ml::DecisionTree>(options);
    }
    case MagellanClassifier::kLogisticRegression: {
      ml::LogisticRegressionOptions options;
      options.seed = seed;
      return std::make_unique<ml::LogisticRegression>(options);
    }
    case MagellanClassifier::kRandomForest: {
      ml::RandomForestOptions options;
      options.seed = seed;
      return std::make_unique<ml::RandomForest>(options);
    }
    case MagellanClassifier::kLinearSvm: {
      ml::LinearSvmOptions options;
      options.seed = seed;
      return std::make_unique<ml::LinearSvm>(options);
    }
  }
  return nullptr;
}

/// \brief Snapshot form of a fitted Magellan classifier.
///
/// Scoring recomputes MagellanFeatures for the requested pairs through the
/// same ml::Dataset::BuildParallel fill that MatchingContext uses for its
/// cached feature datasets, so a served row carries the identical bits the
/// classifier saw during Run(). Decisions come from the classifier's own
/// Predict (the SVM thresholds its raw margin, not the sigmoid score).
class TrainedMagellanModel final : public TrainedModel {
 public:
  TrainedMagellanModel(MagellanClassifier classifier, uint64_t seed,
                       size_t num_attrs,
                       std::unique_ptr<ml::Classifier> model)
      : classifier_(classifier),
        seed_(seed),
        num_attrs_(num_attrs),
        model_(std::move(model)) {}

  TrainedModelKind kind() const override {
    return TrainedModelKind::kMagellan;
  }
  std::string matcher_name() const override {
    return ClassifierRowName(classifier_);
  }
  size_t num_attrs() const override { return num_attrs_; }
  const ml::Classifier& classifier() const { return *model_; }

  double ScorePair(const MatchingContext& context,
                   const data::LabeledPair& pair) const override {
    auto features = MagellanFeatures(context.left(), context.right(), pair);
    return model_->PredictScore(features);
  }

  Status ScoreBatch(const MatchingContext& context,
                    std::span<const data::LabeledPair> pairs,
                    std::span<double> scores,
                    std::span<uint8_t> decisions) const override {
    if (scores.size() != pairs.size() || decisions.size() != pairs.size()) {
      return Status::InvalidArgument(
          "ScoreBatch: output spans must match the pair count");
    }
    size_t dim = num_attrs_ * kMagellanFeaturesPerAttr;
    RLBENCH_ASSIGN_OR_RETURN(
        ml::Dataset rows,
        ml::Dataset::BuildParallel(
            dim, pairs.size(), [&](size_t i, std::span<float> row) {
              MagellanFeaturesColumnar(context.columnar(), pairs[i], row);
              return pairs[i].is_match;
            }));
    ParallelFor(0, pairs.size(), kPairGrain, [&](size_t i) {
      scores[i] = model_->PredictScore(rows.row(i));
      decisions[i] = model_->Predict(rows.row(i)) ? 1 : 0;
    });
    return Status::OK();
  }

  void SerializePayload(BlobWriter* writer) const override {
    writer->WriteU8(static_cast<uint8_t>(classifier_));
    writer->WriteU64(seed_);
    writer->WriteU64(num_attrs_);
    switch (classifier_) {
      case MagellanClassifier::kDecisionTree:
        static_cast<const ml::DecisionTree&>(*model_).Save(writer);
        break;
      case MagellanClassifier::kLogisticRegression:
        static_cast<const ml::LogisticRegression&>(*model_).Save(writer);
        break;
      case MagellanClassifier::kRandomForest:
        static_cast<const ml::RandomForest&>(*model_).Save(writer);
        break;
      case MagellanClassifier::kLinearSvm:
        static_cast<const ml::LinearSvm&>(*model_).Save(writer);
        break;
    }
  }

 private:
  MagellanClassifier classifier_;
  uint64_t seed_;
  size_t num_attrs_;
  std::unique_ptr<ml::Classifier> model_;
};

}  // namespace

std::string MagellanMatcher::name() const {
  return ClassifierRowName(classifier_);
}

Result<std::unique_ptr<TrainedModel>> MagellanMatcher::TrainModel(
    const MatchingContext& context) {
  auto model = BuildClassifier(classifier_, options_.seed);
  RLBENCH_COUNTER_INC("matchers/magellan/runs");
  {
    RLBENCH_TRACE_SPAN("magellan/fit");
    model->Fit(context.MagellanTrain(), context.MagellanValid());
  }
  size_t num_attrs = context.task().left().schema().num_attributes();
  return std::unique_ptr<TrainedModel>(std::make_unique<TrainedMagellanModel>(
      classifier_, options_.seed, num_attrs, std::move(model)));
}

std::vector<uint8_t> MagellanMatcher::Run(const MatchingContext& context) {
  auto model = TrainModel(context);
  RLBENCH_CHECK(model.ok());
  RLBENCH_TRACE_SPAN("magellan/predict");
  // The context's cached test-feature dataset carries the same bits a
  // served batch recomputes; predicting it directly skips one extraction.
  const auto& trained = static_cast<const TrainedMagellanModel&>(**model);
  return trained.classifier().PredictAll(context.MagellanTest());
}

Result<std::unique_ptr<TrainedModel>> DeserializeMagellanModel(
    BlobReader* reader) {
  RLBENCH_ASSIGN_OR_RETURN(uint8_t classifier_tag, reader->ReadU8());
  if (classifier_tag > static_cast<uint8_t>(MagellanClassifier::kLinearSvm)) {
    return Status::IOError("magellan model: unknown classifier tag");
  }
  auto classifier = static_cast<MagellanClassifier>(classifier_tag);
  RLBENCH_ASSIGN_OR_RETURN(uint64_t seed, reader->ReadU64());
  RLBENCH_ASSIGN_OR_RETURN(uint64_t num_attrs, reader->ReadU64());
  if (num_attrs == 0 || num_attrs > (1U << 16)) {
    return Status::IOError("magellan model: implausible attribute count");
  }
  size_t num_features =
      static_cast<size_t>(num_attrs) * kMagellanFeaturesPerAttr;
  std::unique_ptr<ml::Classifier> model;
  switch (classifier) {
    case MagellanClassifier::kDecisionTree: {
      auto tree = std::make_unique<ml::DecisionTree>();
      RLBENCH_RETURN_NOT_OK(tree->Load(reader, num_features));
      model = std::move(tree);
      break;
    }
    case MagellanClassifier::kLogisticRegression: {
      auto lr = std::make_unique<ml::LogisticRegression>();
      RLBENCH_RETURN_NOT_OK(lr->Load(reader, num_features));
      model = std::move(lr);
      break;
    }
    case MagellanClassifier::kRandomForest: {
      auto forest = std::make_unique<ml::RandomForest>();
      RLBENCH_RETURN_NOT_OK(forest->Load(reader, num_features));
      model = std::move(forest);
      break;
    }
    case MagellanClassifier::kLinearSvm: {
      auto svm = std::make_unique<ml::LinearSvm>();
      RLBENCH_RETURN_NOT_OK(svm->Load(reader, num_features));
      model = std::move(svm);
      break;
    }
  }
  return std::unique_ptr<TrainedModel>(std::make_unique<TrainedMagellanModel>(
      classifier, seed, static_cast<size_t>(num_attrs), std::move(model)));
}

}  // namespace rlbench::matchers
