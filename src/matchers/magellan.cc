#include "matchers/magellan.h"

#include <memory>

#include "ml/decision_tree.h"
#include "ml/linear_svm.h"
#include "ml/logistic_regression.h"
#include "ml/random_forest.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rlbench::matchers {

std::string MagellanMatcher::name() const {
  switch (classifier_) {
    case MagellanClassifier::kDecisionTree:
      return "Magellan-DT";
    case MagellanClassifier::kLogisticRegression:
      return "Magellan-LR";
    case MagellanClassifier::kRandomForest:
      return "Magellan-RF";
    case MagellanClassifier::kLinearSvm:
      return "Magellan-SVM";
  }
  return "Magellan";
}

std::vector<uint8_t> MagellanMatcher::Run(const MatchingContext& context) {
  std::unique_ptr<ml::Classifier> model;
  switch (classifier_) {
    case MagellanClassifier::kDecisionTree: {
      ml::DecisionTreeOptions options;
      options.seed = options_.seed;
      model = std::make_unique<ml::DecisionTree>(options);
      break;
    }
    case MagellanClassifier::kLogisticRegression: {
      ml::LogisticRegressionOptions options;
      options.seed = options_.seed;
      model = std::make_unique<ml::LogisticRegression>(options);
      break;
    }
    case MagellanClassifier::kRandomForest: {
      ml::RandomForestOptions options;
      options.seed = options_.seed;
      model = std::make_unique<ml::RandomForest>(options);
      break;
    }
    case MagellanClassifier::kLinearSvm: {
      ml::LinearSvmOptions options;
      options.seed = options_.seed;
      model = std::make_unique<ml::LinearSvm>(options);
      break;
    }
  }
  RLBENCH_COUNTER_INC("matchers/magellan/runs");
  {
    RLBENCH_TRACE_SPAN("magellan/fit");
    model->Fit(context.MagellanTrain(), context.MagellanValid());
  }
  RLBENCH_TRACE_SPAN("magellan/predict");
  return model->PredictAll(context.MagellanTest());
}

}  // namespace rlbench::matchers
