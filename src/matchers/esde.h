// Efficient Supervised Difficulty Estimation (ESDE), Algorithm 2 of the
// paper: the family of linear matchers that anchor the non-linear boost
// measure. Training picks the best (feature, threshold) per feature on the
// training set, validation selects the single best feature, and testing
// applies that one feature with its threshold.
#ifndef RLBENCH_SRC_MATCHERS_ESDE_H_
#define RLBENCH_SRC_MATCHERS_ESDE_H_

#include <cstdint>
#include <span>
#include <utility>

#include "data/columnar.h"
#include "embed/sentence_encoder.h"
#include "matchers/features.h"
#include "matchers/matcher.h"

namespace rlbench::matchers {

struct EsdeOptions {
  /// Embedding dimensionality for the sentence-encoder variants.
  size_t sentence_dim = 64;
  uint64_t seed = 7;
  /// Characters of text fed to the q-gram variants per value (bounds the
  /// q-gram set size on long-text datasets; mirrors transformer caps).
  size_t qgram_char_cap = 160;
};

/// \brief One of the six ESDE variants.
class EsdeMatcher : public Matcher {
 public:
  explicit EsdeMatcher(EsdeVariant variant, EsdeOptions options = {});

  std::string name() const override { return EsdeVariantName(variant_); }
  std::vector<uint8_t> Run(const MatchingContext& context) override;

  /// Train threshold + feature selection and export the fitted rule as a
  /// servable model. Run() == TrainModel() + applying the rule to the test
  /// pairs; the serve tests pin the bit-exact equivalence.
  [[nodiscard]] Result<std::unique_ptr<TrainedModel>> TrainModel(
      const MatchingContext& context) override;

  /// Diagnostics after Run: the selected feature index, its threshold, and
  /// the validation F1 that selected it.
  int best_feature() const { return best_feature_; }
  double best_threshold() const { return best_threshold_; }
  double best_valid_f1() const { return best_valid_f1_; }

 private:
  /// Full feature vector of one pair under this variant.
  std::vector<double> Features(const MatchingContext& context,
                               const data::LabeledPair& pair);
  /// Only the selected feature (testing phase of Algorithm 2).
  double SingleFeature(const MatchingContext& context,
                       const data::LabeledPair& pair, int feature);

  /// Embedding of one record under the packed cache: (row, sorted row)
  /// views for the vectorized similarity kernels. WarmCaches must have
  /// filled the pack for this variant first.
  std::pair<std::span<const float>, std::span<const float>> RecordSpans(
      bool left_side, uint32_t record, int attr) const;

  /// Warm-up half of the two-phase cache contract: bulk-fill every slot
  /// this variant reads (token sets, q-gram sets, or record vectors) so
  /// the batch loops in Run() can read the frozen caches concurrently.
  void WarmCaches(const MatchingContext& context);

  /// Encode every record vector of the SAS/SBS variants into vec_pack_.
  void WarmSentenceVectors(const MatchingContext& context);

  EsdeVariant variant_;
  EsdeOptions options_;
  embed::SentenceEncoder encoder_;
  // Packed row-major embeddings, slot [side * (num_attrs + 1) + attr + 1];
  // slot offset 0 is the schema-agnostic whole-record embedding. Each
  // matrix carries a coordinate-sorted shadow for the Wasserstein kernel.
  std::vector<data::PackedMatrix> vec_pack_;
  size_t vec_slots_per_side_ = 0;
  int best_feature_ = -1;
  double best_threshold_ = 0.0;
  double best_valid_f1_ = 0.0;
};

}  // namespace rlbench::matchers

#endif  // RLBENCH_SRC_MATCHERS_ESDE_H_
