// EnsembleLink: a training-free matcher that ensembles the repo's
// similarity signal families with rank-aggregated voting (EnsembleLink,
// arXiv 2601.21138). Nine signals are computed per pair — cosine / dice /
// Jaccard over all tokens (the SA-ESDE family, via the columnar merge-scan
// kernels) plus the six Magellan per-attribute families (attr-Jaccard,
// Levenshtein, Jaro-Winkler, Monge-Elkan, numeric, exact) averaged across
// attributes. Each signal casts a vote (sim >= its threshold) weighted by
// Borda points from a fixed reliability ranking of the families, and the
// score is the weighted vote share. No labels are read anywhere: the
// fitted "model" is just this configuration, which makes the snapshot
// round-trip exact by construction and the matcher an always-available
// zero-shot retrain/fallback arm for the drift loop (src/drift/).
//
// Classical rank aggregation ranks candidates within a batch; serving
// requires each pair's score to be a pure function of (model, context,
// pair), so the batch-level ranking is replaced by the per-pair Borda
// vote share — deterministic at any thread count and batch split.
#ifndef RLBENCH_SRC_MATCHERS_ENSEMBLE_LINK_H_
#define RLBENCH_SRC_MATCHERS_ENSEMBLE_LINK_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "matchers/matcher.h"

namespace rlbench::matchers {

/// Number of signal families in the ensemble, in serialization order:
/// [cosine-all, dice-all, jaccard-all, attr-jaccard, levenshtein,
/// jaro-winkler, monge-elkan, numeric, exact].
inline constexpr size_t kEnsembleSignals = 9;

struct EnsembleLinkOptions {
  /// Weighted vote share at or above which a pair is declared a match.
  double vote_fraction = 0.5;
  /// Per-signal vote thresholds: signal s votes when sim_s >= thresholds[s].
  std::array<double, kEnsembleSignals> thresholds = {0.5, 0.5, 0.5, 0.5, 0.5,
                                                     0.5, 0.5, 0.5, 0.5};
  /// Borda weights from the fixed reliability ranking of the families
  /// (whole-record token-set sims first, edit sims next, numeric last).
  std::array<double, kEnsembleSignals> weights = {8.0, 7.0, 9.0, 6.0, 3.0,
                                                  5.0, 4.0, 1.0, 2.0};
  /// Carried in the snapshot for config completeness; the ensemble itself
  /// draws no random numbers.
  uint64_t seed = 0x2E17;
};

/// \brief The training-free zero-shot row of the matcher lineup.
class EnsembleLinkMatcher final : public Matcher {
 public:
  explicit EnsembleLinkMatcher(EnsembleLinkOptions options = {});

  std::string name() const override { return "EnsembleLink"; }
  std::vector<uint8_t> Run(const MatchingContext& context) override;

  /// Export the ensemble configuration as a servable model. Training-free:
  /// no train/valid pair is ever read, so the exported model is identical
  /// for any labeling of the context.
  [[nodiscard]] Result<std::unique_ptr<TrainedModel>> TrainModel(
      const MatchingContext& context) override;

 private:
  EnsembleLinkOptions options_;
};

}  // namespace rlbench::matchers

#endif  // RLBENCH_SRC_MATCHERS_ENSEMBLE_LINK_H_
