#include "matchers/trained_model.h"

#include <string>

#include "common/parallel.h"

namespace rlbench::matchers {

namespace {
// Chunk of pairs per dispatch when scoring a batch; matches the matchers'
// own extraction grain so serve-path chunking stays deterministic.
constexpr size_t kPairGrain = 256;
}  // namespace

Status TrainedModel::ScoreBatch(const MatchingContext& context,
                                std::span<const data::LabeledPair> pairs,
                                std::span<double> scores,
                                std::span<uint8_t> decisions) const {
  if (scores.size() != pairs.size() || decisions.size() != pairs.size()) {
    return Status::InvalidArgument(
        "ScoreBatch: output spans must match the pair count");
  }
  ParallelFor(0, pairs.size(), kPairGrain, [&](size_t i) {
    double score = ScorePair(context, pairs[i]);
    scores[i] = score;
    decisions[i] = DecideFromScore(score) ? 1 : 0;
  });
  return Status::OK();
}

void TrainedModel::PrepareContext(const MatchingContext& context) const {
  // A frozen context is already prepared (serving freezes once per
  // installed snapshot and keeps the caches frozen for its lifetime).
  if (context.left().frozen() && context.right().frozen()) return;
  context.left().WarmTokens();
  context.right().WarmTokens();
  context.left().Freeze();
  context.right().Freeze();
}

void SerializeTrainedModel(const TrainedModel& model, BlobWriter* writer) {
  writer->WriteU8(static_cast<uint8_t>(model.kind()));
  model.SerializePayload(writer);
}

Result<std::unique_ptr<TrainedModel>> DeserializeTrainedModel(
    BlobReader* reader) {
  RLBENCH_ASSIGN_OR_RETURN(uint8_t tag, reader->ReadU8());
  switch (static_cast<TrainedModelKind>(tag)) {
    case TrainedModelKind::kEsde:
      return DeserializeEsdeModel(reader);
    case TrainedModelKind::kMagellan:
      return DeserializeMagellanModel(reader);
    case TrainedModelKind::kZeroEr:
      return DeserializeZeroErModel(reader);
    case TrainedModelKind::kEnsembleLink:
      return DeserializeEnsembleLinkModel(reader);
  }
  return Status::InvalidArgument("trained model: unknown kind tag " +
                                 std::to_string(static_cast<int>(tag)));
}

}  // namespace rlbench::matchers
