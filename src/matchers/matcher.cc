#include "matchers/matcher.h"

#include "ml/metrics.h"

namespace rlbench::matchers {

Result<std::unique_ptr<TrainedModel>> Matcher::TrainModel(
    const MatchingContext& context) {
  (void)context;
  return Status::FailedPrecondition(name() +
                                    " does not support snapshot export");
}

double Matcher::TestF1(const MatchingContext& context) {
  auto predictions = Run(context);
  std::vector<uint8_t> truth;
  truth.reserve(context.task().test().size());
  for (const auto& pair : context.task().test()) {
    truth.push_back(pair.is_match ? 1 : 0);
  }
  return ml::Evaluate(truth, predictions).F1();
}

}  // namespace rlbench::matchers
