// Builds the matcher line-ups used by the evaluation tables: the DL group
// with its two epoch settings, the Magellan group, ZeroER, the six linear
// ESDE matchers — the exact row set of Tables IV and VI — plus the
// training-free EnsembleLink as an extra zero-shot section.
#ifndef RLBENCH_SRC_MATCHERS_REGISTRY_H_
#define RLBENCH_SRC_MATCHERS_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "matchers/matcher.h"

namespace rlbench::matchers {

/// Which matcher families (table sections) to instantiate.
struct RegistryOptions {
  bool dl = true;        // section (a): DL-based matchers, 2 epoch settings
  bool classic = true;   // section (b): Magellan x4 + ZeroER
  bool linear = true;    // section (c): the 6 ESDE variants
  bool zero_shot = true; // section (d): training-free EnsembleLink
  /// Epoch budget scale for quick runs (1.0 = the paper's settings).
  double epoch_scale = 1.0;
  uint64_t seed = 17;
};

/// The section a matcher belongs to, for table grouping and the practical
/// measures: NLB contrasts kNonLinear (a+b) with kLinear (c). kZeroShot
/// rows (trained on no labels at all) are reported alongside but excluded
/// from the learning-based practical measures — see core/practical.h.
enum class MatcherGroup { kDeepLearning, kClassicMl, kLinear, kZeroShot };

struct RegisteredMatcher {
  std::unique_ptr<Matcher> matcher;
  MatcherGroup group;
};

/// Instantiate the full line-up.
std::vector<RegisteredMatcher> BuildMatcherLineup(
    const RegistryOptions& options = {});

/// Row names of the matchers that can be trained into servable snapshot
/// models (src/serve/): the Magellan group, ZeroER, the six ESDE
/// variants, and the training-free EnsembleLink. The simulated DL
/// matchers have no portable fitted state.
std::vector<std::string> ServableMatcherNames();

/// Construct the named servable matcher with the same per-family seed
/// derivation as BuildMatcherLineup (so a served model reproduces the
/// table row bit-for-bit) and train it on the context. NotFound for names
/// outside ServableMatcherNames().
[[nodiscard]] Result<std::unique_ptr<TrainedModel>> TrainServableMatcher(
    const std::string& name, const MatchingContext& context,
    uint64_t seed = 17);

}  // namespace rlbench::matchers

#endif  // RLBENCH_SRC_MATCHERS_REGISTRY_H_
