#include "matchers/context.h"

#include <algorithm>

#include "common/check.h"
#include "matchers/features.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rlbench::matchers {

MatchingContext::MatchingContext(const data::MatchingTask* task)
    : task_(task), left_(&task->left()), right_(&task->right()) {
  RLBENCH_TRACE_SPAN("context/build");
  // Tokenisation dominates construction; warm it in parallel (disjoint
  // per-record slots), then feed the corpus model serially so document
  // order — and the resulting IDF table — stays exactly as before.
  {
    RLBENCH_TRACE_SPAN("context/warm_tokens");
    left_.WarmTokens();
    right_.WarmTokens();
  }
  // Token columns are shared by every batch extractor below; q-gram pools
  // are built on demand (EnsureQGrams) by the variants that need them.
  columnar_.emplace(left_, right_);
  RLBENCH_TRACE_SPAN("context/tfidf");
  for (size_t i = 0; i < task->left().size(); ++i) {
    tfidf_.AddDocument(left_.Tokens(i));
  }
  for (size_t i = 0; i < task->right().size(); ++i) {
    tfidf_.AddDocument(right_.Tokens(i));
  }
  tfidf_.Finalize();
}

void MatchingContext::EnsureMagellan() const {
  if (magellan_train_) return;
  RLBENCH_TRACE_SPAN("context/magellan_features");
  size_t dim = task_->left().schema().num_attributes() *
               kMagellanFeaturesPerAttr;
  // Two-phase cache contract: the constructor warmed every token-derived
  // slot MagellanFeatures reads, so the caches can be frozen and read
  // concurrently while rows are extracted in parallel.
  left_.Freeze();
  right_.Freeze();
  auto build = [&](const std::vector<data::LabeledPair>& pairs) {
    // dim > 0 is an invariant here: every task reaching a matcher went
    // through schema validation (>= 1 attribute) at build or import time.
    // Rows are extracted through the columnar kernels (bit-identical to
    // the row-oriented MagellanFeatures — the differential tests pin it)
    // straight into the dataset row, with no per-pair allocation.
    auto dataset = ml::Dataset::BuildParallel(
        dim, pairs.size(), [&](size_t i, std::span<float> row) {
          MagellanFeaturesColumnar(*columnar_, pairs[i], row);
          return pairs[i].is_match;
        });
    RLBENCH_CHECK(dataset.ok());
    return std::move(dataset).value();
  };
  magellan_train_ = build(task_->train());
  magellan_valid_ = build(task_->valid());
  magellan_test_ = build(task_->test());
  RLBENCH_COUNTER_ADD("matchers/magellan/feature_rows",
                      task_->train().size() + task_->valid().size() +
                          task_->test().size());
  // Later consumers (the q-gram ESDE variants) still fill q-gram slots
  // lazily from serial code, so return the caches to the warm-up phase.
  left_.Thaw();
  right_.Thaw();
}

const ml::Dataset& MatchingContext::MagellanTrain() const {
  EnsureMagellan();
  return *magellan_train_;
}

const ml::Dataset& MatchingContext::MagellanValid() const {
  EnsureMagellan();
  return *magellan_valid_;
}

const ml::Dataset& MatchingContext::MagellanTest() const {
  EnsureMagellan();
  return *magellan_test_;
}

}  // namespace rlbench::matchers
