#include "matchers/context.h"

#include "matchers/features.h"

namespace rlbench::matchers {

MatchingContext::MatchingContext(const data::MatchingTask* task)
    : task_(task), left_(&task->left()), right_(&task->right()) {
  for (size_t i = 0; i < task->left().size(); ++i) {
    tfidf_.AddDocument(left_.Tokens(i));
  }
  for (size_t i = 0; i < task->right().size(); ++i) {
    tfidf_.AddDocument(right_.Tokens(i));
  }
  tfidf_.Finalize();
}

void MatchingContext::EnsureMagellan() const {
  if (magellan_train_) return;
  size_t dim = task_->left().schema().num_attributes() *
               kMagellanFeaturesPerAttr;
  auto build = [&](const std::vector<data::LabeledPair>& pairs) {
    ml::Dataset dataset(dim);
    dataset.Reserve(pairs.size());
    for (const auto& pair : pairs) {
      dataset.Add(MagellanFeatures(left_, right_, pair), pair.is_match);
    }
    return dataset;
  };
  magellan_train_ = build(task_->train());
  magellan_valid_ = build(task_->valid());
  magellan_test_ = build(task_->test());
}

const ml::Dataset& MatchingContext::MagellanTrain() const {
  EnsureMagellan();
  return *magellan_train_;
}

const ml::Dataset& MatchingContext::MagellanValid() const {
  EnsureMagellan();
  return *magellan_valid_;
}

const ml::Dataset& MatchingContext::MagellanTest() const {
  EnsureMagellan();
  return *magellan_test_;
}

}  // namespace rlbench::matchers
