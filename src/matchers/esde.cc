#include "matchers/esde.h"

#include <algorithm>

#include "common/parallel.h"
#include "ml/metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/kernels.h"
#include "text/similarity.h"

namespace rlbench::matchers {

namespace {

constexpr int kMinQ = data::RecordFeatureCache::kMinQ;
constexpr int kMaxQ = data::RecordFeatureCache::kMaxQ;
constexpr int kNumQ = kMaxQ - kMinQ + 1;

// Chunk of candidate pairs per dispatch in the batch-extraction loops.
constexpr size_t kPairGrain = 256;

// Scalar-reference fallback: used only when the columnar q-gram pools are
// not built (single-pair serve scoring on a cold context). The batch paths
// go through the SetSims overload below, which computes the same triple
// bit-exactly from ONE merge scan instead of three.
void PushSetSims(const text::TokenSet& a, const text::TokenSet& b,
                 std::vector<double>* out) {
  out->push_back(text::CosineSimilarity(a, b));
  out->push_back(text::DiceSimilarity(a, b));
  out->push_back(text::JaccardSimilarity(a, b));
}

void PushSetSims(text::kernels::SetSims sims, std::vector<double>* out) {
  out->push_back(sims.cosine);
  out->push_back(sims.dice);
  out->push_back(sims.jaccard);
}

// (vec, sorted-vec) pairs feed the span kernels; the Wasserstein sort is
// hoisted out of the pair loop into the record-level caches.
void PushVecSims(std::span<const float> a, std::span<const float> b,
                 std::span<const float> sorted_a,
                 std::span<const float> sorted_b, std::vector<double>* out) {
  out->push_back(text::kernels::CosineSimilarity01Span(a, b));
  out->push_back(text::kernels::EuclideanSimilaritySpan(a, b));
  out->push_back(text::kernels::WassersteinFromSorted(sorted_a, sorted_b));
}

// Feature extraction shared by the live matcher (cached record vectors)
// and its trained snapshot form (stateless re-encoding). There is exactly
// one copy of the feature definitions, parameterised on the record-vector
// provider, which is what makes the two paths bit-identical — the
// sentence encoder is pure, so a cached vector and a re-encoded one carry
// the same bits.
template <typename VecProvider>
std::vector<double> EsdeFeaturesWith(const MatchingContext& context,
                                     EsdeVariant variant,
                                     const data::LabeledPair& pair,
                                     VecProvider&& vec) {
  namespace k = text::kernels;
  constexpr size_t kL = data::ColumnarStore::kLeft;
  constexpr size_t kR = data::ColumnarStore::kRight;
  const auto& left = context.left();
  const auto& right = context.right();
  const data::ColumnarStore& store = context.columnar();
  size_t num_attrs = context.task().left().schema().num_attributes();
  std::vector<double> features;
  switch (variant) {
    case EsdeVariant::kSchemaAgnostic:
      PushSetSims(k::SetFamilySortedU32(store.TokenIdsAll(kL, pair.left),
                                        store.TokenIdsAll(kR, pair.right)),
                  &features);
      break;
    case EsdeVariant::kSchemaBased:
      for (size_t a = 0; a < num_attrs; ++a) {
        PushSetSims(
            k::SetFamilySortedU32(store.TokenIdsAttr(kL, pair.left, a),
                                  store.TokenIdsAttr(kR, pair.right, a)),
            &features);
      }
      break;
    case EsdeVariant::kSchemaAgnosticQgram:
      for (int q = kMinQ; q <= kMaxQ; ++q) {
        if (store.qgrams_built()) {
          PushSetSims(k::SetFamilySortedU64(store.QGramAll(kL, pair.left, q),
                                            store.QGramAll(kR, pair.right, q)),
                      &features);
        } else {
          PushSetSims(left.QGramSetAll(pair.left, q),
                      right.QGramSetAll(pair.right, q), &features);
        }
      }
      break;
    case EsdeVariant::kSchemaBasedQgram:
      for (size_t a = 0; a < num_attrs; ++a) {
        for (int q = kMinQ; q <= kMaxQ; ++q) {
          if (store.qgrams_built()) {
            PushSetSims(
                k::SetFamilySortedU64(store.QGramAttr(kL, pair.left, a, q),
                                      store.QGramAttr(kR, pair.right, a, q)),
                &features);
          } else {
            PushSetSims(left.QGramSetAttr(pair.left, a, q),
                        right.QGramSetAttr(pair.right, a, q), &features);
          }
        }
      }
      break;
    case EsdeVariant::kSchemaAgnosticSent: {
      auto l = vec(true, pair.left, -1);
      auto r = vec(false, pair.right, -1);
      PushVecSims(l.first, r.first, l.second, r.second, &features);
      break;
    }
    case EsdeVariant::kSchemaBasedSent:
      for (size_t a = 0; a < num_attrs; ++a) {
        auto l = vec(true, pair.left, static_cast<int>(a));
        auto r = vec(false, pair.right, static_cast<int>(a));
        PushVecSims(l.first, r.first, l.second, r.second, &features);
      }
      break;
  }
  return features;
}

/// \brief Snapshot form of a trained ESDE rule: the variant, the encoder
/// configuration, and the selected (feature, threshold) pair.
///
/// Unlike the live matcher it holds no per-record vector cache — the
/// sentence variants re-encode on demand, which is deterministic and keeps
/// the model immutable (safe for concurrent ScoreBatch).
class TrainedEsdeModel final : public TrainedModel {
 public:
  TrainedEsdeModel(EsdeVariant variant, EsdeOptions options, size_t num_attrs,
                   int best_feature, double best_threshold,
                   double best_valid_f1)
      : variant_(variant),
        options_(options),
        encoder_(options.sentence_dim, options.seed),
        num_attrs_(num_attrs),
        best_feature_(best_feature),
        best_threshold_(best_threshold),
        best_valid_f1_(best_valid_f1) {}

  TrainedModelKind kind() const override { return TrainedModelKind::kEsde; }
  std::string matcher_name() const override {
    return EsdeVariantName(variant_);
  }
  size_t num_attrs() const override { return num_attrs_; }
  double decision_threshold() const override { return best_threshold_; }
  bool DecideFromScore(double score) const override {
    // Same comparison orientation as the testing phase of Algorithm 2.
    return best_threshold_ <= score;
  }

  double ScorePair(const MatchingContext& context,
                   const data::LabeledPair& pair) const override {
    // The lambda returns an owned (vec, sorted-vec) pair; EsdeFeaturesWith
    // keeps it alive across the span kernels.
    auto features = EsdeFeaturesWith(
        context, variant_, pair, [&](bool left_side, uint32_t record,
                                     int attr) {
          return EncodeRecord(context, left_side, record, attr);
        });
    return features[static_cast<size_t>(best_feature_)];
  }

  void PrepareContext(const MatchingContext& context) const override {
    if (context.left().frozen() && context.right().frozen()) return;
    switch (variant_) {
      case EsdeVariant::kSchemaAgnostic:
      case EsdeVariant::kSchemaBased:
        context.left().WarmTokens();
        context.right().WarmTokens();
        break;
      case EsdeVariant::kSchemaAgnosticQgram:
      case EsdeVariant::kSchemaBasedQgram:
        context.left().WarmQGrams();
        context.right().WarmQGrams();
        // Batch scoring reads the contiguous pools; single-pair scoring on
        // a store without pools falls back to the row caches warmed above.
        context.columnar().EnsureQGrams();
        break;
      case EsdeVariant::kSchemaAgnosticSent:
      case EsdeVariant::kSchemaBasedSent:
        // Sentence features read raw record text, not the caches.
        break;
    }
    context.left().Freeze();
    context.right().Freeze();
  }

  void SerializePayload(BlobWriter* writer) const override {
    writer->WriteU8(static_cast<uint8_t>(variant_));
    writer->WriteU64(options_.sentence_dim);
    writer->WriteU64(options_.seed);
    writer->WriteU64(options_.qgram_char_cap);
    writer->WriteU64(num_attrs_);
    writer->WriteI32(best_feature_);
    writer->WriteDouble(best_threshold_);
    writer->WriteDouble(best_valid_f1_);
  }

 private:
  std::pair<embed::Vec, embed::Vec> EncodeRecord(const MatchingContext& context,
                                                 bool left_side,
                                                 uint32_t record,
                                                 int attr) const {
    const data::Table& table =
        left_side ? context.task().left() : context.task().right();
    const std::string text =
        attr < 0 ? table.record(record).ConcatenatedValues()
                 : table.record(record).values[static_cast<size_t>(attr)];
    embed::Vec vec = encoder_.Encode(text);
    // Same empty-text fallback as the live matcher's packed cache.
    if (vec.empty()) vec.assign(encoder_.dim(), 0.0F);
    // Sorted copy for the Wasserstein kernel: same bits as the packed
    // cache's sorted shadow, so live and snapshot scoring stay identical.
    embed::Vec sorted = vec;
    std::sort(sorted.begin(), sorted.end());
    return {std::move(vec), std::move(sorted)};
  }

  EsdeVariant variant_;
  EsdeOptions options_;
  embed::SentenceEncoder encoder_;
  size_t num_attrs_;
  int best_feature_;
  double best_threshold_;
  double best_valid_f1_;
};

}  // namespace

EsdeMatcher::EsdeMatcher(EsdeVariant variant, EsdeOptions options)
    : variant_(variant),
      options_(options),
      encoder_(options.sentence_dim, options.seed) {}

void EsdeMatcher::WarmSentenceVectors(const MatchingContext& context) {
  size_t num_attrs = context.task().left().schema().num_attributes();
  vec_slots_per_side_ = num_attrs + 1;
  vec_pack_.resize(2 * vec_slots_per_side_);
  std::vector<int> attrs;
  if (variant_ == EsdeVariant::kSchemaAgnosticSent) {
    attrs.push_back(-1);
  } else {
    for (size_t a = 0; a < num_attrs; ++a) attrs.push_back(static_cast<int>(a));
  }
  for (bool left_side : {true, false}) {
    const data::Table& table =
        left_side ? context.task().left() : context.task().right();
    size_t side = left_side ? 0 : 1;
    for (int attr : attrs) {
      data::PackedMatrix& pack =
          vec_pack_[side * vec_slots_per_side_ + static_cast<size_t>(attr + 1)];
      pack.Reset(table.size(), encoder_.dim());
      ParallelFor(0, table.size(), 64, [&](size_t r) {
        const std::string text =
            attr < 0 ? table.record(r).ConcatenatedValues()
                     : table.record(r).values[static_cast<size_t>(attr)];
        embed::Vec vec = encoder_.Encode(text);
        // Empty text encodes to the zero vector, which is what Reset
        // zero-filled the row with already.
        if (!vec.empty()) {
          auto row = pack.mutable_row(r);
          std::copy(vec.begin(), vec.end(), row.begin());
        }
      });
      pack.BuildSortedRows();
    }
  }
}

std::pair<std::span<const float>, std::span<const float>>
EsdeMatcher::RecordSpans(bool left_side, uint32_t record, int attr) const {
  size_t side = left_side ? 0 : 1;
  const data::PackedMatrix& pack =
      vec_pack_[side * vec_slots_per_side_ + static_cast<size_t>(attr + 1)];
  // WarmCaches fills the pack for every record this variant reads; an
  // empty matrix here means the two-phase contract was violated.
  RLBENCH_DCHECK(!pack.empty());
  return {pack.row(record), pack.sorted_row(record)};
}

std::vector<double> EsdeMatcher::Features(const MatchingContext& context,
                                          const data::LabeledPair& pair) {
  return EsdeFeaturesWith(context, variant_, pair,
                          [&](bool left_side, uint32_t record, int attr) {
                            return RecordSpans(left_side, record, attr);
                          });
}

double EsdeMatcher::SingleFeature(const MatchingContext& context,
                                  const data::LabeledPair& pair, int feature) {
  // For the set-similarity variants, computing the full (cheap) vector and
  // indexing keeps the code simple; the expensive caches are shared anyway.
  return Features(context, pair)[feature];
}

void EsdeMatcher::WarmCaches(const MatchingContext& context) {
  RLBENCH_TRACE_SPAN("esde/warm");
  switch (variant_) {
    case EsdeVariant::kSchemaAgnostic:
    case EsdeVariant::kSchemaBased:
      // Token slots were warmed by the MatchingContext constructor; the
      // idempotent re-warm only scans for (absent) gaps.
      context.left().WarmTokens();
      context.right().WarmTokens();
      break;
    case EsdeVariant::kSchemaAgnosticQgram:
    case EsdeVariant::kSchemaBasedQgram:
      context.left().WarmQGrams();
      context.right().WarmQGrams();
      // Contiguous sorted q-gram pools for the merge-scan kernels.
      context.columnar().EnsureQGrams();
      break;
    case EsdeVariant::kSchemaAgnosticSent:
    case EsdeVariant::kSchemaBasedSent:
      // Pre-encode every record vector the variant reads into the packed
      // matrices; afterwards the batch loops only read immutable rows.
      WarmSentenceVectors(context);
      break;
  }
}

Result<std::unique_ptr<TrainedModel>> EsdeMatcher::TrainModel(
    const MatchingContext& context) {
  const auto& task = context.task();
  size_t num_attrs = task.left().schema().num_attributes();
  size_t dim = EsdeFeatureCount(variant_, num_attrs);

  // Two-phase cache contract: bulk-fill everything this variant reads,
  // then freeze both record caches so the batch loops below may extract
  // features concurrently (rows are index-addressed — identical results
  // at any thread count).
  WarmCaches(context);
  context.left().Freeze();
  context.right().Freeze();

  // --- Training phase: best threshold per feature on the training set.
  const auto& train = task.train();
  std::vector<std::vector<double>> train_rows(train.size());
  std::vector<double> thresholds(dim, 0.5);
  {
    RLBENCH_TRACE_SPAN("esde/train");
    RLBENCH_COUNTER_ADD("matchers/esde/pairs_featurized", train.size());
    ParallelFor(0, train.size(), kPairGrain, [&](size_t i) {
      train_rows[i] = Features(context, train[i]);
    });
    std::vector<uint8_t> train_labels(train.size());
    for (size_t i = 0; i < train.size(); ++i) {
      train_labels[i] = train[i].is_match ? 1 : 0;
    }
    // One independent sweep per feature; each writes only thresholds[f].
    ParallelFor(0, dim, 1, [&](size_t f) {
      std::vector<double> column(train.size());
      for (size_t i = 0; i < train.size(); ++i) column[i] = train_rows[i][f];
      thresholds[f] = ml::SweepThresholds(column, train_labels).best_threshold;
    });
  }

  // --- Validation phase: pick the feature whose (feature, threshold) rule
  // scores best on the validation set.
  const auto& valid = task.valid();
  RLBENCH_TRACE_SPAN("esde/valid_and_test");
  RLBENCH_COUNTER_ADD("matchers/esde/pairs_featurized", valid.size());
  std::vector<std::vector<double>> valid_rows(valid.size());
  ParallelFor(0, valid.size(), kPairGrain, [&](size_t i) {
    valid_rows[i] = Features(context, valid[i]);
  });
  std::vector<ml::Confusion> confusion(dim);
  ParallelFor(0, dim, 1, [&](size_t f) {
    for (size_t i = 0; i < valid.size(); ++i) {
      bool predicted = thresholds[f] <= valid_rows[i][f];
      if (valid[i].is_match) {
        predicted ? ++confusion[f].true_positives
                  : ++confusion[f].false_negatives;
      } else {
        predicted ? ++confusion[f].false_positives
                  : ++confusion[f].true_negatives;
      }
    }
  });
  // Serial arg-max keeps the historical lowest-index tie-break.
  best_feature_ = 0;
  best_valid_f1_ = -1.0;
  for (size_t f = 0; f < dim; ++f) {
    double f1 = confusion[f].F1();
    if (f1 > best_valid_f1_) {
      best_valid_f1_ = f1;
      best_feature_ = static_cast<int>(f);
    }
  }
  best_threshold_ = thresholds[best_feature_];

  context.left().Thaw();
  context.right().Thaw();
  return std::unique_ptr<TrainedModel>(std::make_unique<TrainedEsdeModel>(
      variant_, options_, num_attrs, best_feature_, best_threshold_,
      best_valid_f1_));
}

std::vector<uint8_t> EsdeMatcher::Run(const MatchingContext& context) {
  RLBENCH_TRACE_SPAN("esde/run");
  RLBENCH_COUNTER_INC("matchers/esde/runs");
  auto model = TrainModel(context);
  RLBENCH_CHECK(model.ok());

  // --- Testing phase: apply the selected rule. The live matcher keeps its
  // record-vector cache, so it scores through SingleFeature rather than the
  // snapshot model's re-encoding path; both produce identical bits (the
  // serve tests assert it).
  context.left().Freeze();
  context.right().Freeze();
  const auto& test = context.task().test();
  RLBENCH_COUNTER_ADD("matchers/esde/pairs_featurized", test.size());
  std::vector<uint8_t> predictions(test.size());
  ParallelFor(0, test.size(), kPairGrain, [&](size_t i) {
    double score = SingleFeature(context, test[i], best_feature_);
    predictions[i] = best_threshold_ <= score ? 1 : 0;
  });

  context.left().Thaw();
  context.right().Thaw();
  return predictions;
}

Result<std::unique_ptr<TrainedModel>> DeserializeEsdeModel(
    BlobReader* reader) {
  RLBENCH_ASSIGN_OR_RETURN(uint8_t variant_tag, reader->ReadU8());
  if (variant_tag > static_cast<uint8_t>(EsdeVariant::kSchemaBasedSent)) {
    return Status::IOError("esde model: unknown variant tag");
  }
  auto variant = static_cast<EsdeVariant>(variant_tag);
  EsdeOptions options;
  RLBENCH_ASSIGN_OR_RETURN(uint64_t sentence_dim, reader->ReadU64());
  RLBENCH_ASSIGN_OR_RETURN(options.seed, reader->ReadU64());
  RLBENCH_ASSIGN_OR_RETURN(uint64_t qgram_char_cap, reader->ReadU64());
  RLBENCH_ASSIGN_OR_RETURN(uint64_t num_attrs, reader->ReadU64());
  RLBENCH_ASSIGN_OR_RETURN(int32_t best_feature, reader->ReadI32());
  RLBENCH_ASSIGN_OR_RETURN(double best_threshold, reader->ReadDouble());
  RLBENCH_ASSIGN_OR_RETURN(double best_valid_f1, reader->ReadDouble());
  if (sentence_dim == 0 || sentence_dim > (1U << 20)) {
    return Status::IOError("esde model: implausible sentence dimension");
  }
  if (num_attrs == 0 || num_attrs > (1U << 16)) {
    return Status::IOError("esde model: implausible attribute count");
  }
  options.sentence_dim = static_cast<size_t>(sentence_dim);
  options.qgram_char_cap = static_cast<size_t>(qgram_char_cap);
  size_t dim = EsdeFeatureCount(variant, static_cast<size_t>(num_attrs));
  if (best_feature < 0 || static_cast<size_t>(best_feature) >= dim) {
    return Status::IOError("esde model: selected feature out of range");
  }
  return std::unique_ptr<TrainedModel>(std::make_unique<TrainedEsdeModel>(
      variant, options, static_cast<size_t>(num_attrs), best_feature,
      best_threshold, best_valid_f1));
}

}  // namespace rlbench::matchers
