#include "matchers/esde.h"

#include <algorithm>

#include "ml/metrics.h"
#include "text/similarity.h"

namespace rlbench::matchers {

namespace {

constexpr int kMinQ = data::RecordFeatureCache::kMinQ;
constexpr int kMaxQ = data::RecordFeatureCache::kMaxQ;
constexpr int kNumQ = kMaxQ - kMinQ + 1;

void PushSetSims(const text::TokenSet& a, const text::TokenSet& b,
                 std::vector<double>* out) {
  out->push_back(text::CosineSimilarity(a, b));
  out->push_back(text::DiceSimilarity(a, b));
  out->push_back(text::JaccardSimilarity(a, b));
}

void PushVecSims(const embed::Vec& a, const embed::Vec& b,
                 std::vector<double>* out) {
  out->push_back(embed::CosineSimilarity01(a, b));
  out->push_back(embed::EuclideanSimilarity(a, b));
  out->push_back(embed::WassersteinSimilarity(a, b));
}

}  // namespace

EsdeMatcher::EsdeMatcher(EsdeVariant variant, EsdeOptions options)
    : variant_(variant),
      options_(options),
      encoder_(options.sentence_dim, options.seed) {}

const embed::Vec& EsdeMatcher::RecordVec(const MatchingContext& context,
                                         bool left_side, uint32_t record,
                                         int attr) {
  if (vec_cache_.empty()) {
    size_t num_attrs = context.task().left().schema().num_attributes();
    vec_cache_.assign(
        2, std::vector<std::vector<embed::Vec>>(num_attrs + 1));
    vec_cache_[0].assign(num_attrs + 1,
                         std::vector<embed::Vec>(context.task().left().size()));
    vec_cache_[1].assign(
        num_attrs + 1, std::vector<embed::Vec>(context.task().right().size()));
  }
  size_t side = left_side ? 0 : 1;
  size_t slot = static_cast<size_t>(attr + 1);
  embed::Vec& vec = vec_cache_[side][slot][record];
  if (vec.empty()) {
    const data::Table& table =
        left_side ? context.task().left() : context.task().right();
    const std::string text =
        attr < 0 ? table.record(record).ConcatenatedValues()
                 : table.record(record).values[static_cast<size_t>(attr)];
    vec = encoder_.Encode(text);
    if (vec.empty()) vec.assign(encoder_.dim(), 0.0F);
  }
  return vec;
}

std::vector<double> EsdeMatcher::Features(const MatchingContext& context,
                                          const data::LabeledPair& pair) {
  const auto& left = context.left();
  const auto& right = context.right();
  size_t num_attrs = context.task().left().schema().num_attributes();
  std::vector<double> features;
  switch (variant_) {
    case EsdeVariant::kSchemaAgnostic:
      PushSetSims(left.TokenSetAll(pair.left), right.TokenSetAll(pair.right),
                  &features);
      break;
    case EsdeVariant::kSchemaBased:
      for (size_t a = 0; a < num_attrs; ++a) {
        PushSetSims(left.TokenSetAttr(pair.left, a),
                    right.TokenSetAttr(pair.right, a), &features);
      }
      break;
    case EsdeVariant::kSchemaAgnosticQgram:
      for (int q = kMinQ; q <= kMaxQ; ++q) {
        PushSetSims(left.QGramSetAll(pair.left, q),
                    right.QGramSetAll(pair.right, q), &features);
      }
      break;
    case EsdeVariant::kSchemaBasedQgram:
      for (size_t a = 0; a < num_attrs; ++a) {
        for (int q = kMinQ; q <= kMaxQ; ++q) {
          PushSetSims(left.QGramSetAttr(pair.left, a, q),
                      right.QGramSetAttr(pair.right, a, q), &features);
        }
      }
      break;
    case EsdeVariant::kSchemaAgnosticSent:
      PushVecSims(RecordVec(context, true, pair.left, -1),
                  RecordVec(context, false, pair.right, -1), &features);
      break;
    case EsdeVariant::kSchemaBasedSent:
      for (size_t a = 0; a < num_attrs; ++a) {
        PushVecSims(RecordVec(context, true, pair.left, static_cast<int>(a)),
                    RecordVec(context, false, pair.right, static_cast<int>(a)),
                    &features);
      }
      break;
  }
  return features;
}

double EsdeMatcher::SingleFeature(const MatchingContext& context,
                                  const data::LabeledPair& pair, int feature) {
  // For the set-similarity variants, computing the full (cheap) vector and
  // indexing keeps the code simple; the expensive caches are shared anyway.
  return Features(context, pair)[feature];
}

std::vector<uint8_t> EsdeMatcher::Run(const MatchingContext& context) {
  const auto& task = context.task();
  size_t dim = EsdeFeatureCount(
      variant_, task.left().schema().num_attributes());

  // --- Training phase: best threshold per feature on the training set.
  std::vector<std::vector<double>> columns(dim);
  std::vector<uint8_t> train_labels;
  train_labels.reserve(task.train().size());
  for (auto& column : columns) column.reserve(task.train().size());
  for (const auto& pair : task.train()) {
    auto features = Features(context, pair);
    for (size_t f = 0; f < dim; ++f) columns[f].push_back(features[f]);
    train_labels.push_back(pair.is_match ? 1 : 0);
  }
  std::vector<double> thresholds(dim, 0.5);
  for (size_t f = 0; f < dim; ++f) {
    thresholds[f] = ml::SweepThresholds(columns[f], train_labels).best_threshold;
  }

  // --- Validation phase: pick the feature whose (feature, threshold) rule
  // scores best on the validation set.
  std::vector<ml::Confusion> confusion(dim);
  for (const auto& pair : task.valid()) {
    auto features = Features(context, pair);
    for (size_t f = 0; f < dim; ++f) {
      bool predicted = thresholds[f] <= features[f];
      if (pair.is_match) {
        predicted ? ++confusion[f].true_positives
                  : ++confusion[f].false_negatives;
      } else {
        predicted ? ++confusion[f].false_positives
                  : ++confusion[f].true_negatives;
      }
    }
  }
  best_feature_ = 0;
  best_valid_f1_ = -1.0;
  for (size_t f = 0; f < dim; ++f) {
    double f1 = confusion[f].F1();
    if (f1 > best_valid_f1_) {
      best_valid_f1_ = f1;
      best_feature_ = static_cast<int>(f);
    }
  }
  best_threshold_ = thresholds[best_feature_];

  // --- Testing phase: apply the selected rule.
  std::vector<uint8_t> predictions;
  predictions.reserve(task.test().size());
  for (const auto& pair : task.test()) {
    double score = SingleFeature(context, pair, best_feature_);
    predictions.push_back(best_threshold_ <= score ? 1 : 0);
  }
  return predictions;
}

}  // namespace rlbench::matchers
