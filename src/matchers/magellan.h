// Magellan-style matchers: classical classifiers over automatically
// extracted per-attribute similarity features (Section IV-B). Four variants
// mirror the paper: decision tree, logistic regression, random forest and
// linear SVM. Blocking is decoupled exactly as in the paper: the matcher
// consumes the task's given candidate pairs.
#ifndef RLBENCH_SRC_MATCHERS_MAGELLAN_H_
#define RLBENCH_SRC_MATCHERS_MAGELLAN_H_

#include <cstdint>

#include "matchers/matcher.h"

namespace rlbench::matchers {

enum class MagellanClassifier {
  kDecisionTree,
  kLogisticRegression,
  kRandomForest,
  kLinearSvm,
};

struct MagellanOptions {
  uint64_t seed = 13;
};

/// \brief Magellan with one of its four classifiers.
class MagellanMatcher : public Matcher {
 public:
  MagellanMatcher(MagellanClassifier classifier, MagellanOptions options = {})
      : classifier_(classifier), options_(options) {}

  std::string name() const override;
  std::vector<uint8_t> Run(const MatchingContext& context) override;

  /// Fit the classifier and export it as a servable model; Run() is
  /// TrainModel() + predicting the context's test feature dataset.
  [[nodiscard]] Result<std::unique_ptr<TrainedModel>> TrainModel(
      const MatchingContext& context) override;

 private:
  MagellanClassifier classifier_;
  MagellanOptions options_;
};

}  // namespace rlbench::matchers

#endif  // RLBENCH_SRC_MATCHERS_MAGELLAN_H_
