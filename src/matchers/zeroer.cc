#include "matchers/zeroer.h"

#include <span>

#include "matchers/features.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rlbench::matchers {

namespace {

/// ZeroER performs feature selection before fitting its mixture model; the
/// strongest, least redundant members of the Magellan family for a
/// generative diagonal-Gaussian model are the per-attribute Jaccard and
/// Monge-Elkan scores (the edit-based ones are highly correlated with
/// them, which violates the model's independence assumption).
std::vector<float> SelectFeatures(std::span<const float> magellan_row) {
  std::vector<float> out;
  out.reserve(magellan_row.size() / kMagellanFeaturesPerAttr * 2);
  for (size_t base = 0; base + kMagellanFeaturesPerAttr <= magellan_row.size();
       base += kMagellanFeaturesPerAttr) {
    out.push_back(magellan_row[base]);      // Jaccard
    out.push_back(magellan_row[base + 3]);  // Monge-Elkan
  }
  return out;
}

}  // namespace

std::vector<uint8_t> ZeroErMatcher::Run(const MatchingContext& context) {
  RLBENCH_TRACE_SPAN("zeroer/run");
  RLBENCH_COUNTER_INC("matchers/zeroer/runs");
  // Pool all candidate pairs' features; labels carried by the datasets are
  // never read by the mixture model.
  const ml::Dataset& train = context.MagellanTrain();
  const ml::Dataset& valid = context.MagellanValid();
  const ml::Dataset& test = context.MagellanTest();

  size_t dim = SelectFeatures(train.empty() ? test.row(0) : train.row(0))
                   .size();
  ml::Dataset all(dim);
  all.Reserve(train.size() + valid.size() + test.size());
  for (const ml::Dataset* part : {&train, &valid, &test}) {
    for (size_t i = 0; i < part->size(); ++i) {
      all.Add(SelectFeatures(part->row(i)), false);
    }
  }

  ml::GaussianMixtureMatcher gmm(options_.gmm);
  {
    RLBENCH_TRACE_SPAN("zeroer/fit");
    gmm.Fit(all);
  }

  RLBENCH_TRACE_SPAN("zeroer/predict");
  std::vector<uint8_t> predictions;
  predictions.reserve(test.size());
  for (size_t i = 0; i < test.size(); ++i) {
    predictions.push_back(gmm.Predict(SelectFeatures(test.row(i))) ? 1 : 0);
  }
  return predictions;
}

}  // namespace rlbench::matchers
