#include "matchers/zeroer.h"

#include <memory>
#include <span>
#include <utility>

#include "matchers/features.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rlbench::matchers {

std::vector<float> ZeroErSelectFeatures(std::span<const float> magellan_row) {
  std::vector<float> out;
  out.reserve(magellan_row.size() / kMagellanFeaturesPerAttr * 2);
  for (size_t base = 0; base + kMagellanFeaturesPerAttr <= magellan_row.size();
       base += kMagellanFeaturesPerAttr) {
    out.push_back(magellan_row[base]);      // Jaccard
    out.push_back(magellan_row[base + 3]);  // Monge-Elkan
  }
  return out;
}

namespace {

/// \brief Snapshot form of a fitted ZeroER mixture.
///
/// Scoring recomputes the pair's Magellan features, applies ZeroER's
/// feature selection, and reads the posterior of the match component —
/// the same float pipeline the matcher's Run() predicts through.
class TrainedZeroErModel final : public TrainedModel {
 public:
  TrainedZeroErModel(size_t num_attrs, ml::GaussianMixtureMatcher gmm)
      : num_attrs_(num_attrs), gmm_(std::move(gmm)) {}

  TrainedModelKind kind() const override { return TrainedModelKind::kZeroEr; }
  std::string matcher_name() const override { return "ZeroER"; }
  size_t num_attrs() const override { return num_attrs_; }
  const ml::GaussianMixtureMatcher& gmm() const { return gmm_; }

  double ScorePair(const MatchingContext& context,
                   const data::LabeledPair& pair) const override {
    auto features = MagellanFeatures(context.left(), context.right(), pair);
    return gmm_.PredictScore(ZeroErSelectFeatures(features));
  }

  // The default DecideFromScore (score >= 0.5) is exactly
  // GaussianMixtureMatcher::Predict.

  void SerializePayload(BlobWriter* writer) const override {
    writer->WriteU64(num_attrs_);
    gmm_.Save(writer);
  }

 private:
  size_t num_attrs_;
  ml::GaussianMixtureMatcher gmm_;
};

}  // namespace

Result<std::unique_ptr<TrainedModel>> ZeroErMatcher::TrainModel(
    const MatchingContext& context) {
  // Pool all candidate pairs' features; labels carried by the datasets are
  // never read by the mixture model.
  const ml::Dataset& train = context.MagellanTrain();
  const ml::Dataset& valid = context.MagellanValid();
  const ml::Dataset& test = context.MagellanTest();

  size_t dim =
      ZeroErSelectFeatures(train.empty() ? test.row(0) : train.row(0)).size();
  ml::Dataset all(dim);
  all.Reserve(train.size() + valid.size() + test.size());
  for (const ml::Dataset* part : {&train, &valid, &test}) {
    for (size_t i = 0; i < part->size(); ++i) {
      all.Add(ZeroErSelectFeatures(part->row(i)), false);
    }
  }

  ml::GaussianMixtureMatcher gmm(options_.gmm);
  {
    RLBENCH_TRACE_SPAN("zeroer/fit");
    gmm.Fit(all);
  }
  size_t num_attrs = context.task().left().schema().num_attributes();
  return std::unique_ptr<TrainedModel>(
      std::make_unique<TrainedZeroErModel>(num_attrs, std::move(gmm)));
}

std::vector<uint8_t> ZeroErMatcher::Run(const MatchingContext& context) {
  RLBENCH_TRACE_SPAN("zeroer/run");
  RLBENCH_COUNTER_INC("matchers/zeroer/runs");
  auto model = TrainModel(context);
  RLBENCH_CHECK(model.ok());

  RLBENCH_TRACE_SPAN("zeroer/predict");
  const auto& trained = static_cast<const TrainedZeroErModel&>(**model);
  const ml::Dataset& test = context.MagellanTest();
  std::vector<uint8_t> predictions;
  predictions.reserve(test.size());
  for (size_t i = 0; i < test.size(); ++i) {
    predictions.push_back(
        trained.gmm().Predict(ZeroErSelectFeatures(test.row(i))) ? 1 : 0);
  }
  return predictions;
}

Result<std::unique_ptr<TrainedModel>> DeserializeZeroErModel(
    BlobReader* reader) {
  RLBENCH_ASSIGN_OR_RETURN(uint64_t num_attrs, reader->ReadU64());
  if (num_attrs == 0 || num_attrs > (1U << 16)) {
    return Status::IOError("zeroer model: implausible attribute count");
  }
  ml::GaussianMixtureMatcher gmm;
  RLBENCH_RETURN_NOT_OK(gmm.Load(reader));
  if (gmm.dim() != static_cast<size_t>(num_attrs) * 2) {
    return Status::IOError("zeroer model: mixture arity does not match schema");
  }
  return std::unique_ptr<TrainedModel>(std::make_unique<TrainedZeroErModel>(
      static_cast<size_t>(num_attrs), std::move(gmm)));
}

}  // namespace rlbench::matchers
