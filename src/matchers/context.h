// Shared per-task state for matchers: feature caches over both tables, a
// corpus TF-IDF model, and the lazily built Magellan feature datasets that
// several matchers reuse. Building this once per task and passing it to
// every matcher is what keeps a full Table IV run affordable.
#ifndef RLBENCH_SRC_MATCHERS_CONTEXT_H_
#define RLBENCH_SRC_MATCHERS_CONTEXT_H_

#include <memory>
#include <optional>

#include "data/columnar.h"
#include "data/feature_cache.h"
#include "data/task.h"
#include "ml/dataset.h"
#include "text/tfidf.h"

namespace rlbench::matchers {

/// \brief Read-only context shared by all matchers evaluating one task.
class MatchingContext {
 public:
  explicit MatchingContext(const data::MatchingTask* task);

  const data::MatchingTask& task() const { return *task_; }
  const data::RecordFeatureCache& left() const { return left_; }
  const data::RecordFeatureCache& right() const { return right_; }
  const text::TfIdfModel& tfidf() const { return tfidf_; }

  /// Columnar view over both tables (token columns built with the context;
  /// q-gram pools on demand via columnar().EnsureQGrams()). Batch feature
  /// extraction reads this; the row caches above stay the cold-path API.
  const data::ColumnarStore& columnar() const { return *columnar_; }

  /// Magellan feature datasets for train / valid / test, built on first use
  /// and cached (shared by the four Magellan variants and ZeroER).
  const ml::Dataset& MagellanTrain() const;
  const ml::Dataset& MagellanValid() const;
  const ml::Dataset& MagellanTest() const;

 private:
  void EnsureMagellan() const;

  const data::MatchingTask* task_;
  data::RecordFeatureCache left_;
  data::RecordFeatureCache right_;
  std::optional<data::ColumnarStore> columnar_;
  text::TfIdfModel tfidf_;
  mutable std::optional<ml::Dataset> magellan_train_;
  mutable std::optional<ml::Dataset> magellan_valid_;
  mutable std::optional<ml::Dataset> magellan_test_;
};

}  // namespace rlbench::matchers

#endif  // RLBENCH_SRC_MATCHERS_CONTEXT_H_
