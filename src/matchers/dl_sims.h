// Simulated deep-learning matchers (Section IV-A).
//
// Each method is a from-scratch MLP classifier over a feature pipeline that
// reproduces the method's cell in the paper's taxonomy (Table II):
//
//   DeepMatcher      static embeddings, homogeneous (per-attribute),  local
//   EMTransformer-B  dynamic embeddings (variant B), heterogeneous,   local
//   EMTransformer-R  dynamic embeddings (variant R), heterogeneous,   local
//   GNEM             dynamic embeddings, homogeneous,                 GLOBAL
//                    (score propagation over the candidate graph)
//   DITTO            dynamic embeddings + TF-IDF summarisation of long
//                    values + training-set augmentation, heterogeneous, local
//   HierMatcher      cross-attribute token alignment (hierarchical),  local
//
// "Static" embeddings are the hashed subword vectors (fastText stand-in);
// "dynamic" ones pass through the attention context mixer (BERT stand-in).
// Sequences are capped at kMaxSequenceTokens, mirroring the 512-token
// attention span the paper highlights for transformer models.
#ifndef RLBENCH_SRC_MATCHERS_DL_SIMS_H_
#define RLBENCH_SRC_MATCHERS_DL_SIMS_H_

#include <cstdint>
#include <unordered_map>

#include "common/rng.h"
#include "embed/context_encoder.h"
#include "embed/hashed_embedding.h"
#include "matchers/matcher.h"
#include "ml/mlp.h"

namespace rlbench::matchers {

enum class DlMethod {
  kDeepMatcher,
  kEmTransformerB,
  kEmTransformerR,
  kGnem,
  kDitto,
  kHierMatcher,
};

const char* DlMethodName(DlMethod method);

struct DlOptions {
  /// Per-attribute static embedding dimensionality (DeepMatcher, Hier).
  size_t attr_dim = 16;
  /// Sequence embedding dimensionality (EMTransformer, GNEM, DITTO).
  size_t seq_dim = 48;
  /// Token cap of the simulated attention span.
  size_t max_sequence_tokens = 64;
  /// Token cap per side for HierMatcher's token alignment.
  size_t max_alignment_tokens = 40;
  /// GNEM: weight of the propagated neighbourhood score.
  double gnem_lambda = 0.35;
  /// DITTO: probability of adding an augmented copy of a training pair.
  double ditto_augment_rate = 0.5;
  /// DITTO: token drop probability inside an augmented copy.
  double ditto_token_dropout = 0.15;
  ml::MlpOptions mlp;
  uint64_t seed = 29;
};

/// \brief One simulated DL matcher (method x epoch budget).
class DlMatcher : public Matcher {
 public:
  DlMatcher(DlMethod method, int epochs, DlOptions options = {});

  std::string name() const override;
  std::vector<uint8_t> Run(const MatchingContext& context) override;

 private:
  /// Cached record-level representation (per-attr vecs or sequence vec).
  struct RecordRep {
    std::vector<embed::Vec> attr_vecs;  // DeepMatcher
    embed::Vec seq_vec;                 // EMT / GNEM / DITTO (pooled)
    // Token-level vectors: contextual for the transformer family (the
    // cross-encoder attends across both sequences, so pair features include
    // token alignment), static for HierMatcher. Capped.
    std::vector<embed::Vec> token_vecs;
    std::vector<double> token_idf;
    std::vector<size_t> token_attr;     // attribute of each token (Hier)
  };

  const RecordRep& Rep(const MatchingContext& context, bool left_side,
                       uint32_t record);
  /// `dropout` (DITTO augmentation) drops each token with
  /// ditto_token_dropout probability before encoding; null = no dropout.
  RecordRep BuildRep(const MatchingContext& context, bool left_side,
                     uint32_t record, Rng* dropout) const;

  std::vector<float> PairFeatures(const RecordRep& left,
                                  const RecordRep& right) const;
  size_t FeatureDim(size_t num_attrs) const;

  /// Token sequence for the record under this method's input convention
  /// (summarised for DITTO, head-truncated otherwise).
  std::vector<std::string> SequenceTokens(const MatchingContext& context,
                                          bool left_side,
                                          uint32_t record) const;

  DlMethod method_;
  int epochs_;
  DlOptions options_;
  embed::HashedEmbedding static_model_;
  std::unique_ptr<embed::ContextEncoder> dynamic_model_;
  mutable std::unordered_map<std::string, embed::Vec> token_cache_;
  std::vector<std::unordered_map<uint32_t, RecordRep>> rep_cache_;
};

}  // namespace rlbench::matchers

#endif  // RLBENCH_SRC_MATCHERS_DL_SIMS_H_
