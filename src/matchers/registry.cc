#include "matchers/registry.h"

#include <algorithm>

#include "matchers/dl_sims.h"
#include "matchers/ensemble_link.h"
#include "matchers/esde.h"
#include "matchers/magellan.h"
#include "matchers/zeroer.h"

namespace rlbench::matchers {

namespace {

constexpr MagellanClassifier kMagellanClassifiers[] = {
    MagellanClassifier::kDecisionTree, MagellanClassifier::kLogisticRegression,
    MagellanClassifier::kRandomForest, MagellanClassifier::kLinearSvm};

constexpr EsdeVariant kEsdeVariants[] = {
    EsdeVariant::kSchemaAgnostic,     EsdeVariant::kSchemaAgnosticQgram,
    EsdeVariant::kSchemaAgnosticSent, EsdeVariant::kSchemaBased,
    EsdeVariant::kSchemaBasedQgram,   EsdeVariant::kSchemaBasedSent};

/// The named servable matcher under the lineup's per-family seed
/// derivation, or nullptr for unknown (or non-servable) names.
std::unique_ptr<Matcher> MakeServableMatcher(const std::string& name,
                                             uint64_t seed) {
  MagellanOptions mg_options;
  mg_options.seed = seed ^ 0x3117ULL;
  for (auto classifier : kMagellanClassifiers) {
    auto matcher = std::make_unique<MagellanMatcher>(classifier, mg_options);
    if (matcher->name() == name) return matcher;
  }
  if (name == "ZeroER") return std::make_unique<ZeroErMatcher>();
  if (name == "EnsembleLink") {
    EnsembleLinkOptions el_options;
    el_options.seed = seed ^ 0x2E17ULL;
    return std::make_unique<EnsembleLinkMatcher>(el_options);
  }
  EsdeOptions esde_options;
  esde_options.seed = seed ^ 0xE5DEULL;
  for (auto variant : kEsdeVariants) {
    if (EsdeVariantName(variant) == name) {
      return std::make_unique<EsdeMatcher>(variant, esde_options);
    }
  }
  return nullptr;
}

}  // namespace

std::vector<std::string> ServableMatcherNames() {
  std::vector<std::string> names;
  for (auto classifier : kMagellanClassifiers) {
    names.push_back(MagellanMatcher(classifier).name());
  }
  names.push_back("ZeroER");
  for (auto variant : kEsdeVariants) {
    names.push_back(EsdeVariantName(variant));
  }
  names.push_back("EnsembleLink");
  return names;
}

Result<std::unique_ptr<TrainedModel>> TrainServableMatcher(
    const std::string& name, const MatchingContext& context, uint64_t seed) {
  auto matcher = MakeServableMatcher(name, seed);
  if (matcher == nullptr) {
    return Status::NotFound("no servable matcher named \"" + name + "\"");
  }
  return matcher->TrainModel(context);
}

std::vector<RegisteredMatcher> BuildMatcherLineup(
    const RegistryOptions& options) {
  std::vector<RegisteredMatcher> lineup;
  auto scaled = [&options](int epochs) {
    return std::max(1, static_cast<int>(epochs * options.epoch_scale));
  };

  if (options.dl) {
    DlOptions dl_options;
    dl_options.seed = options.seed;
    auto add_dl = [&](DlMethod method, int epochs) {
      lineup.push_back({std::make_unique<DlMatcher>(method, scaled(epochs),
                                                    dl_options),
                        MatcherGroup::kDeepLearning});
    };
    // The epoch pairs follow Table IV: default-from-paper and 40 (10/40 for
    // GNEM and HierMatcher).
    add_dl(DlMethod::kDeepMatcher, 15);
    add_dl(DlMethod::kDeepMatcher, 40);
    add_dl(DlMethod::kDitto, 15);
    add_dl(DlMethod::kDitto, 40);
    add_dl(DlMethod::kEmTransformerB, 15);
    add_dl(DlMethod::kEmTransformerB, 40);
    add_dl(DlMethod::kEmTransformerR, 15);
    add_dl(DlMethod::kEmTransformerR, 40);
    add_dl(DlMethod::kGnem, 10);
    add_dl(DlMethod::kGnem, 40);
    add_dl(DlMethod::kHierMatcher, 10);
    add_dl(DlMethod::kHierMatcher, 40);
  }

  if (options.classic) {
    MagellanOptions mg_options;
    mg_options.seed = options.seed ^ 0x3117ULL;
    for (auto classifier :
         {MagellanClassifier::kDecisionTree,
          MagellanClassifier::kLogisticRegression,
          MagellanClassifier::kRandomForest, MagellanClassifier::kLinearSvm}) {
      lineup.push_back({std::make_unique<MagellanMatcher>(classifier,
                                                          mg_options),
                        MatcherGroup::kClassicMl});
    }
    lineup.push_back(
        {std::make_unique<ZeroErMatcher>(), MatcherGroup::kClassicMl});
  }

  if (options.linear) {
    EsdeOptions esde_options;
    esde_options.seed = options.seed ^ 0xE5DEULL;
    for (auto variant :
         {EsdeVariant::kSchemaAgnostic, EsdeVariant::kSchemaAgnosticQgram,
          EsdeVariant::kSchemaAgnosticSent, EsdeVariant::kSchemaBased,
          EsdeVariant::kSchemaBasedQgram, EsdeVariant::kSchemaBasedSent}) {
      lineup.push_back({std::make_unique<EsdeMatcher>(variant, esde_options),
                        MatcherGroup::kLinear});
    }
  }

  if (options.zero_shot) {
    EnsembleLinkOptions el_options;
    el_options.seed = options.seed ^ 0x2E17ULL;
    lineup.push_back({std::make_unique<EnsembleLinkMatcher>(el_options),
                      MatcherGroup::kZeroShot});
  }
  return lineup;
}

}  // namespace rlbench::matchers
