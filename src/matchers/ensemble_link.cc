#include "matchers/ensemble_link.h"

#include <cmath>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/check.h"
#include "data/columnar.h"
#include "matchers/features.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/kernels.h"

namespace rlbench::matchers {

namespace {

/// The nine ensemble signals of one pair, in the order documented in
/// ensemble_link.h. Reads only the columnar store (token-id spans are
/// built by the MatchingContext constructor; MagellanFeaturesColumnar is
/// the bit-exact hot path of the Magellan family), so live and snapshot
/// scoring share this single implementation.
void EnsembleSignals(const MatchingContext& context,
                     const data::LabeledPair& pair, size_t num_attrs,
                     std::span<double> out) {
  const data::ColumnarStore& store = context.columnar();
  text::kernels::SetSims sims = text::kernels::SetFamilySortedU32(
      store.TokenIdsAll(data::ColumnarStore::kLeft, pair.left),
      store.TokenIdsAll(data::ColumnarStore::kRight, pair.right));
  out[0] = sims.cosine;
  out[1] = sims.dice;
  out[2] = sims.jaccard;
  // Six Magellan families averaged across attributes, in their canonical
  // per-attribute order (attr-jaccard, levenshtein, jaro-winkler,
  // monge-elkan, numeric, exact). Serial fixed-order accumulation keeps
  // the means bit-identical at any thread count.
  std::vector<float> features(num_attrs * kMagellanFeaturesPerAttr);
  MagellanFeaturesColumnar(store, pair, features);
  for (size_t f = 0; f < kMagellanFeaturesPerAttr; ++f) {
    double sum = 0.0;
    for (size_t attr = 0; attr < num_attrs; ++attr) {
      sum += static_cast<double>(features[attr * kMagellanFeaturesPerAttr + f]);
    }
    out[3 + f] = sum / static_cast<double>(num_attrs);
  }
}

/// Weighted Borda vote share of one pair under the ensemble config.
double EnsembleScore(const MatchingContext& context,
                     const data::LabeledPair& pair, size_t num_attrs,
                     const EnsembleLinkOptions& options) {
  double signals[kEnsembleSignals];
  EnsembleSignals(context, pair, num_attrs, signals);
  double votes = 0.0;
  double total = 0.0;
  for (size_t s = 0; s < kEnsembleSignals; ++s) {
    total += options.weights[s];
    if (signals[s] >= options.thresholds[s]) votes += options.weights[s];
  }
  return votes / total;
}

class TrainedEnsembleLinkModel final : public TrainedModel {
 public:
  TrainedEnsembleLinkModel(EnsembleLinkOptions options, size_t num_attrs)
      : options_(std::move(options)), num_attrs_(num_attrs) {}

  TrainedModelKind kind() const override {
    return TrainedModelKind::kEnsembleLink;
  }
  std::string matcher_name() const override { return "EnsembleLink"; }
  size_t num_attrs() const override { return num_attrs_; }

  double ScorePair(const MatchingContext& context,
                   const data::LabeledPair& pair) const override {
    return EnsembleScore(context, pair, num_attrs_, options_);
  }

  bool DecideFromScore(double score) const override {
    return score >= options_.vote_fraction;
  }
  double decision_threshold() const override { return options_.vote_fraction; }

  Status ScoreBatch(const MatchingContext& context,
                    std::span<const data::LabeledPair> pairs,
                    std::span<double> scores,
                    std::span<uint8_t> decisions) const override {
    RLBENCH_TRACE_SPAN("ensemble/score_batch");
    RLBENCH_COUNTER_ADD("matchers/ensemble/pairs_scored", pairs.size());
    return TrainedModel::ScoreBatch(context, pairs, scores, decisions);
  }

  void SerializePayload(BlobWriter* writer) const override {
    writer->WriteU64(static_cast<uint64_t>(num_attrs_));
    writer->WriteDouble(options_.vote_fraction);
    writer->WriteU64(options_.seed);
    std::vector<double> thresholds(options_.thresholds.begin(),
                                   options_.thresholds.end());
    std::vector<double> weights(options_.weights.begin(),
                                options_.weights.end());
    writer->WriteDoubleVec(thresholds);
    writer->WriteDoubleVec(weights);
  }

 private:
  EnsembleLinkOptions options_;
  size_t num_attrs_;
};

}  // namespace

EnsembleLinkMatcher::EnsembleLinkMatcher(EnsembleLinkOptions options)
    : options_(options) {
  RLBENCH_CHECK(options_.vote_fraction >= 0.0 &&
                options_.vote_fraction <= 1.0);
}

Result<std::unique_ptr<TrainedModel>> EnsembleLinkMatcher::TrainModel(
    const MatchingContext& context) {
  // Training-free: the model is the configuration. Not a single train or
  // valid pair is read, which is exactly what makes this the zero-shot
  // fallback arm the drift loop can always reach for.
  RLBENCH_COUNTER_INC("matchers/ensemble/models_built");
  size_t num_attrs = context.task().left().schema().num_attributes();
  return std::unique_ptr<TrainedModel>(
      std::make_unique<TrainedEnsembleLinkModel>(options_, num_attrs));
}

std::vector<uint8_t> EnsembleLinkMatcher::Run(const MatchingContext& context) {
  RLBENCH_TRACE_SPAN("ensemble/run");
  RLBENCH_COUNTER_INC("matchers/ensemble/runs");
  auto model = TrainModel(context);
  RLBENCH_CHECK(model.ok());

  bool was_frozen = context.left().frozen() && context.right().frozen();
  (*model)->PrepareContext(context);
  const auto& test = context.task().test();
  std::vector<double> scores(test.size());
  std::vector<uint8_t> predictions(test.size());
  Status scored = (*model)->ScoreBatch(context, test, scores, predictions);
  RLBENCH_CHECK(scored.ok());
  if (!was_frozen) {
    context.left().Thaw();
    context.right().Thaw();
  }
  return predictions;
}

Result<std::unique_ptr<TrainedModel>> DeserializeEnsembleLinkModel(
    BlobReader* reader) {
  RLBENCH_ASSIGN_OR_RETURN(uint64_t num_attrs, reader->ReadU64());
  EnsembleLinkOptions options;
  RLBENCH_ASSIGN_OR_RETURN(options.vote_fraction, reader->ReadDouble());
  RLBENCH_ASSIGN_OR_RETURN(options.seed, reader->ReadU64());
  RLBENCH_ASSIGN_OR_RETURN(std::vector<double> thresholds,
                           reader->ReadDoubleVec());
  RLBENCH_ASSIGN_OR_RETURN(std::vector<double> weights,
                           reader->ReadDoubleVec());
  if (num_attrs == 0 || num_attrs > (1U << 16)) {
    return Status::IOError("ensemble model: implausible attribute count");
  }
  if (!(options.vote_fraction >= 0.0 && options.vote_fraction <= 1.0)) {
    return Status::IOError("ensemble model: vote fraction out of [0, 1]");
  }
  if (thresholds.size() != kEnsembleSignals ||
      weights.size() != kEnsembleSignals) {
    return Status::IOError("ensemble model: wrong signal count");
  }
  double weight_sum = 0.0;
  for (size_t s = 0; s < kEnsembleSignals; ++s) {
    if (!(thresholds[s] >= 0.0 && thresholds[s] <= 1.0)) {
      return Status::IOError("ensemble model: threshold out of [0, 1]");
    }
    if (!std::isfinite(weights[s]) || weights[s] < 0.0) {
      return Status::IOError("ensemble model: negative or non-finite weight");
    }
    options.thresholds[s] = thresholds[s];
    options.weights[s] = weights[s];
    weight_sum += weights[s];
  }
  if (weight_sum <= 0.0) {
    return Status::IOError("ensemble model: zero total vote weight");
  }
  return std::unique_ptr<TrainedModel>(std::make_unique<TrainedEnsembleLinkModel>(
      options, static_cast<size_t>(num_attrs)));
}

}  // namespace rlbench::matchers
