// The common matcher interface: every algorithm in Tables IV and VI —
// simulated DL matchers, Magellan variants, ZeroER, and the ESDE family —
// trains on the task's train (+valid) sets and predicts the test set.
#ifndef RLBENCH_SRC_MATCHERS_MATCHER_H_
#define RLBENCH_SRC_MATCHERS_MATCHER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "matchers/context.h"
#include "matchers/trained_model.h"

namespace rlbench::matchers {

/// \brief A supervised (or unsupervised) matching algorithm.
class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Row label used in the result tables, e.g. "DM(15)" or "SA-ESDE".
  virtual std::string name() const = 0;

  /// Train on the context's train/validation pairs and return one 0/1
  /// prediction per test pair, in test order.
  virtual std::vector<uint8_t> Run(const MatchingContext& context) = 0;

  /// Train on the context's train/validation pairs and export the fitted
  /// state as a servable model (src/serve/ snapshots). For servable
  /// families, Run() is equivalent to TrainModel() followed by scoring the
  /// test pairs through the model. The default (used by the simulated DL
  /// matchers, which have no portable fitted state) reports
  /// FailedPrecondition.
  [[nodiscard]] virtual Result<std::unique_ptr<TrainedModel>> TrainModel(
      const MatchingContext& context);

  /// Convenience: F1 of Run's predictions against the test labels.
  double TestF1(const MatchingContext& context);
};

}  // namespace rlbench::matchers

#endif  // RLBENCH_SRC_MATCHERS_MATCHER_H_
