// The trained, servable form of a matcher. A Matcher's Run() couples
// training and test-set prediction into one call that dies with the
// process; TrainedModel splits out the fitted state (ESDE's selected
// feature + threshold, Magellan's fitted classifier, ZeroER's mixture
// parameters) so it can be serialized into a snapshot (src/serve/), loaded
// once, and asked to score arbitrary record pairs many times.
//
// Equivalence contract: for any pair, ScorePair/ScoreBatch produce the
// same bits as the feature extraction inside the matcher's own Run() —
// both paths flow through the identical feature code (esde.cc shares one
// helper; Magellan and ZeroER recompute MagellanFeatures, which is a pure
// function of the frozen caches). The serve tests pin this down per
// matcher family at 1/2/7 threads.
#ifndef RLBENCH_SRC_MATCHERS_TRAINED_MODEL_H_
#define RLBENCH_SRC_MATCHERS_TRAINED_MODEL_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/blob.h"
#include "common/status.h"
#include "matchers/context.h"

namespace rlbench::matchers {

/// Serialized type tag of a trained model (stable across versions; never
/// renumber).
enum class TrainedModelKind : uint8_t {
  kEsde = 1,
  kMagellan = 2,
  kZeroEr = 3,
  kEnsembleLink = 4,
};

/// \brief An immutable fitted matcher that scores record pairs.
///
/// Thread-safety: all scoring methods are const and safe to call
/// concurrently once PrepareContext() has warmed and frozen the context's
/// record caches (the two-phase contract of data/feature_cache.h).
class TrainedModel {
 public:
  virtual ~TrainedModel() = default;

  virtual TrainedModelKind kind() const = 0;

  /// Table-row name of the matcher this model was trained as ("SA-ESDE",
  /// "Magellan-RF", "ZeroER", ...).
  virtual std::string matcher_name() const = 0;

  /// Attribute count of the schema the model was trained on; serving
  /// validates it against the live dataset before installing a snapshot.
  virtual size_t num_attrs() const = 0;

  /// Match score of one candidate pair (higher = more likely a match).
  /// ESDE reports the selected raw feature value; the others report a
  /// probability-like score in [0, 1].
  virtual double ScorePair(const MatchingContext& context,
                           const data::LabeledPair& pair) const = 0;

  /// The matcher family's exact decision rule applied to a ScorePair
  /// value. Defaults to score >= 0.5; ESDE overrides with its trained
  /// threshold.
  virtual bool DecideFromScore(double score) const { return score >= 0.5; }

  /// Decision boundary reported in serve responses / snapshots metadata.
  virtual double decision_threshold() const { return 0.5; }

  /// \brief Score a batch of pairs into index-addressed slots on the
  /// parallel pool — bit-identical at any thread count.
  ///
  /// `scores` and `decisions` must have pairs.size() entries. The default
  /// runs ScorePair per pair under ParallelFor; Magellan overrides it to
  /// assemble the feature matrix via ml::Dataset::BuildParallel first.
  /// Requires PrepareContext() to have been called on `context`.
  [[nodiscard]] virtual Status ScoreBatch(const MatchingContext& context,
                            std::span<const data::LabeledPair> pairs,
                            std::span<double> scores,
                            std::span<uint8_t> decisions) const;

  /// Warm every context cache slot this model's feature family reads, then
  /// freeze both caches for concurrent scoring. Idempotent.
  virtual void PrepareContext(const MatchingContext& context) const;

  /// Append the model's payload (everything after the kind tag).
  virtual void SerializePayload(BlobWriter* writer) const = 0;
};

/// Append `kind tag + payload` to `writer`.
void SerializeTrainedModel(const TrainedModel& model, BlobWriter* writer);

/// Decode a model written by SerializeTrainedModel. IOError on a
/// truncated or corrupt payload, InvalidArgument on an unknown kind tag.
[[nodiscard]] Result<std::unique_ptr<TrainedModel>> DeserializeTrainedModel(
    BlobReader* reader);

/// Per-family payload decoders, implemented next to their matchers
/// (esde.cc / magellan.cc / zeroer.cc) so each shares feature code with
/// the matcher that trains it. DeserializeTrainedModel dispatches here.
[[nodiscard]] Result<std::unique_ptr<TrainedModel>> DeserializeEsdeModel(BlobReader* reader);
Result<std::unique_ptr<TrainedModel>> DeserializeMagellanModel(
    BlobReader* reader);
[[nodiscard]] Result<std::unique_ptr<TrainedModel>> DeserializeZeroErModel(
    BlobReader* reader);
[[nodiscard]] Result<std::unique_ptr<TrainedModel>> DeserializeEnsembleLinkModel(
    BlobReader* reader);

}  // namespace rlbench::matchers

#endif  // RLBENCH_SRC_MATCHERS_TRAINED_MODEL_H_
