// Whole-record sentence embeddings: the offline stand-in for the
// Sentence-BERT (S-GTR-T5) vectors used by SAS/SBS-ESDE. A record vector is
// the hashed-subword bag over the concatenated attribute values; only its
// cosine / Euclidean / Wasserstein similarities are ever consumed.
#ifndef RLBENCH_SRC_EMBED_SENTENCE_ENCODER_H_
#define RLBENCH_SRC_EMBED_SENTENCE_ENCODER_H_

#include <cstdint>
#include <string_view>

#include "embed/hashed_embedding.h"
#include "embed/vector_ops.h"

namespace rlbench::embed {

/// \brief Fixed (non-trainable) sentence-level encoder.
class SentenceEncoder {
 public:
  SentenceEncoder(size_t dim, uint64_t seed) : model_(dim, seed) {}

  size_t dim() const { return model_.dim(); }

  /// Embed arbitrary text into a unit-norm vector.
  Vec Encode(std::string_view text) const { return model_.EmbedText(text); }

 private:
  HashedEmbedding model_;
};

}  // namespace rlbench::embed

#endif  // RLBENCH_SRC_EMBED_SENTENCE_ENCODER_H_
