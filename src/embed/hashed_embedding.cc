#include "embed/hashed_embedding.h"

#include "common/rng.h"
#include "common/strings.h"
#include "text/tokenizer.h"

namespace rlbench::embed {

void HashedEmbedding::AccumulateHashed(std::string_view key, Vec* out) const {
  // Derive a stream of pseudo-random coordinates from the key hash with
  // SplitMix64; each coordinate is mapped to roughly N(0, 1) by summing two
  // uniforms (cheap and smooth enough for similarity geometry).
  uint64_t state = Fnv1a64(key) ^ seed_;
  for (size_t i = 0; i < dim_; ++i) {
    state = SplitMix64(state);
    double u1 = static_cast<double>(state >> 11) * (1.0 / 9007199254740992.0);
    state = SplitMix64(state);
    double u2 = static_cast<double>(state >> 11) * (1.0 / 9007199254740992.0);
    (*out)[i] += static_cast<float>((u1 + u2 - 1.0) * 1.7320508);
  }
}

Vec HashedEmbedding::EmbedToken(std::string_view token) const {
  Vec vec(dim_, 0.0F);
  if (token.empty()) return vec;
  // Whole-token component plus boundary-padded character n-grams, as in
  // fastText's subword model.
  AccumulateHashed(token, &vec);
  std::string padded = "<";
  padded.append(token);
  padded.push_back('>');
  for (size_t n = 3; n <= 5; ++n) {
    if (padded.size() < n) break;
    for (size_t i = 0; i + n <= padded.size(); ++i) {
      AccumulateHashed(std::string_view(padded).substr(i, n), &vec);
    }
  }
  L2NormalizeInPlace(&vec);
  return vec;
}

Vec HashedEmbedding::EmbedTokens(const std::vector<std::string>& tokens) const {
  Vec vec(dim_, 0.0F);
  if (tokens.empty()) return vec;
  for (const auto& token : tokens) {
    Vec tv = EmbedToken(token);
    AddInPlace(&vec, tv);
  }
  ScaleInPlace(&vec, 1.0F / static_cast<float>(tokens.size()));
  L2NormalizeInPlace(&vec);
  return vec;
}

Vec HashedEmbedding::EmbedText(std::string_view text) const {
  return EmbedTokens(text::Tokenize(text));
}

}  // namespace rlbench::embed
