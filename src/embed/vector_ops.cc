#include "embed/vector_ops.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace rlbench::embed {

double Dot(const Vec& a, const Vec& b) {
  RLBENCH_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += double{a[i]} * b[i];
  return sum;
}

double Norm(const Vec& a) { return std::sqrt(Dot(a, a)); }

double Cosine(const Vec& a, const Vec& b) {
  double na = Norm(a);
  double nb = Norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  // Rounding can push the quotient a hair outside [-1, 1]; clamp so the
  // [0, 1] rescaling below stays a valid probability.
  return std::clamp(Dot(a, b) / (na * nb), -1.0, 1.0);
}

double CosineSimilarity01(const Vec& a, const Vec& b) {
  double sim = 0.5 * (1.0 + Cosine(a, b));
  RLBENCH_DCHECK_PROB(sim);
  return sim;
}

double EuclideanDistance(const Vec& a, const Vec& b) {
  RLBENCH_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = double{a[i]} - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

double EuclideanSimilarity(const Vec& a, const Vec& b) {
  double sim = 1.0 / (1.0 + EuclideanDistance(a, b));
  RLBENCH_DCHECK_PROB(sim);
  return sim;
}

double WassersteinSimilarity(const Vec& a, const Vec& b) {
  RLBENCH_CHECK_EQ(a.size(), b.size());
  Vec sa = a;
  Vec sb = b;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  double w = 0.0;
  for (size_t i = 0; i < sa.size(); ++i) w += std::fabs(double{sa[i]} - sb[i]);
  if (!sa.empty()) w /= static_cast<double>(sa.size());
  RLBENCH_DCHECK_FINITE(w);
  return 1.0 / (1.0 + w);
}

void AddInPlace(Vec* a, const Vec& b) {
  RLBENCH_CHECK_EQ(a->size(), b.size());
  for (size_t i = 0; i < a->size(); ++i) (*a)[i] += b[i];
}

void ScaleInPlace(Vec* a, float factor) {
  for (float& x : *a) x *= factor;
}

void AxpyInPlace(Vec* a, float factor, const Vec& b) {
  RLBENCH_CHECK_EQ(a->size(), b.size());
  for (size_t i = 0; i < a->size(); ++i) (*a)[i] += factor * b[i];
}

void L2NormalizeInPlace(Vec* a) {
  double norm = Norm(*a);
  if (norm == 0.0) return;
  RLBENCH_DCHECK_FINITE(norm);
  ScaleInPlace(a, static_cast<float>(1.0 / norm));
}

Vec InteractionFeatures(const Vec& a, const Vec& b) {
  RLBENCH_CHECK_EQ(a.size(), b.size());
  Vec out(2 * a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    out[i] = std::fabs(a[i] - b[i]);
    out[a.size() + i] = a[i] * b[i];
  }
  return out;
}

}  // namespace rlbench::embed
