// Dynamic (context-aware) token encoding: the offline stand-in for
// BERT/RoBERTa-style models.
//
// Token vectors start from the static hashed embedding and are then mixed
// with their neighbours through one scaled dot-product attention pass whose
// keys are IDF-weighted, so the same token receives different vectors in
// different records — the defining property of the "dynamic" cell in the
// paper's taxonomy. A model-variant salt lets us instantiate two distinct
// encoders (the EMTransformer-B vs EMTransformer-R analogy).
#ifndef RLBENCH_SRC_EMBED_CONTEXT_ENCODER_H_
#define RLBENCH_SRC_EMBED_CONTEXT_ENCODER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "embed/hashed_embedding.h"
#include "embed/vector_ops.h"
#include "text/tfidf.h"

namespace rlbench::embed {

/// \brief One-pass attention context mixer over static token embeddings.
class ContextEncoder {
 public:
  /// The TF-IDF model supplies token-salience weights and must outlive the
  /// encoder; `variant_salt` decorrelates different simulated checkpoints.
  ContextEncoder(size_t dim, uint64_t seed, uint64_t variant_salt,
                 const text::TfIdfModel* tfidf);

  size_t dim() const { return static_.dim(); }

  /// Contextualised vectors, one per input token.
  std::vector<Vec> EncodeTokens(const std::vector<std::string>& tokens) const;

  /// Sequence embedding: IDF-weighted mean of the contextualised token
  /// vectors, L2-normalised (the [CLS]-pooling analogue).
  Vec EncodeSequence(const std::vector<std::string>& tokens) const;

 private:
  HashedEmbedding static_;
  const text::TfIdfModel* tfidf_;
  double mixing_ = 0.3;  // how much context flows into each token vector
};

}  // namespace rlbench::embed

#endif  // RLBENCH_SRC_EMBED_CONTEXT_ENCODER_H_
