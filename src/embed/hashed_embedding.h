// Static subword embeddings: the offline stand-in for fastText.
//
// Each token vector is the normalised sum of deterministic pseudo-random
// vectors of its character n-grams (n in [3,5]) plus the whole token — the
// same composition rule fastText uses, so the vectors are static (context
// independent) and robust to typos, which is exactly what the paper's
// taxonomy relies on for "static" methods.
#ifndef RLBENCH_SRC_EMBED_HASHED_EMBEDDING_H_
#define RLBENCH_SRC_EMBED_HASHED_EMBEDDING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "embed/vector_ops.h"

namespace rlbench::embed {

/// \brief Deterministic hashed subword embedding model.
///
/// Stateless apart from (dimension, seed): the vector of a token is a pure
/// function of its bytes, so no training corpus or storage is needed and
/// two processes with the same seed produce identical embeddings.
class HashedEmbedding {
 public:
  HashedEmbedding(size_t dim, uint64_t seed) : dim_(dim), seed_(seed) {}

  size_t dim() const { return dim_; }

  /// Embedding of one token (unit L2 norm; zero vector for empty token).
  Vec EmbedToken(std::string_view token) const;

  /// Mean-pooled embedding of a token sequence, L2-normalised.
  Vec EmbedTokens(const std::vector<std::string>& tokens) const;

  /// Tokenise the text and embed the resulting sequence.
  Vec EmbedText(std::string_view text) const;

 private:
  /// Add the deterministic pseudo-random vector of `key` into `out`.
  void AccumulateHashed(std::string_view key, Vec* out) const;

  size_t dim_;
  uint64_t seed_;
};

}  // namespace rlbench::embed

#endif  // RLBENCH_SRC_EMBED_HASHED_EMBEDDING_H_
