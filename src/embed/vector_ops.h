// Dense vector operations shared by the embedding substrates, the
// DL-matcher simulators and the SAS/SBS-ESDE feature extractors.
#ifndef RLBENCH_SRC_EMBED_VECTOR_OPS_H_
#define RLBENCH_SRC_EMBED_VECTOR_OPS_H_

#include <vector>

namespace rlbench::embed {

using Vec = std::vector<float>;

double Dot(const Vec& a, const Vec& b);
double Norm(const Vec& a);

/// Cosine similarity mapped to [0, 1]: (1 + cos) / 2 for general vectors;
/// returns 0 for a zero vector.
double CosineSimilarity01(const Vec& a, const Vec& b);

/// Raw cosine in [-1, 1] (0 for zero vectors).
double Cosine(const Vec& a, const Vec& b);

double EuclideanDistance(const Vec& a, const Vec& b);

/// Euclidean similarity 1 / (1 + dist), as used by SAS-ESDE.
double EuclideanSimilarity(const Vec& a, const Vec& b);

/// 1-D Wasserstein (earth mover's) distance between the sorted coordinate
/// distributions of the two vectors, turned into a similarity 1 / (1 + W).
/// This is the paper's "Wasserstein similarity" of embedding vectors.
double WassersteinSimilarity(const Vec& a, const Vec& b);

void AddInPlace(Vec* a, const Vec& b);
void ScaleInPlace(Vec* a, float factor);
void AxpyInPlace(Vec* a, float factor, const Vec& b);  // a += factor * b

/// Normalise to unit L2 norm (no-op for zero vectors).
void L2NormalizeInPlace(Vec* a);

/// Element-wise |a - b| followed by element-wise a * b, concatenated:
/// the standard interaction features fed to matcher classifiers.
Vec InteractionFeatures(const Vec& a, const Vec& b);

}  // namespace rlbench::embed

#endif  // RLBENCH_SRC_EMBED_VECTOR_OPS_H_
