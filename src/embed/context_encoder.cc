#include "embed/context_encoder.h"

#include <cmath>

namespace rlbench::embed {

ContextEncoder::ContextEncoder(size_t dim, uint64_t seed,
                               uint64_t variant_salt,
                               const text::TfIdfModel* tfidf)
    : static_(dim, seed ^ variant_salt), tfidf_(tfidf) {}

std::vector<Vec> ContextEncoder::EncodeTokens(
    const std::vector<std::string>& tokens) const {
  std::vector<Vec> base;
  base.reserve(tokens.size());
  std::vector<double> idf(tokens.size(), 1.0);
  for (size_t i = 0; i < tokens.size(); ++i) {
    base.push_back(static_.EmbedToken(tokens[i]));
    if (tfidf_ != nullptr) idf[i] = tfidf_->Idf(tokens[i]);
  }

  // One attention pass: each token attends over all tokens; attention
  // logits are cosine affinity scaled by the key token's IDF salience.
  std::vector<Vec> mixed(base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    std::vector<double> weights(base.size());
    double max_logit = -1e30;
    for (size_t j = 0; j < base.size(); ++j) {
      double logit = Dot(base[i], base[j]) * idf[j];
      weights[j] = logit;
      if (logit > max_logit) max_logit = logit;
    }
    double denom = 0.0;
    for (double& w : weights) {
      w = std::exp(w - max_logit);
      denom += w;
    }
    Vec context(static_.dim(), 0.0F);
    for (size_t j = 0; j < base.size(); ++j) {
      AxpyInPlace(&context, static_cast<float>(weights[j] / denom), base[j]);
    }
    Vec out = base[i];
    ScaleInPlace(&out, static_cast<float>(1.0 - mixing_));
    AxpyInPlace(&out, static_cast<float>(mixing_), context);
    L2NormalizeInPlace(&out);
    mixed[i] = std::move(out);
  }
  return mixed;
}

Vec ContextEncoder::EncodeSequence(
    const std::vector<std::string>& tokens) const {
  Vec pooled(static_.dim(), 0.0F);
  if (tokens.empty()) return pooled;
  auto vecs = EncodeTokens(tokens);
  double total_weight = 0.0;
  for (size_t i = 0; i < vecs.size(); ++i) {
    double w = tfidf_ != nullptr ? tfidf_->Idf(tokens[i]) : 1.0;
    AxpyInPlace(&pooled, static_cast<float>(w), vecs[i]);
    total_weight += w;
  }
  if (total_weight <= 1e-12) {
    // No salience information (e.g. empty corpus): plain mean pooling.
    pooled.assign(static_.dim(), 0.0F);
    for (const auto& vec : vecs) AddInPlace(&pooled, vec);
    total_weight = static_cast<double>(vecs.size());
  }
  if (total_weight > 0.0) {
    ScaleInPlace(&pooled, static_cast<float>(1.0 / total_weight));
  }
  L2NormalizeInPlace(&pooled);
  return pooled;
}

}  // namespace rlbench::embed
