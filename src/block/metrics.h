// Blocking quality metrics: pair completeness (PC, recall) and pairs
// quality (PQ, precision), as used throughout Section VI and Table V.
#ifndef RLBENCH_SRC_BLOCK_METRICS_H_
#define RLBENCH_SRC_BLOCK_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rlbench::block {

/// One candidate pair: (index into D1, index into D2).
using CandidatePair = std::pair<uint32_t, uint32_t>;

struct BlockingMetrics {
  double pair_completeness = 0.0;  // PC: |candidates ∩ matches| / |matches|
  double pairs_quality = 0.0;      // PQ: |candidates ∩ matches| / |candidates|
  size_t true_candidates = 0;      // |candidates ∩ matches|
  size_t num_candidates = 0;
};

/// Evaluate a candidate set against the ground truth. Duplicate candidate
/// or match pairs are counted once; PC and PQ are guaranteed in [0, 1].
BlockingMetrics EvaluateBlocking(const std::vector<CandidatePair>& candidates,
                                 const std::vector<CandidatePair>& matches);

}  // namespace rlbench::block

#endif  // RLBENCH_SRC_BLOCK_METRICS_H_
