#include "block/sorted_neighborhood.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "common/check.h"
#include "common/strings.h"
#include "text/tokenizer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rlbench::block {

std::vector<CandidatePair> SortedNeighborhoodBlocking(
    const data::Table& d1, const data::Table& d2,
    const SortedNeighborhoodOptions& options) {
  RLBENCH_TRACE_SPAN("block/sorted_neighborhood");
  RLBENCH_CHECK_LE(d1.size(), std::numeric_limits<uint32_t>::max());
  RLBENCH_CHECK_LE(d2.size(), std::numeric_limits<uint32_t>::max());
  struct Entry {
    std::string key;
    uint32_t record;
    bool from_d1;
  };
  std::vector<Entry> entries;
  entries.reserve(d1.size() + d2.size());
  auto make_key = [&](const data::Record& record) {
    auto tokens = text::Tokenize(record.ConcatenatedValues());
    std::sort(tokens.begin(), tokens.end());
    tokens.resize(std::min(tokens.size(), options.key_tokens));
    return Join(tokens, " ");
  };
  for (size_t i = 0; i < d1.size(); ++i) {
    entries.push_back({make_key(d1.record(i)), static_cast<uint32_t>(i),
                       true});
  }
  for (size_t i = 0; i < d2.size(); ++i) {
    entries.push_back({make_key(d2.record(i)), static_cast<uint32_t>(i),
                       false});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.key < b.key; });

  std::unordered_set<uint64_t> seen;
  std::vector<CandidatePair> candidates;
  for (size_t i = 0; i < entries.size(); ++i) {
    size_t limit = std::min(entries.size(), i + options.window);
    for (size_t j = i + 1; j < limit; ++j) {
      if (entries[i].from_d1 == entries[j].from_d1) continue;
      uint32_t left = entries[i].from_d1 ? entries[i].record
                                         : entries[j].record;
      uint32_t right = entries[i].from_d1 ? entries[j].record
                                          : entries[i].record;
      RLBENCH_DCHECK_INDEX(left, d1.size());
      RLBENCH_DCHECK_INDEX(right, d2.size());
      uint64_t key = (static_cast<uint64_t>(left) << 32) | right;
      if (seen.insert(key).second) candidates.emplace_back(left, right);
    }
  }
  RLBENCH_COUNTER_ADD("block/sorted_neighborhood/candidates",
                      candidates.size());
  return candidates;
}

}  // namespace rlbench::block
