// Q-gram blocking: candidates share at least one character q-gram, which
// tolerates typos that break token blocking. The classic robust-but-loose
// baseline from the blocking survey the paper builds on.
#ifndef RLBENCH_SRC_BLOCK_QGRAM_BLOCKING_H_
#define RLBENCH_SRC_BLOCK_QGRAM_BLOCKING_H_

#include <vector>

#include "block/metrics.h"
#include "data/record.h"

namespace rlbench::block {

struct QGramBlockingOptions {
  int q = 3;
  /// Grams whose block would exceed this size are skipped.
  size_t max_block_size = 400;
  /// Minimum number of shared grams before a pair becomes a candidate
  /// (raising it trades recall for precision).
  size_t min_shared_grams = 1;
  size_t max_candidates = 0;  // 0 = unlimited
};

/// Candidate pairs of records sharing >= min_shared_grams q-grams over
/// their concatenated values.
std::vector<CandidatePair> QGramBlocking(const data::Table& d1,
                                         const data::Table& d2,
                                         const QGramBlockingOptions& options);

}  // namespace rlbench::block

#endif  // RLBENCH_SRC_BLOCK_QGRAM_BLOCKING_H_
