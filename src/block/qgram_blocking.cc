#include "block/qgram_blocking.h"

#include <limits>
#include <unordered_map>

#include "common/check.h"
#include "text/qgrams.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rlbench::block {

std::vector<CandidatePair> QGramBlocking(const data::Table& d1,
                                         const data::Table& d2,
                                         const QGramBlockingOptions& options) {
  RLBENCH_TRACE_SPAN("block/qgram");
  RLBENCH_CHECK_LE(d1.size(), std::numeric_limits<uint32_t>::max());
  RLBENCH_CHECK_LE(d2.size(), std::numeric_limits<uint32_t>::max());
  RLBENCH_CHECK_GT(options.q, 0);
  // Inverted index over d2's q-grams.
  std::unordered_map<uint64_t, std::vector<uint32_t>> index;
  for (size_t i = 0; i < d2.size(); ++i) {
    const auto set =
        text::QGramSet(d2.record(i).ConcatenatedValues(), options.q);
    for (uint64_t hash : set.hashes()) {
      index[hash].push_back(static_cast<uint32_t>(i));
    }
  }

  std::vector<CandidatePair> candidates;
  std::unordered_map<uint32_t, size_t> shared;  // d2 record -> shared grams
  for (size_t i = 0; i < d1.size(); ++i) {
    shared.clear();
    const auto set =
        text::QGramSet(d1.record(i).ConcatenatedValues(), options.q);
    for (uint64_t hash : set.hashes()) {
      auto it = index.find(hash);
      if (it == index.end()) continue;
      if (it->second.size() > options.max_block_size) continue;
      for (uint32_t j : it->second) ++shared[j];
    }
    for (const auto& [j, count] : shared) {
      if (count < options.min_shared_grams) continue;
      RLBENCH_DCHECK_INDEX(j, d2.size());
      candidates.emplace_back(static_cast<uint32_t>(i), j);
      if (options.max_candidates > 0 &&
          candidates.size() >= options.max_candidates) {
        RLBENCH_COUNTER_ADD("block/qgram/candidates", candidates.size());
        return candidates;
      }
    }
  }
  RLBENCH_COUNTER_ADD("block/qgram/candidates", candidates.size());
  return candidates;
}

}  // namespace rlbench::block
