// DeepBlocker simulator: embedding-based top-K nearest-neighbour blocking
// plus the Section VI grid-search tuner.
//
// The original DeepBlocker embeds records with fastText + a self-supervised
// autoencoder and retrieves each query record's K most similar index
// records. We reproduce the same architecture with the deterministic hashed
// subword embeddings: index one source, query with the other, keep the K
// best by cosine. The tuner then explores {attribute choice, cleaning,
// indexed side} and picks the smallest K whose recall (PC) reaches the
// target, maximising precision (PQ) — exactly the methodology of Table V.
#ifndef RLBENCH_SRC_BLOCK_DEEPBLOCKER_SIM_H_
#define RLBENCH_SRC_BLOCK_DEEPBLOCKER_SIM_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "block/metrics.h"
#include "datagen/source_builder.h"
#include "embed/hashed_embedding.h"

namespace rlbench::block {

/// One point of the DeepBlocker configuration grid.
struct BlockerConfig {
  /// Attribute supplying the blocked text; -1 = all attributes concatenated
  /// (the schema-agnostic setting).
  int attr = -1;
  /// Apply cleaning (stop-word removal + stemming) before embedding.
  bool clean = false;
  /// Index D2 and query with D1's records (false = the reverse).
  bool index_d2 = true;
  /// Neighbours retrieved per query record.
  int k = 10;
};

std::string ConfigToString(const BlockerConfig& config,
                           const data::Schema& schema);

struct BlockingRun {
  BlockerConfig config;
  std::vector<CandidatePair> candidates;
  BlockingMetrics metrics;
};

/// \brief Embedding top-K blocker with a recall-targeted tuner.
class DeepBlockerSim {
 public:
  DeepBlockerSim(size_t dim, uint64_t seed) : model_(dim, seed) {}

  /// Run blocking under one fixed configuration.
  BlockingRun Run(const datagen::SourcePair& source,
                  const BlockerConfig& config) const;

  struct TuneOptions {
    double min_recall = 0.9;
    int k_max = 64;
    /// Individual attributes join the grid only when the larger table has
    /// at most this many records (keeps the grid affordable at scale).
    size_t per_attribute_limit = 25000;
  };

  /// Section VI steps 1-2: grid-search the config space, and for each
  /// configuration pick the smallest K reaching min_recall; return the run
  /// with the fewest candidates (maximum PQ) among those reaching it. If no
  /// configuration reaches the target, the run with the highest PC wins.
  BlockingRun TuneForRecall(const datagen::SourcePair& source,
                            const TuneOptions& options) const;

 private:
  /// Record embedding for the configured text selection, with a process-
  /// wide token-vector cache (records share a small vocabulary).
  embed::Vec EmbedRecord(const data::Record& record, int attr,
                         bool clean) const;

  /// Ranked top-k_max neighbour lists for every query record.
  std::vector<std::vector<uint32_t>> RankedNeighbors(
      const data::Table& index_table, const data::Table& query_table,
      int attr, bool clean, int k_max) const;

  embed::HashedEmbedding model_;
  mutable std::unordered_map<std::string, embed::Vec> token_cache_;
};

}  // namespace rlbench::block

#endif  // RLBENCH_SRC_BLOCK_DEEPBLOCKER_SIM_H_
