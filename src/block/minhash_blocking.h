// MinHash-LSH blocking: records with high Jaccard token similarity land in
// a shared band bucket with high probability, giving near-neighbour
// candidate generation in near-linear time — the scalable alternative to
// the exact top-K search of the DeepBlocker simulator.
#ifndef RLBENCH_SRC_BLOCK_MINHASH_BLOCKING_H_
#define RLBENCH_SRC_BLOCK_MINHASH_BLOCKING_H_

#include <cstdint>
#include <vector>

#include "block/metrics.h"
#include "data/record.h"
#include "text/tokenizer.h"

namespace rlbench::block {

struct MinHashOptions {
  size_t num_hashes = 32;  // signature length; must be bands * rows
  size_t bands = 8;
  uint64_t seed = 17;
  /// Buckets larger than this are skipped (stop buckets).
  size_t max_bucket_size = 200;
  size_t max_candidates = 0;  // 0 = unlimited
};

/// Candidate pairs whose MinHash signatures collide in at least one band.
std::vector<CandidatePair> MinHashBlocking(const data::Table& d1,
                                           const data::Table& d2,
                                           const MinHashOptions& options);

/// The MinHash signature of a token set (exposed for tests: the collision
/// probability per hash equals the Jaccard similarity).
std::vector<uint64_t> MinHashSignature(const text::TokenSet& tokens,
                                       size_t num_hashes, uint64_t seed);

}  // namespace rlbench::block

#endif  // RLBENCH_SRC_BLOCK_MINHASH_BLOCKING_H_
