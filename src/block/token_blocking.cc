#include "block/token_blocking.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "text/tokenizer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rlbench::block {

std::vector<CandidatePair> TokenBlocking(const data::Table& d1,
                                         const data::Table& d2,
                                         const TokenBlockingOptions& options) {
  RLBENCH_TRACE_SPAN("block/token");
  // CandidatePair packs record ids into 32 bits each; larger tables would
  // silently truncate.
  RLBENCH_CHECK_LE(d1.size(), std::numeric_limits<uint32_t>::max());
  RLBENCH_CHECK_LE(d2.size(), std::numeric_limits<uint32_t>::max());
  // Inverted index over d2 tokens.
  std::unordered_map<uint64_t, std::vector<uint32_t>> index;
  for (size_t i = 0; i < d2.size(); ++i) {
    const auto& set = text::TokenSet::FromText(
        d2.record(i).ConcatenatedValues());
    for (uint64_t hash : set.hashes()) {
      index[hash].push_back(static_cast<uint32_t>(i));
    }
  }

  std::unordered_set<uint64_t> seen;
  std::vector<CandidatePair> candidates;
  for (size_t i = 0; i < d1.size(); ++i) {
    const auto& set = text::TokenSet::FromText(
        d1.record(i).ConcatenatedValues());
    for (uint64_t hash : set.hashes()) {
      auto it = index.find(hash);
      if (it == index.end()) continue;
      if (it->second.size() > options.max_block_size) continue;
      for (uint32_t j : it->second) {
        RLBENCH_DCHECK_INDEX(j, d2.size());
        uint64_t key = (static_cast<uint64_t>(i) << 32) | j;
        if (!seen.insert(key).second) continue;
        candidates.emplace_back(static_cast<uint32_t>(i), j);
        if (options.max_candidates > 0 &&
            candidates.size() >= options.max_candidates) {
          RLBENCH_COUNTER_ADD("block/token/candidates", candidates.size());
          return candidates;
        }
      }
    }
  }
  RLBENCH_COUNTER_ADD("block/token/candidates", candidates.size());
  return candidates;
}

}  // namespace rlbench::block
