#include "block/metrics.h"

#include <unordered_set>

namespace rlbench::block {

namespace {
uint64_t Key(const CandidatePair& pair) {
  return (static_cast<uint64_t>(pair.first) << 32) | pair.second;
}
}  // namespace

BlockingMetrics EvaluateBlocking(const std::vector<CandidatePair>& candidates,
                                 const std::vector<CandidatePair>& matches) {
  BlockingMetrics metrics;
  metrics.num_candidates = candidates.size();
  if (matches.empty()) return metrics;

  std::unordered_set<uint64_t> truth;
  truth.reserve(matches.size() * 2);
  for (const auto& match : matches) truth.insert(Key(match));

  for (const auto& candidate : candidates) {
    if (truth.count(Key(candidate)) != 0) ++metrics.true_candidates;
  }
  metrics.pair_completeness = static_cast<double>(metrics.true_candidates) /
                              static_cast<double>(matches.size());
  if (!candidates.empty()) {
    metrics.pairs_quality = static_cast<double>(metrics.true_candidates) /
                            static_cast<double>(candidates.size());
  }
  return metrics;
}

}  // namespace rlbench::block
