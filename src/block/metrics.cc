#include "block/metrics.h"

#include <unordered_set>

#include "common/check.h"

namespace rlbench::block {

namespace {
uint64_t Key(const CandidatePair& pair) {
  return (static_cast<uint64_t>(pair.first) << 32) | pair.second;
}
}  // namespace

BlockingMetrics EvaluateBlocking(const std::vector<CandidatePair>& candidates,
                                 const std::vector<CandidatePair>& matches) {
  BlockingMetrics metrics;
  metrics.num_candidates = candidates.size();
  if (matches.empty()) return metrics;

  std::unordered_set<uint64_t> truth;
  truth.reserve(matches.size() * 2);
  for (const auto& match : matches) truth.insert(Key(match));
  size_t distinct_matches = truth.size();

  // Erase found keys so a duplicated candidate pair cannot count the same
  // ground-truth match twice and push pair completeness past 1.0.
  for (const auto& candidate : candidates) {
    if (truth.erase(Key(candidate)) != 0) ++metrics.true_candidates;
  }
  RLBENCH_CHECK_LE(metrics.true_candidates, distinct_matches);
  metrics.pair_completeness = static_cast<double>(metrics.true_candidates) /
                              static_cast<double>(distinct_matches);
  if (!candidates.empty()) {
    metrics.pairs_quality = static_cast<double>(metrics.true_candidates) /
                            static_cast<double>(candidates.size());
  }
  RLBENCH_CHECK_PROB(metrics.pair_completeness);
  RLBENCH_CHECK_PROB(metrics.pairs_quality);
  return metrics;
}

}  // namespace rlbench::block
