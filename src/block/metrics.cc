#include "block/metrics.h"

#include <unordered_set>

#include "common/check.h"
#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rlbench::block {

namespace {
uint64_t Key(const CandidatePair& pair) {
  return (static_cast<uint64_t>(pair.first) << 32) | pair.second;
}
}  // namespace

BlockingMetrics EvaluateBlocking(const std::vector<CandidatePair>& candidates,
                                 const std::vector<CandidatePair>& matches) {
  RLBENCH_TRACE_SPAN("block/evaluate");
  RLBENCH_COUNTER_ADD("block/evaluated_candidates", candidates.size());
  BlockingMetrics metrics;
  metrics.num_candidates = candidates.size();
  if (matches.empty()) return metrics;

  std::unordered_set<uint64_t> truth;
  truth.reserve(matches.size() * 2);
  for (const auto& match : matches) truth.insert(Key(match));
  size_t distinct_matches = truth.size();

  // Stage 1 (parallel): probe the immutable truth set for every candidate —
  // the O(candidates) hashing work. Concurrent reads of the set are safe
  // and each index writes only its own flag slot.
  std::vector<uint8_t> is_truth(candidates.size(), 0);
  ParallelFor(0, candidates.size(), kDefaultGrain, [&](size_t i) {
    is_truth[i] = truth.count(Key(candidates[i])) != 0 ? 1 : 0;
  });
  // Stage 2 (serial): erase flagged keys so a duplicated candidate pair
  // cannot count the same ground-truth match twice and push pair
  // completeness past 1.0. Only the (few) flagged candidates are touched.
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (is_truth[i] != 0 && truth.erase(Key(candidates[i])) != 0) {
      ++metrics.true_candidates;
    }
  }
  RLBENCH_COUNTER_ADD("block/true_candidates", metrics.true_candidates);
  RLBENCH_CHECK_LE(metrics.true_candidates, distinct_matches);
  metrics.pair_completeness = static_cast<double>(metrics.true_candidates) /
                              static_cast<double>(distinct_matches);
  if (!candidates.empty()) {
    metrics.pairs_quality = static_cast<double>(metrics.true_candidates) /
                            static_cast<double>(candidates.size());
  }
  RLBENCH_CHECK_PROB(metrics.pair_completeness);
  RLBENCH_CHECK_PROB(metrics.pairs_quality);
  return metrics;
}

}  // namespace rlbench::block
