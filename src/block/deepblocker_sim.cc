#include "block/deepblocker_sim.h"

#include <algorithm>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/normalize.h"
#include "text/tokenizer.h"

namespace rlbench::block {

std::string ConfigToString(const BlockerConfig& config,
                           const data::Schema& schema) {
  std::string out;
  out += config.attr < 0 ? "all" : schema.attribute(config.attr);
  out += config.clean ? " cl=y" : " cl=n";
  out += " K=" + std::to_string(config.k);
  out += config.index_d2 ? " ind=D2" : " ind=D1";
  return out;
}

embed::Vec DeepBlockerSim::EmbedRecord(const data::Record& record, int attr,
                                       bool clean) const {
  std::string raw = attr < 0 ? record.ConcatenatedValues()
                             : record.values[static_cast<size_t>(attr)];
  auto tokens = text::Tokenize(raw);
  if (clean) tokens = text::StemAll(text::RemoveStopWords(tokens));

  embed::Vec out(model_.dim(), 0.0F);
  if (tokens.empty()) return out;
  for (const auto& token : tokens) {
    auto it = token_cache_.find(token);
    if (it == token_cache_.end()) {
      it = token_cache_.emplace(token, model_.EmbedToken(token)).first;
    }
    embed::AddInPlace(&out, it->second);
  }
  embed::ScaleInPlace(&out, 1.0F / static_cast<float>(tokens.size()));
  embed::L2NormalizeInPlace(&out);
  return out;
}

std::vector<std::vector<uint32_t>> DeepBlockerSim::RankedNeighbors(
    const data::Table& index_table, const data::Table& query_table, int attr,
    bool clean, int k_max) const {
  RLBENCH_TRACE_SPAN("block/deepblocker/rank");
  size_t dim = model_.dim();
  size_t index_size = index_table.size();
  std::vector<float> index_matrix(index_size * dim);
  for (size_t i = 0; i < index_size; ++i) {
    embed::Vec v = EmbedRecord(index_table.record(i), attr, clean);
    std::copy(v.begin(), v.end(), index_matrix.begin() + i * dim);
  }

  size_t k = std::min<size_t>(k_max, index_size);
  std::vector<std::vector<uint32_t>> ranked(query_table.size());
  std::vector<std::pair<float, uint32_t>> scores(index_size);
  for (size_t q = 0; q < query_table.size(); ++q) {
    embed::Vec qv = EmbedRecord(query_table.record(q), attr, clean);
    for (size_t i = 0; i < index_size; ++i) {
      const float* row = &index_matrix[i * dim];
      float dot = 0.0F;
      for (size_t d = 0; d < dim; ++d) dot += row[d] * qv[d];
      scores[i] = {dot, static_cast<uint32_t>(i)};
    }
    std::partial_sort(scores.begin(), scores.begin() + k, scores.end(),
                      [](const auto& a, const auto& b) {
                        return a.first > b.first;
                      });
    ranked[q].reserve(k);
    for (size_t r = 0; r < k; ++r) ranked[q].push_back(scores[r].second);
  }
  return ranked;
}

namespace {

/// Translate ranked neighbour lists truncated at k into (d1, d2) candidate
/// pairs, respecting which table was indexed.
std::vector<CandidatePair> MaterializeCandidates(
    const std::vector<std::vector<uint32_t>>& ranked, int k, bool index_d2) {
  std::vector<CandidatePair> candidates;
  candidates.reserve(ranked.size() * static_cast<size_t>(k));
  for (size_t q = 0; q < ranked.size(); ++q) {
    size_t limit = std::min<size_t>(k, ranked[q].size());
    for (size_t r = 0; r < limit; ++r) {
      if (index_d2) {
        candidates.emplace_back(static_cast<uint32_t>(q), ranked[q][r]);
      } else {
        candidates.emplace_back(ranked[q][r], static_cast<uint32_t>(q));
      }
    }
  }
  return candidates;
}

}  // namespace

BlockingRun DeepBlockerSim::Run(const datagen::SourcePair& source,
                                const BlockerConfig& config) const {
  RLBENCH_TRACE_SPAN("block/deepblocker/run");
  const data::Table& index_table = config.index_d2 ? source.d2 : source.d1;
  const data::Table& query_table = config.index_d2 ? source.d1 : source.d2;
  auto ranked = RankedNeighbors(index_table, query_table, config.attr,
                                config.clean, config.k);
  BlockingRun run;
  run.config = config;
  run.candidates = MaterializeCandidates(ranked, config.k, config.index_d2);
  RLBENCH_COUNTER_ADD("block/deepblocker/candidates", run.candidates.size());
  run.metrics = EvaluateBlocking(run.candidates, source.matches);
  return run;
}

BlockingRun DeepBlockerSim::TuneForRecall(const datagen::SourcePair& source,
                                          const TuneOptions& options) const {
  RLBENCH_TRACE_SPAN("block/deepblocker/tune");
  size_t larger = std::max(source.d1.size(), source.d2.size());
  std::vector<int> attrs = {-1};
  if (larger <= options.per_attribute_limit) {
    for (size_t a = 0; a < source.d1.schema().num_attributes(); ++a) {
      attrs.push_back(static_cast<int>(a));
    }
  }

  bool found_any = false;
  BlockingRun best;
  BlockingRun best_recall_fallback;
  double best_fallback_pc = -1.0;

  for (int attr : attrs) {
    for (bool clean : {false, true}) {
      for (bool index_d2 : {true, false}) {
        const data::Table& index_table = index_d2 ? source.d2 : source.d1;
        const data::Table& query_table = index_d2 ? source.d1 : source.d2;
        auto ranked = RankedNeighbors(index_table, query_table, attr, clean,
                                      options.k_max);
        // PC is monotone in k, so binary-search-free scan from k = 1 up and
        // stop at the first k reaching the target (minimum candidates for
        // this configuration).
        for (int k = 1; k <= options.k_max; ++k) {
          auto candidates = MaterializeCandidates(ranked, k, index_d2);
          BlockingMetrics metrics =
              EvaluateBlocking(candidates, source.matches);
          RLBENCH_COUNTER_INC("block/deepblocker/configs_tried");
          BlockerConfig config{attr, clean, index_d2, k};
          if (metrics.pair_completeness > best_fallback_pc) {
            best_fallback_pc = metrics.pair_completeness;
            best_recall_fallback = {config, candidates, metrics};
          }
          if (metrics.pair_completeness >= options.min_recall) {
            if (!found_any ||
                candidates.size() < best.candidates.size()) {
              best = {config, std::move(candidates), metrics};
              found_any = true;
            }
            break;  // larger k only adds candidates
          }
        }
      }
    }
  }
  return found_any ? best : best_recall_fallback;
}

}  // namespace rlbench::block
