// Sorted-neighbourhood blocking: sort all records of both sources by a
// blocking key (here: their sorted token signature) and slide a fixed-size
// window; records of different sources inside the same window become
// candidates. The classic bounded-cost alternative to token blocking.
#ifndef RLBENCH_SRC_BLOCK_SORTED_NEIGHBORHOOD_H_
#define RLBENCH_SRC_BLOCK_SORTED_NEIGHBORHOOD_H_

#include <vector>

#include "block/metrics.h"
#include "data/record.h"

namespace rlbench::block {

struct SortedNeighborhoodOptions {
  size_t window = 10;
  /// Number of leading (lexicographically smallest) tokens forming the key.
  size_t key_tokens = 3;
};

std::vector<CandidatePair> SortedNeighborhoodBlocking(
    const data::Table& d1, const data::Table& d2,
    const SortedNeighborhoodOptions& options);

}  // namespace rlbench::block

#endif  // RLBENCH_SRC_BLOCK_SORTED_NEIGHBORHOOD_H_
