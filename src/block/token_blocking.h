// Classic token blocking: every pair of records sharing at least one token
// becomes a candidate. Serves as the loose-blocking baseline the paper
// contrasts with fine-tuned nearest-neighbour blocking.
#ifndef RLBENCH_SRC_BLOCK_TOKEN_BLOCKING_H_
#define RLBENCH_SRC_BLOCK_TOKEN_BLOCKING_H_

#include <vector>

#include "block/metrics.h"
#include "data/record.h"

namespace rlbench::block {

struct TokenBlockingOptions {
  /// Tokens whose block would exceed this size are skipped (stop tokens).
  size_t max_block_size = 200;
  /// Hard cap on emitted candidates (0 = unlimited).
  size_t max_candidates = 0;
};

/// Candidate pairs of records from d1 x d2 sharing at least one token in
/// any attribute value (schema-agnostic), deduplicated.
std::vector<CandidatePair> TokenBlocking(const data::Table& d1,
                                         const data::Table& d2,
                                         const TokenBlockingOptions& options);

}  // namespace rlbench::block

#endif  // RLBENCH_SRC_BLOCK_TOKEN_BLOCKING_H_
