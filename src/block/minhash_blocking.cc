#include "block/minhash_blocking.h"

#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/rng.h"
#include "common/strings.h"
#include "text/tokenizer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rlbench::block {

std::vector<uint64_t> MinHashSignature(const text::TokenSet& tokens,
                                       size_t num_hashes, uint64_t seed) {
  std::vector<uint64_t> signature(
      num_hashes, std::numeric_limits<uint64_t>::max());
  for (uint64_t hash : tokens.hashes()) {
    for (size_t k = 0; k < num_hashes; ++k) {
      // A distinct mixing per hash function, derived from the seed.
      uint64_t mixed = SplitMix64(hash ^ SplitMix64(seed + k));
      signature[k] = std::min(signature[k], mixed);
    }
  }
  return signature;
}

std::vector<CandidatePair> MinHashBlocking(const data::Table& d1,
                                           const data::Table& d2,
                                           const MinHashOptions& options) {
  RLBENCH_TRACE_SPAN("block/minhash");
  RLBENCH_CHECK_LE(d1.size(), std::numeric_limits<uint32_t>::max());
  RLBENCH_CHECK_LE(d2.size(), std::numeric_limits<uint32_t>::max());
  size_t bands = std::max<size_t>(1, options.bands);
  size_t rows = std::max<size_t>(1, options.num_hashes / bands);

  // Band-bucket index over d2.
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
  auto band_keys = [&](const data::Record& record) {
    auto signature = MinHashSignature(
        text::TokenSet::FromText(record.ConcatenatedValues()),
        bands * rows, options.seed);
    std::vector<uint64_t> keys(bands);
    for (size_t b = 0; b < bands; ++b) {
      uint64_t key = 0xCBF29CE484222325ULL ^ (b + 1);
      for (size_t r = 0; r < rows; ++r) {
        key = SplitMix64(key ^ signature[b * rows + r]);
      }
      keys[b] = key;
    }
    return keys;
  };

  for (size_t i = 0; i < d2.size(); ++i) {
    for (uint64_t key : band_keys(d2.record(i))) {
      buckets[key].push_back(static_cast<uint32_t>(i));
    }
  }

  std::unordered_set<uint64_t> seen;
  std::vector<CandidatePair> candidates;
  for (size_t i = 0; i < d1.size(); ++i) {
    for (uint64_t key : band_keys(d1.record(i))) {
      auto it = buckets.find(key);
      if (it == buckets.end()) continue;
      if (it->second.size() > options.max_bucket_size) continue;
      for (uint32_t j : it->second) {
        RLBENCH_DCHECK_INDEX(j, d2.size());
        uint64_t pair_key = (static_cast<uint64_t>(i) << 32) | j;
        if (!seen.insert(pair_key).second) continue;
        candidates.emplace_back(static_cast<uint32_t>(i), j);
        if (options.max_candidates > 0 &&
            candidates.size() >= options.max_candidates) {
          RLBENCH_COUNTER_ADD("block/minhash/candidates", candidates.size());
          return candidates;
        }
      }
    }
  }
  RLBENCH_COUNTER_ADD("block/minhash/candidates", candidates.size());
  return candidates;
}

}  // namespace rlbench::block
