#include "ml/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace rlbench::ml {

double Confusion::Precision() const {
  size_t denom = true_positives + false_positives;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double Confusion::Recall() const {
  size_t denom = true_positives + false_negatives;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double Confusion::F1() const {
  double p = Precision();
  double r = Recall();
  RLBENCH_DCHECK_PROB(p);
  RLBENCH_DCHECK_PROB(r);
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double Confusion::Accuracy() const {
  size_t total = true_positives + false_positives + true_negatives +
                 false_negatives;
  return total == 0 ? 0.0
                    : static_cast<double>(true_positives + true_negatives) /
                          static_cast<double>(total);
}

double Confusion::MatthewsCorrelation() const {
  double tp = static_cast<double>(true_positives);
  double fp = static_cast<double>(false_positives);
  double tn = static_cast<double>(true_negatives);
  double fn = static_cast<double>(false_negatives);
  double denom = std::sqrt((tp + fp) * (tp + fn) * (tn + fp) * (tn + fn));
  if (denom == 0.0) return 0.0;
  double mcc = (tp * tn - fp * fn) / denom;
  RLBENCH_DCHECK_GE(mcc, -1.0 - 1e-9);
  RLBENCH_DCHECK_LE(mcc, 1.0 + 1e-9);
  return mcc;
}

Confusion Evaluate(const std::vector<uint8_t>& truth,
                   const std::vector<uint8_t>& predicted) {
  RLBENCH_CHECK_EQ(truth.size(), predicted.size());
  Confusion c;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] != 0) {
      if (predicted[i] != 0) {
        ++c.true_positives;
      } else {
        ++c.false_negatives;
      }
    } else {
      if (predicted[i] != 0) {
        ++c.false_positives;
      } else {
        ++c.true_negatives;
      }
    }
  }
  return c;
}

double F1AtThreshold(const std::vector<double>& scores,
                     const std::vector<uint8_t>& truth, double threshold) {
  RLBENCH_CHECK_EQ(scores.size(), truth.size());
  RLBENCH_CHECK_FINITE(threshold);
  Confusion c;
  for (size_t i = 0; i < scores.size(); ++i) {
    bool predicted = threshold <= scores[i];
    if (truth[i] != 0) {
      if (predicted) {
        ++c.true_positives;
      } else {
        ++c.false_negatives;
      }
    } else if (predicted) {
      ++c.false_positives;
    }
  }
  return c.F1();
}

double AveragePrecision(const std::vector<double>& scores,
                        const std::vector<uint8_t>& truth) {
  RLBENCH_CHECK_EQ(scores.size(), truth.size());
  size_t total_positives = 0;
  for (uint8_t label : truth) total_positives += label;
  if (total_positives == 0) return 0.0;

  std::vector<std::pair<double, uint8_t>> sorted(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) sorted[i] = {scores[i], truth[i]};
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  double sum = 0.0;
  size_t tp = 0;
  for (size_t rank = 0; rank < sorted.size(); ++rank) {
    if (sorted[rank].second == 0) continue;
    ++tp;
    sum += static_cast<double>(tp) / static_cast<double>(rank + 1);
  }
  double ap = sum / static_cast<double>(total_positives);
  RLBENCH_CHECK_PROB(ap);
  return ap;
}

ThresholdSweepResult SweepThresholds(const std::vector<double>& scores,
                                     const std::vector<uint8_t>& truth) {
  RLBENCH_CHECK_EQ(scores.size(), truth.size());
  ThresholdSweepResult result;
  result.best_threshold = 0.01;

  size_t total_positives = 0;
  for (uint8_t label : truth) total_positives += label;

  // Sort (score, label) descending once; walking the 99 thresholds over the
  // sorted array yields cumulative TP / predicted-positive counts.
  std::vector<std::pair<double, uint8_t>> sorted(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) sorted[i] = {scores[i], truth[i]};
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  size_t cursor = 0;
  size_t tp = 0;
  // Thresholds descend so that the cumulative counters only ever grow;
  // we still report the *lowest-index (first swept)* threshold 0.01..0.99,
  // matching Algorithm 1's "keep strictly better" update from low to high.
  struct Candidate {
    double threshold;
    double f1;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(99);
  for (int step = 99; step >= 1; --step) {
    double threshold = step / 100.0;
    while (cursor < sorted.size() && sorted[cursor].first >= threshold) {
      tp += sorted[cursor].second;
      ++cursor;
    }
    size_t predicted_positives = cursor;
    double precision = predicted_positives == 0
                           ? 0.0
                           : static_cast<double>(tp) /
                                 static_cast<double>(predicted_positives);
    double recall = total_positives == 0
                        ? 0.0
                        : static_cast<double>(tp) /
                              static_cast<double>(total_positives);
    double f1 = precision + recall == 0.0
                    ? 0.0
                    : 2.0 * precision * recall / (precision + recall);
    RLBENCH_DCHECK_PROB(f1);
    candidates.push_back({threshold, f1});
  }
  // Algorithm 1 sweeps ascending and keeps the first strict improvement, so
  // replay ascending.
  for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
    if (it->f1 > result.best_f1) {
      result.best_f1 = it->f1;
      result.best_threshold = it->threshold;
    }
  }
  return result;
}

}  // namespace rlbench::ml
