// Gradient-boosted decision trees with logistic loss: the strongest
// classical ensemble Magellan-style matchers use (scikit-learn's
// GradientBoostingClassifier / XGBoost family). Implemented from scratch:
// shallow regression trees fitted to logistic-loss gradients with
// Newton-step leaf values, shrinkage, and row subsampling.
#ifndef RLBENCH_SRC_ML_GBDT_H_
#define RLBENCH_SRC_ML_GBDT_H_

#include <cstdint>
#include <vector>

#include "ml/classifier.h"

namespace rlbench {
class Rng;
}

namespace rlbench::ml {

struct GbdtOptions {
  int rounds = 60;
  int max_depth = 4;
  double learning_rate = 0.15;
  double subsample = 0.8;        // row fraction per round
  size_t min_samples_leaf = 4;
  double l2 = 1.0;               // leaf Newton-step regulariser
  bool balance_classes = true;
  uint64_t seed = 42;
};

/// \brief Binary classifier: boosted regression trees on logistic loss.
class GradientBoostedTrees : public Classifier {
 public:
  explicit GradientBoostedTrees(GbdtOptions options = {})
      : options_(options) {}

  std::string name() const override { return "GBDT"; }
  void Fit(const Dataset& train, const Dataset& valid) override;
  double PredictScore(std::span<const float> row) const override;

  size_t num_trees() const { return trees_.size(); }

 private:
  struct Node {
    int feature = -1;     // -1 = leaf
    float threshold = 0.0F;
    int left = -1;
    int right = -1;
    double value = 0.0;   // leaf contribution to the raw score
    bool IsLeaf() const { return feature < 0; }
  };
  struct Tree {
    std::vector<Node> nodes;
    double Predict(std::span<const float> row) const;
  };

  int BuildNode(const Dataset& data, const std::vector<double>& gradient,
                const std::vector<double>& hessian,
                std::vector<size_t>& indices, size_t begin, size_t end,
                int depth, Tree* tree) const;

  GbdtOptions options_;
  double base_score_ = 0.0;  // initial log-odds
  std::vector<Tree> trees_;
};

}  // namespace rlbench::ml

#endif  // RLBENCH_SRC_ML_GBDT_H_
