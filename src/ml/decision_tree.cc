#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"

namespace rlbench::ml {

namespace {

/// Weighted Gini impurity of a (pos_weight·n_pos, n_neg) split side.
double Gini(double wpos, double wneg) {
  double total = wpos + wneg;
  if (total <= 0.0) return 0.0;
  double p = wpos / total;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

void DecisionTree::Fit(const Dataset& train, const Dataset& valid) {
  (void)valid;
  std::vector<size_t> indices(train.size());
  std::iota(indices.begin(), indices.end(), size_t{0});
  FitOnIndices(train, std::move(indices));
}

void DecisionTree::FitOnIndices(const Dataset& train,
                                std::vector<size_t> indices) {
  nodes_.clear();
  pos_weight_ = 1.0;
  if (options_.balance_classes && !train.empty()) {
    double positives = static_cast<double>(train.CountPositives());
    double negatives = static_cast<double>(train.size()) - positives;
    if (positives > 0.0 && negatives > 0.0) {
      pos_weight_ = negatives / positives;
    }
  }
  if (indices.empty()) {
    nodes_.push_back(Node{});
    return;
  }
  Rng rng(options_.seed);
  BuildNode(train, indices, 0, indices.size(), 0, &rng);
}

int DecisionTree::MakeLeaf(const Dataset& data,
                           const std::vector<size_t>& indices, size_t begin,
                           size_t end) {
  double wpos = 0.0;
  double wneg = 0.0;
  for (size_t k = begin; k < end; ++k) {
    if (data.label(indices[k])) {
      wpos += pos_weight_;
    } else {
      wneg += 1.0;
    }
  }
  Node leaf;
  leaf.score = wpos + wneg > 0.0 ? wpos / (wpos + wneg) : 0.0;
  nodes_.push_back(leaf);
  return static_cast<int>(nodes_.size()) - 1;
}

int DecisionTree::BuildNode(const Dataset& data, std::vector<size_t>& indices,
                            size_t begin, size_t end, int depth, Rng* rng) {
  size_t count = end - begin;
  double wpos = 0.0;
  double wneg = 0.0;
  for (size_t k = begin; k < end; ++k) {
    if (data.label(indices[k])) {
      wpos += pos_weight_;
    } else {
      wneg += 1.0;
    }
  }
  bool pure = wpos == 0.0 || wneg == 0.0;
  if (pure || depth >= options_.max_depth ||
      count < options_.min_samples_split) {
    return MakeLeaf(data, indices, begin, end);
  }

  size_t dim = data.num_features();
  std::vector<size_t> features(dim);
  std::iota(features.begin(), features.end(), size_t{0});
  if (options_.max_features > 0 && options_.max_features < dim) {
    rng->Shuffle(&features);
    features.resize(options_.max_features);
  }

  double parent_impurity = Gini(wpos, wneg);
  double best_gain = 1e-9;
  int best_feature = -1;
  float best_threshold = 0.0F;

  std::vector<std::pair<float, uint8_t>> column(count);
  for (size_t feature : features) {
    for (size_t k = begin; k < end; ++k) {
      column[k - begin] = {data.row(indices[k])[feature],
                           data.label(indices[k]) ? uint8_t{1} : uint8_t{0}};
    }
    std::sort(column.begin(), column.end());
    double left_pos = 0.0;
    double left_neg = 0.0;
    double total = wpos + wneg;
    for (size_t k = 0; k + 1 < count; ++k) {
      if (column[k].second != 0) {
        left_pos += pos_weight_;
      } else {
        left_neg += 1.0;
      }
      if (column[k].first == column[k + 1].first) continue;
      size_t left_count = k + 1;
      size_t right_count = count - left_count;
      if (left_count < options_.min_samples_leaf ||
          right_count < options_.min_samples_leaf) {
        continue;
      }
      double right_pos = wpos - left_pos;
      double right_neg = wneg - left_neg;
      double left_total = left_pos + left_neg;
      double right_total = right_pos + right_neg;
      double weighted = (left_total * Gini(left_pos, left_neg) +
                         right_total * Gini(right_pos, right_neg)) /
                        total;
      double gain = parent_impurity - weighted;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(feature);
        best_threshold = 0.5F * (column[k].first + column[k + 1].first);
      }
    }
  }

  if (best_feature < 0) {
    return MakeLeaf(data, indices, begin, end);
  }

  auto mid_it = std::partition(
      indices.begin() + begin, indices.begin() + end, [&](size_t i) {
        return data.row(i)[best_feature] <= best_threshold;
      });
  size_t mid = static_cast<size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) {
    return MakeLeaf(data, indices, begin, end);
  }

  int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[node_index].feature = best_feature;
  nodes_[node_index].threshold = best_threshold;
  int left = BuildNode(data, indices, begin, mid, depth + 1, rng);
  int right = BuildNode(data, indices, mid, end, depth + 1, rng);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

void DecisionTree::Save(BlobWriter* writer) const {
  writer->WriteDouble(pos_weight_);
  writer->WriteU64(nodes_.size());
  for (const Node& node : nodes_) {
    writer->WriteI32(node.feature);
    writer->WriteFloat(node.threshold);
    writer->WriteI32(node.left);
    writer->WriteI32(node.right);
    writer->WriteDouble(node.score);
  }
}

Status DecisionTree::Load(BlobReader* reader, size_t num_features) {
  RLBENCH_ASSIGN_OR_RETURN(pos_weight_, reader->ReadDouble());
  RLBENCH_ASSIGN_OR_RETURN(uint64_t count, reader->ReadU64());
  // A node needs at least 20 serialized bytes; reject wild counts before
  // the allocation.
  if (count > reader->Remaining() / 20) {
    return Status::IOError("decision tree: truncated node table");
  }
  std::vector<Node> nodes(count);
  for (Node& node : nodes) {
    RLBENCH_ASSIGN_OR_RETURN(node.feature, reader->ReadI32());
    RLBENCH_ASSIGN_OR_RETURN(node.threshold, reader->ReadFloat());
    RLBENCH_ASSIGN_OR_RETURN(node.left, reader->ReadI32());
    RLBENCH_ASSIGN_OR_RETURN(node.right, reader->ReadI32());
    RLBENCH_ASSIGN_OR_RETURN(node.score, reader->ReadDouble());
    if (!node.IsLeaf() &&
        (node.left < 0 || node.right < 0 ||
         static_cast<uint64_t>(node.left) >= count ||
         static_cast<uint64_t>(node.right) >= count)) {
      return Status::IOError("decision tree: child index out of range");
    }
    if (!node.IsLeaf() && num_features > 0 &&
        static_cast<size_t>(node.feature) >= num_features) {
      return Status::IOError("decision tree: split feature out of range");
    }
  }
  nodes_ = std::move(nodes);
  return Status::OK();
}

double DecisionTree::PredictScore(std::span<const float> row) const {
  if (nodes_.empty()) return 0.0;
  int index = 0;
  while (!nodes_[index].IsLeaf()) {
    const Node& node = nodes_[index];
    index = row[node.feature] <= node.threshold ? node.left : node.right;
  }
  return nodes_[index].score;
}

}  // namespace rlbench::ml
