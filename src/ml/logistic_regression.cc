#include "ml/logistic_regression.h"

#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"

namespace rlbench::ml {

namespace {
double Sigmoid(double z) {
  if (z >= 0.0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}
}  // namespace

void LogisticRegression::Fit(const Dataset& train, const Dataset& valid) {
  (void)valid;  // no model selection needed for a convex model
  scaler_.Fit(train);
  Dataset scaled = scaler_.TransformAll(train);

  size_t dim = scaled.num_features();
  weights_.assign(dim, 0.0);
  bias_ = 0.0;
  if (scaled.empty()) return;

  double positives = static_cast<double>(scaled.CountPositives());
  double negatives = static_cast<double>(scaled.size()) - positives;
  double pos_weight = 1.0;
  if (options_.balance_classes && positives > 0.0 && negatives > 0.0) {
    pos_weight = negatives / positives;
  }

  Rng rng(options_.seed);
  std::vector<size_t> order(scaled.size());
  std::iota(order.begin(), order.end(), size_t{0});

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    double lr = options_.learning_rate / (1.0 + 0.05 * epoch);
    for (size_t start = 0; start < order.size();
         start += options_.batch_size) {
      size_t end = std::min(order.size(), start + options_.batch_size);
      std::vector<double> grad(dim, 0.0);
      double grad_bias = 0.0;
      for (size_t k = start; k < end; ++k) {
        auto row = scaled.row(order[k]);
        double y = scaled.label(order[k]) ? 1.0 : 0.0;
        double z = bias_;
        for (size_t f = 0; f < dim; ++f) z += weights_[f] * row[f];
        double err = Sigmoid(z) - y;
        double w = scaled.label(order[k]) ? pos_weight : 1.0;
        for (size_t f = 0; f < dim; ++f) grad[f] += w * err * row[f];
        grad_bias += w * err;
      }
      double scale = lr / static_cast<double>(end - start);
      for (size_t f = 0; f < dim; ++f) {
        weights_[f] -= scale * (grad[f] + options_.l2 * weights_[f]);
      }
      bias_ -= scale * grad_bias;
    }
  }
  // A diverged fit (non-finite weights) would silently poison every
  // downstream score; fail loudly here instead.
  for (double w : weights_) RLBENCH_CHECK_FINITE(w);
  RLBENCH_CHECK_FINITE(bias_);
}

void LogisticRegression::Save(BlobWriter* writer) const {
  scaler_.Save(writer);
  writer->WriteDoubleVec(weights_);
  writer->WriteDouble(bias_);
}

Status LogisticRegression::Load(BlobReader* reader, size_t num_features) {
  RLBENCH_RETURN_NOT_OK(scaler_.Load(reader));
  RLBENCH_ASSIGN_OR_RETURN(weights_, reader->ReadDoubleVec());
  RLBENCH_ASSIGN_OR_RETURN(bias_, reader->ReadDouble());
  if (weights_.size() != scaler_.means().size()) {
    return Status::IOError("logistic regression: scaler/weight arity mismatch");
  }
  if (num_features != 0 && weights_.size() != num_features) {
    return Status::IOError("logistic regression: unexpected weight count");
  }
  return Status::OK();
}

double LogisticRegression::PredictScore(std::span<const float> row) const {
  std::vector<float> scaled(row.begin(), row.end());
  scaler_.Transform(scaled);
  double z = bias_;
  for (size_t f = 0; f < weights_.size() && f < scaled.size(); ++f) {
    z += weights_[f] * scaled[f];
  }
  double score = Sigmoid(z);
  RLBENCH_DCHECK_PROB(score);
  return score;
}

}  // namespace rlbench::ml
