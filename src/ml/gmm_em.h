// Two-component diagonal Gaussian mixture fitted with expectation-
// maximisation: the generative core of ZeroER (matches and non-matches are
// modelled as separate Gaussians over the similarity features and no labels
// are used).
#ifndef RLBENCH_SRC_ML_GMM_EM_H_
#define RLBENCH_SRC_ML_GMM_EM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/blob.h"
#include "ml/dataset.h"

namespace rlbench::ml {

struct GmmOptions {
  int max_iterations = 200;
  double tolerance = 1e-6;
  double variance_floor = 1e-4;
  /// Initial fraction of instances assumed to be matches; EM refines it.
  double initial_match_prior = 0.1;
  uint64_t seed = 42;
};

/// \brief Unsupervised match / non-match mixture model.
class GaussianMixtureMatcher {
 public:
  explicit GaussianMixtureMatcher(GmmOptions options = {})
      : options_(options) {}

  /// Fit by EM on the rows only — labels in `data` are ignored.
  void Fit(const Dataset& data);

  /// Posterior probability of the match component.
  double PredictScore(std::span<const float> row) const;
  bool Predict(std::span<const float> row) const {
    return PredictScore(row) >= 0.5;
  }

  int iterations_run() const { return iterations_run_; }
  double final_log_likelihood() const { return final_log_likelihood_; }
  const std::vector<double>& log_likelihood_trace() const {
    return log_likelihood_trace_;
  }
  double match_prior() const { return prior_match_; }
  size_t dim() const { return dim_; }

  /// Snapshot hooks (src/serve/): the fitted mixture — component means,
  /// variances and the match prior. Convergence diagnostics (iteration
  /// count, likelihood trace) are training-time state and not serialized.
  void Save(BlobWriter* writer) const;
  [[nodiscard]] Status Load(BlobReader* reader);

 private:
  double LogDensity(std::span<const float> row,
                    const std::vector<double>& mean,
                    const std::vector<double>& var) const;

  GmmOptions options_;
  size_t dim_ = 0;
  std::vector<double> mean_match_, var_match_;
  std::vector<double> mean_unmatch_, var_unmatch_;
  double prior_match_ = 0.1;
  int iterations_run_ = 0;
  double final_log_likelihood_ = 0.0;
  std::vector<double> log_likelihood_trace_;
};

}  // namespace rlbench::ml

#endif  // RLBENCH_SRC_ML_GMM_EM_H_
