#include "ml/classifier.h"

namespace rlbench::ml {

std::vector<uint8_t> Classifier::PredictAll(const Dataset& data) const {
  std::vector<uint8_t> out(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    out[i] = Predict(data.row(i)) ? 1 : 0;
  }
  return out;
}

double Classifier::EvaluateF1(const Dataset& data) const {
  return Evaluate(data.labels(), PredictAll(data)).F1();
}

}  // namespace rlbench::ml
