#include "ml/dataset.h"

#include "common/check.h"

namespace rlbench::ml {

void Dataset::Add(const std::vector<float>& features, bool label) {
  RLBENCH_CHECK_EQ(features.size(), num_features_);
  values_.insert(values_.end(), features.begin(), features.end());
  labels_.push_back(label ? 1 : 0);
}

size_t Dataset::CountPositives() const {
  size_t count = 0;
  for (uint8_t l : labels_) count += l;
  return count;
}

}  // namespace rlbench::ml
