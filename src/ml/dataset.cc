#include "ml/dataset.h"

#include "common/check.h"
#include "common/parallel.h"

namespace rlbench::ml {

namespace {
// Feature extraction per row costs microseconds (string similarities over
// a candidate pair), so modest chunks already amortise dispatch.
constexpr size_t kRowGrain = 32;
}  // namespace

Status Dataset::Append(const std::vector<float>& features, bool label) {
  if (features.size() != num_features_) {
    return Status::InvalidArgument(
        "row has " + std::to_string(features.size()) + " features, dataset " +
        std::to_string(num_features_));
  }
  values_.insert(values_.end(), features.begin(), features.end());
  labels_.push_back(label ? 1 : 0);
  return Status::OK();
}

void Dataset::Add(const std::vector<float>& features, bool label) {
  RLBENCH_CHECK_EQ(features.size(), num_features_);
  values_.insert(values_.end(), features.begin(), features.end());
  labels_.push_back(label ? 1 : 0);
}

Result<Dataset> Dataset::BuildParallel(
    size_t num_features, size_t rows,
    const std::function<bool(size_t, std::span<float>)>& fill) {
  if (num_features == 0) {
    return Status::InvalidArgument("dataset needs at least one feature");
  }
  Dataset dataset(num_features);
  dataset.values_.resize(rows * num_features);
  dataset.labels_.resize(rows);
  ParallelFor(0, rows, kRowGrain, [&](size_t i) {
    std::span<float> row(&dataset.values_[i * num_features], num_features);
    dataset.labels_[i] = fill(i, row) ? 1 : 0;
  });
  return dataset;
}

size_t Dataset::CountPositives() const {
  size_t count = 0;
  for (uint8_t l : labels_) count += l;
  return count;
}

}  // namespace rlbench::ml
