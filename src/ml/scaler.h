// Per-feature standardisation (zero mean, unit variance) fitted on the
// training split only and applied to validation / test rows.
#ifndef RLBENCH_SRC_ML_SCALER_H_
#define RLBENCH_SRC_ML_SCALER_H_

#include <span>
#include <vector>

#include "common/blob.h"
#include "ml/dataset.h"

namespace rlbench::ml {

/// \brief Standard (z-score) feature scaler.
class StandardScaler {
 public:
  /// Estimate per-feature mean and standard deviation from the dataset.
  void Fit(const Dataset& data);

  /// Scale one row in place. Features with zero variance pass through
  /// centred only.
  void Transform(std::span<float> row) const;

  /// Produce a scaled copy of an entire dataset.
  Dataset TransformAll(const Dataset& data) const;

  const std::vector<float>& means() const { return means_; }
  const std::vector<float>& stddevs() const { return stddevs_; }

  /// Snapshot hooks (src/serve/): the fitted statistics round-trip
  /// bit-exactly through the blob's IEEE-754 bit patterns.
  void Save(BlobWriter* writer) const;
  [[nodiscard]] Status Load(BlobReader* reader);

 private:
  std::vector<float> means_;
  std::vector<float> stddevs_;
};

}  // namespace rlbench::ml

#endif  // RLBENCH_SRC_ML_SCALER_H_
