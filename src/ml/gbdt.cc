#include "ml/gbdt.h"

#include "common/check.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"

namespace rlbench::ml {

namespace {
double Sigmoid(double z) {
  if (z >= 0.0) return 1.0 / (1.0 + std::exp(-z));
  double e = std::exp(z);
  return e / (1.0 + e);
}
}  // namespace

double GradientBoostedTrees::Tree::Predict(std::span<const float> row) const {
  if (nodes.empty()) return 0.0;
  int index = 0;
  while (!nodes[index].IsLeaf()) {
    const Node& node = nodes[index];
    index = row[node.feature] <= node.threshold ? node.left : node.right;
  }
  return nodes[index].value;
}

int GradientBoostedTrees::BuildNode(const Dataset& data,
                                    const std::vector<double>& gradient,
                                    const std::vector<double>& hessian,
                                    std::vector<size_t>& indices,
                                    size_t begin, size_t end, int depth,
                                    Tree* tree) const {
  double grad_sum = 0.0;
  double hess_sum = 0.0;
  for (size_t k = begin; k < end; ++k) {
    grad_sum += gradient[indices[k]];
    hess_sum += hessian[indices[k]];
  }
  auto make_leaf = [&]() {
    Node leaf;
    // Newton step: -G / (H + λ).
    leaf.value = -grad_sum / (hess_sum + options_.l2);
    tree->nodes.push_back(leaf);
    return static_cast<int>(tree->nodes.size()) - 1;
  };
  size_t count = end - begin;
  if (depth >= options_.max_depth ||
      count < 2 * options_.min_samples_leaf) {
    return make_leaf();
  }

  // Greedy split: maximise the standard gain
  //   GL^2/(HL+λ) + GR^2/(HR+λ) - G^2/(H+λ).
  double parent_score = grad_sum * grad_sum / (hess_sum + options_.l2);
  double best_gain = 1e-8;
  int best_feature = -1;
  float best_threshold = 0.0F;

  size_t dim = data.num_features();
  std::vector<std::pair<float, size_t>> column(count);
  for (size_t feature = 0; feature < dim; ++feature) {
    for (size_t k = begin; k < end; ++k) {
      column[k - begin] = {data.row(indices[k])[feature], indices[k]};
    }
    std::sort(column.begin(), column.end());
    double left_grad = 0.0;
    double left_hess = 0.0;
    for (size_t k = 0; k + 1 < count; ++k) {
      left_grad += gradient[column[k].second];
      left_hess += hessian[column[k].second];
      if (column[k].first == column[k + 1].first) continue;
      size_t left_count = k + 1;
      if (left_count < options_.min_samples_leaf ||
          count - left_count < options_.min_samples_leaf) {
        continue;
      }
      double right_grad = grad_sum - left_grad;
      double right_hess = hess_sum - left_hess;
      double gain = left_grad * left_grad / (left_hess + options_.l2) +
                    right_grad * right_grad / (right_hess + options_.l2) -
                    parent_score;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(feature);
        best_threshold = 0.5F * (column[k].first + column[k + 1].first);
      }
    }
  }
  if (best_feature < 0) return make_leaf();

  auto mid_it = std::partition(
      indices.begin() + begin, indices.begin() + end, [&](size_t i) {
        return data.row(i)[best_feature] <= best_threshold;
      });
  size_t mid = static_cast<size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return make_leaf();

  int node_index = static_cast<int>(tree->nodes.size());
  tree->nodes.push_back(Node{});
  tree->nodes[node_index].feature = best_feature;
  tree->nodes[node_index].threshold = best_threshold;
  int left = BuildNode(data, gradient, hessian, indices, begin, mid,
                       depth + 1, tree);
  int right =
      BuildNode(data, gradient, hessian, indices, mid, end, depth + 1, tree);
  tree->nodes[node_index].left = left;
  tree->nodes[node_index].right = right;
  return node_index;
}

void GradientBoostedTrees::Fit(const Dataset& train, const Dataset& valid) {
  (void)valid;
  trees_.clear();
  base_score_ = 0.0;
  if (train.empty()) return;

  double positives = static_cast<double>(train.CountPositives());
  double negatives = static_cast<double>(train.size()) - positives;
  double pos_weight = 1.0;
  if (options_.balance_classes && positives > 0.0 && negatives > 0.0) {
    pos_weight = negatives / positives;
  }
  double effective_pos = positives * pos_weight;
  base_score_ = std::log(std::max(effective_pos, 1e-9) /
                         std::max(negatives, 1e-9));

  std::vector<double> raw(train.size(), base_score_);
  std::vector<double> gradient(train.size());
  std::vector<double> hessian(train.size());
  Rng rng(options_.seed);

  for (int round = 0; round < options_.rounds; ++round) {
    for (size_t i = 0; i < train.size(); ++i) {
      double p = Sigmoid(raw[i]);
      double w = train.label(i) ? pos_weight : 1.0;
      gradient[i] = w * (p - (train.label(i) ? 1.0 : 0.0));
      hessian[i] = std::max(1e-9, w * p * (1.0 - p));
    }
    // Row subsampling (stochastic gradient boosting).
    std::vector<size_t> indices;
    indices.reserve(train.size());
    for (size_t i = 0; i < train.size(); ++i) {
      if (options_.subsample >= 1.0 || rng.Bernoulli(options_.subsample)) {
        indices.push_back(i);
      }
    }
    if (indices.size() < 2 * options_.min_samples_leaf) {
      indices.resize(train.size());
      std::iota(indices.begin(), indices.end(), size_t{0});
    }
    Tree tree;
    BuildNode(train, gradient, hessian, indices, 0, indices.size(), 0,
              &tree);
    for (size_t i = 0; i < train.size(); ++i) {
      raw[i] += options_.learning_rate * tree.Predict(train.row(i));
    }
    trees_.push_back(std::move(tree));
  }
}

double GradientBoostedTrees::PredictScore(std::span<const float> row) const {
  double raw = base_score_;
  for (const auto& tree : trees_) {
    raw += options_.learning_rate * tree.Predict(row);
  }
  RLBENCH_DCHECK_FINITE(raw);
  double score = Sigmoid(raw);
  RLBENCH_DCHECK_PROB(score);
  return score;
}

}  // namespace rlbench::ml
