// Classification metrics (Section II of the paper) and the threshold sweep
// shared by Algorithm 1 and Algorithm 2.
#ifndef RLBENCH_SRC_ML_METRICS_H_
#define RLBENCH_SRC_ML_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rlbench::ml {

/// \brief Binary confusion counts.
struct Confusion {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t true_negatives = 0;
  size_t false_negatives = 0;

  double Precision() const;
  double Recall() const;
  /// Harmonic mean of precision and recall; 0 when undefined.
  double F1() const;
  double Accuracy() const;
  /// Matthews correlation coefficient in [-1, 1]; 0 when undefined. The
  /// imbalance-robust alternative the F-measure review [15] discusses.
  double MatthewsCorrelation() const;
};

/// Tally predictions against ground truth. Vectors must be equal length.
Confusion Evaluate(const std::vector<uint8_t>& truth,
                   const std::vector<uint8_t>& predicted);

/// F1 for score-threshold classification: pairs with score >= threshold are
/// predicted matches.
double F1AtThreshold(const std::vector<double>& scores,
                     const std::vector<uint8_t>& truth, double threshold);

/// \brief Result of the exhaustive threshold sweep.
struct ThresholdSweepResult {
  double best_f1 = 0.0;
  double best_threshold = 0.0;
};

/// Sweep thresholds over [0.01, 0.99] with step 0.01 exactly as Algorithm 1
/// does, returning the maximum F1 and the first threshold achieving it.
/// Runs in O(n log n + 99) via a sort + cumulative counting, which is
/// equivalent to the paper's O(99 n) loop.
ThresholdSweepResult SweepThresholds(const std::vector<double>& scores,
                                     const std::vector<uint8_t>& truth);

/// Average precision (area under the precision-recall curve, step-wise):
/// the threshold-free ranking quality of a matcher's scores.
double AveragePrecision(const std::vector<double>& scores,
                        const std::vector<uint8_t>& truth);

}  // namespace rlbench::ml

#endif  // RLBENCH_SRC_ML_METRICS_H_
