// Exact nearest-neighbour queries over small point sets with a pluggable
// distance. Used by the neighbourhood complexity measures (n1..n4, t1, lsc)
// and by 1-NN classification.
#ifndef RLBENCH_SRC_ML_KNN_H_
#define RLBENCH_SRC_ML_KNN_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace rlbench::ml {

/// 2-D (or k-D) point with a class label; the complexity measures operate
/// on the paper's two similarity features, so points are tiny.
struct LabeledPoint {
  std::vector<double> x;
  bool label = false;
};

using DistanceFn =
    std::function<double(const std::vector<double>&, const std::vector<double>&)>;

/// Index of the nearest point to `query` among `points`, excluding
/// `exclude` (pass SIZE_MAX to exclude nothing). Linear scan.
size_t NearestNeighbor(const std::vector<LabeledPoint>& points,
                       const std::vector<double>& query,
                       const DistanceFn& distance, size_t exclude);

/// Leave-one-out 1-NN error rate (complexity measure n3's core).
double LeaveOneOut1NnErrorRate(const std::vector<LabeledPoint>& points,
                               const DistanceFn& distance);

}  // namespace rlbench::ml

#endif  // RLBENCH_SRC_ML_KNN_H_
