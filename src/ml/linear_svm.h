// Linear support vector machine trained with Pegasos-style stochastic
// sub-gradient descent on the hinge loss. Backs Magellan-SVM and the l1/l2
// complexity measures (error rate and error distance of a linear SVM).
#ifndef RLBENCH_SRC_ML_LINEAR_SVM_H_
#define RLBENCH_SRC_ML_LINEAR_SVM_H_

#include <cstdint>

#include "common/blob.h"
#include "ml/classifier.h"
#include "ml/scaler.h"

namespace rlbench::ml {

struct LinearSvmOptions {
  int epochs = 60;
  double lambda = 1e-3;  // regularisation strength (Pegasos λ)
  bool balance_classes = true;
  uint64_t seed = 42;
};

/// \brief Soft-margin linear SVM.
class LinearSvm : public Classifier {
 public:
  explicit LinearSvm(LinearSvmOptions options = {}) : options_(options) {}

  std::string name() const override { return "LinearSVM"; }
  void Fit(const Dataset& train, const Dataset& valid) override;

  /// Signed margin squashed through a logistic link for a [0,1] score.
  double PredictScore(std::span<const float> row) const override;
  bool Predict(std::span<const float> row) const override {
    return Margin(row) >= 0.0;
  }

  /// Raw signed distance-like margin w·x + b (positive = match side).
  double Margin(std::span<const float> row) const;

  /// Mean hinge loss of the training data under the learned hyperplane,
  /// i.e. the "sum of the error distance" statistic behind measure l1.
  double MeanHingeLoss(const Dataset& data) const;

  /// Snapshot hooks (src/serve/): fitted scaler + hyperplane. A non-zero
  /// `num_features` rejects blobs fitted for a different schema.
  void Save(BlobWriter* writer) const;
  [[nodiscard]] Status Load(BlobReader* reader, size_t num_features = 0);

 private:
  LinearSvmOptions options_;
  StandardScaler scaler_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace rlbench::ml

#endif  // RLBENCH_SRC_ML_LINEAR_SVM_H_
