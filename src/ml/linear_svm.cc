#include "ml/linear_svm.h"

#include "common/check.h"

#include <cmath>
#include <numeric>

#include "common/rng.h"

namespace rlbench::ml {

void LinearSvm::Fit(const Dataset& train, const Dataset& valid) {
  (void)valid;
  scaler_.Fit(train);
  Dataset scaled = scaler_.TransformAll(train);

  size_t dim = scaled.num_features();
  weights_.assign(dim, 0.0);
  bias_ = 0.0;
  if (scaled.empty()) return;

  double positives = static_cast<double>(scaled.CountPositives());
  double negatives = static_cast<double>(scaled.size()) - positives;
  double pos_weight = 1.0;
  if (options_.balance_classes && positives > 0.0 && negatives > 0.0) {
    pos_weight = negatives / positives;
  }

  Rng rng(options_.seed);
  std::vector<size_t> order(scaled.size());
  std::iota(order.begin(), order.end(), size_t{0});

  size_t t = 0;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t index : order) {
      ++t;
      double eta = 1.0 / (options_.lambda * static_cast<double>(t));
      auto row = scaled.row(index);
      double y = scaled.label(index) ? 1.0 : -1.0;
      double margin = bias_;
      for (size_t f = 0; f < dim; ++f) margin += weights_[f] * row[f];
      // Weight-decay step of Pegasos.
      double decay = 1.0 - eta * options_.lambda;
      for (size_t f = 0; f < dim; ++f) weights_[f] *= decay;
      if (y * margin < 1.0) {
        double w = scaled.label(index) ? pos_weight : 1.0;
        for (size_t f = 0; f < dim; ++f) {
          weights_[f] += eta * w * y * row[f];
        }
        bias_ += eta * w * y;
      }
    }
  }
}

double LinearSvm::Margin(std::span<const float> row) const {
  std::vector<float> scaled(row.begin(), row.end());
  scaler_.Transform(scaled);
  double z = bias_;
  for (size_t f = 0; f < weights_.size() && f < scaled.size(); ++f) {
    z += weights_[f] * scaled[f];
  }
  return z;
}

double LinearSvm::PredictScore(std::span<const float> row) const {
  double z = Margin(row);
  double score;
  if (z >= 0.0) {
    score = 1.0 / (1.0 + std::exp(-z));
  } else {
    double e = std::exp(z);
    score = e / (1.0 + e);
  }
  RLBENCH_DCHECK_PROB(score);
  return score;
}

void LinearSvm::Save(BlobWriter* writer) const {
  scaler_.Save(writer);
  writer->WriteDoubleVec(weights_);
  writer->WriteDouble(bias_);
}

Status LinearSvm::Load(BlobReader* reader, size_t num_features) {
  RLBENCH_RETURN_NOT_OK(scaler_.Load(reader));
  RLBENCH_ASSIGN_OR_RETURN(weights_, reader->ReadDoubleVec());
  RLBENCH_ASSIGN_OR_RETURN(bias_, reader->ReadDouble());
  if (weights_.size() != scaler_.means().size()) {
    return Status::IOError("linear svm: scaler/weight arity mismatch");
  }
  if (num_features != 0 && weights_.size() != num_features) {
    return Status::IOError("linear svm: unexpected weight count");
  }
  return Status::OK();
}

double LinearSvm::MeanHingeLoss(const Dataset& data) const {
  if (data.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < data.size(); ++i) {
    double y = data.label(i) ? 1.0 : -1.0;
    total += std::max(0.0, 1.0 - y * Margin(data.row(i)));
  }
  double loss = total / static_cast<double>(data.size());
  RLBENCH_CHECK_FINITE(loss);
  RLBENCH_CHECK_GE(loss, 0.0);
  return loss;
}

}  // namespace rlbench::ml
