#include "ml/scaler.h"

#include <cmath>

namespace rlbench::ml {

void StandardScaler::Fit(const Dataset& data) {
  size_t dim = data.num_features();
  means_.assign(dim, 0.0F);
  stddevs_.assign(dim, 1.0F);
  if (data.empty()) return;

  std::vector<double> sum(dim, 0.0);
  std::vector<double> sum_sq(dim, 0.0);
  for (size_t i = 0; i < data.size(); ++i) {
    auto row = data.row(i);
    for (size_t f = 0; f < dim; ++f) {
      sum[f] += row[f];
      sum_sq[f] += double{row[f]} * row[f];
    }
  }
  double n = static_cast<double>(data.size());
  for (size_t f = 0; f < dim; ++f) {
    double mean = sum[f] / n;
    double var = sum_sq[f] / n - mean * mean;
    means_[f] = static_cast<float>(mean);
    stddevs_[f] = var > 1e-12 ? static_cast<float>(std::sqrt(var)) : 1.0F;
  }
}

void StandardScaler::Transform(std::span<float> row) const {
  for (size_t f = 0; f < row.size() && f < means_.size(); ++f) {
    row[f] = (row[f] - means_[f]) / stddevs_[f];
  }
}

void StandardScaler::Save(BlobWriter* writer) const {
  writer->WriteFloatVec(means_);
  writer->WriteFloatVec(stddevs_);
}

Status StandardScaler::Load(BlobReader* reader) {
  RLBENCH_ASSIGN_OR_RETURN(means_, reader->ReadFloatVec());
  RLBENCH_ASSIGN_OR_RETURN(stddevs_, reader->ReadFloatVec());
  if (means_.size() != stddevs_.size()) {
    return Status::IOError("scaler: mean/stddev arity mismatch");
  }
  for (float s : stddevs_) {
    if (!(s > 0.0F)) return Status::IOError("scaler: non-positive stddev");
  }
  return Status::OK();
}

Dataset StandardScaler::TransformAll(const Dataset& data) const {
  Dataset out(data.num_features());
  out.Reserve(data.size());
  std::vector<float> buffer(data.num_features());
  for (size_t i = 0; i < data.size(); ++i) {
    auto row = data.row(i);
    buffer.assign(row.begin(), row.end());
    Transform(buffer);
    out.Add(buffer, data.label(i));
  }
  return out;
}

}  // namespace rlbench::ml
