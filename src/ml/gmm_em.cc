#include "ml/gmm_em.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace rlbench::ml {

namespace {
constexpr double kLog2Pi = 1.8378770664093453;
}

double GaussianMixtureMatcher::LogDensity(std::span<const float> row,
                                          const std::vector<double>& mean,
                                          const std::vector<double>& var) const {
  double log_density = 0.0;
  for (size_t f = 0; f < dim_; ++f) {
    double d = row[f] - mean[f];
    log_density += -0.5 * (kLog2Pi + std::log(var[f]) + d * d / var[f]);
  }
  return log_density;
}

void GaussianMixtureMatcher::Fit(const Dataset& data) {
  dim_ = data.num_features();
  size_t n = data.size();
  log_likelihood_trace_.clear();
  iterations_run_ = 0;
  if (n == 0) {
    dim_ = 0;  // leave the model unfitted; PredictScore returns 0
    return;
  }

  // Initialise by ranking rows on their mean feature value: the top
  // `initial_match_prior` fraction seeds the match component. Similarity
  // features are oriented so that matches score high, which is what makes
  // this unsupervised bootstrap work (same trick as ZeroER's seeding).
  std::vector<double> row_mean(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    auto row = data.row(i);
    double sum = 0.0;
    for (size_t f = 0; f < dim_; ++f) sum += row[f];
    row_mean[i] = sum / static_cast<double>(dim_);
  }
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return row_mean[a] > row_mean[b]; });
  size_t seed_matches = std::max<size_t>(
      1, static_cast<size_t>(options_.initial_match_prior *
                             static_cast<double>(n)));

  std::vector<double> responsibility(n, 0.0);
  for (size_t k = 0; k < n; ++k) {
    responsibility[order[k]] = k < seed_matches ? 1.0 : 0.0;
  }

  mean_match_.assign(dim_, 0.0);
  var_match_.assign(dim_, 1.0);
  mean_unmatch_.assign(dim_, 0.0);
  var_unmatch_.assign(dim_, 1.0);

  double prev_log_likelihood = -1e300;
  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    // M step.
    double weight_match = 0.0;
    for (double r : responsibility) weight_match += r;
    double weight_unmatch = static_cast<double>(n) - weight_match;
    weight_match = std::max(weight_match, 1e-9);
    weight_unmatch = std::max(weight_unmatch, 1e-9);
    prior_match_ =
        std::clamp(weight_match / static_cast<double>(n), 1e-6, 1.0 - 1e-6);

    std::fill(mean_match_.begin(), mean_match_.end(), 0.0);
    std::fill(mean_unmatch_.begin(), mean_unmatch_.end(), 0.0);
    for (size_t i = 0; i < n; ++i) {
      auto row = data.row(i);
      for (size_t f = 0; f < dim_; ++f) {
        mean_match_[f] += responsibility[i] * row[f];
        mean_unmatch_[f] += (1.0 - responsibility[i]) * row[f];
      }
    }
    for (size_t f = 0; f < dim_; ++f) {
      mean_match_[f] /= weight_match;
      mean_unmatch_[f] /= weight_unmatch;
    }
    std::fill(var_match_.begin(), var_match_.end(), 0.0);
    std::fill(var_unmatch_.begin(), var_unmatch_.end(), 0.0);
    for (size_t i = 0; i < n; ++i) {
      auto row = data.row(i);
      for (size_t f = 0; f < dim_; ++f) {
        double dm = row[f] - mean_match_[f];
        double du = row[f] - mean_unmatch_[f];
        var_match_[f] += responsibility[i] * dm * dm;
        var_unmatch_[f] += (1.0 - responsibility[i]) * du * du;
      }
    }
    for (size_t f = 0; f < dim_; ++f) {
      var_match_[f] =
          std::max(options_.variance_floor, var_match_[f] / weight_match);
      var_unmatch_[f] =
          std::max(options_.variance_floor, var_unmatch_[f] / weight_unmatch);
    }

    // E step + log-likelihood.
    double log_likelihood = 0.0;
    double log_prior_match = std::log(prior_match_);
    double log_prior_unmatch = std::log(1.0 - prior_match_);
    for (size_t i = 0; i < n; ++i) {
      auto row = data.row(i);
      double lm = log_prior_match + LogDensity(row, mean_match_, var_match_);
      double lu =
          log_prior_unmatch + LogDensity(row, mean_unmatch_, var_unmatch_);
      double mx = std::max(lm, lu);
      double log_sum = mx + std::log(std::exp(lm - mx) + std::exp(lu - mx));
      responsibility[i] = std::exp(lm - log_sum);
      log_likelihood += log_sum;
    }
    log_likelihood_trace_.push_back(log_likelihood);
    iterations_run_ = iter + 1;
    final_log_likelihood_ = log_likelihood;
    if (std::fabs(log_likelihood - prev_log_likelihood) <
        options_.tolerance * (1.0 + std::fabs(log_likelihood))) {
      break;
    }
    prev_log_likelihood = log_likelihood;
  }

  // Orient the components: the match component must have the larger mean
  // similarity; EM can converge with the labels flipped.
  double sum_match = std::accumulate(mean_match_.begin(), mean_match_.end(), 0.0);
  double sum_unmatch =
      std::accumulate(mean_unmatch_.begin(), mean_unmatch_.end(), 0.0);
  if (sum_match < sum_unmatch) {
    std::swap(mean_match_, mean_unmatch_);
    std::swap(var_match_, var_unmatch_);
    prior_match_ = 1.0 - prior_match_;
  }
}

void GaussianMixtureMatcher::Save(BlobWriter* writer) const {
  writer->WriteU64(dim_);
  writer->WriteDoubleVec(mean_match_);
  writer->WriteDoubleVec(var_match_);
  writer->WriteDoubleVec(mean_unmatch_);
  writer->WriteDoubleVec(var_unmatch_);
  writer->WriteDouble(prior_match_);
}

Status GaussianMixtureMatcher::Load(BlobReader* reader) {
  RLBENCH_ASSIGN_OR_RETURN(uint64_t dim, reader->ReadU64());
  RLBENCH_ASSIGN_OR_RETURN(mean_match_, reader->ReadDoubleVec());
  RLBENCH_ASSIGN_OR_RETURN(var_match_, reader->ReadDoubleVec());
  RLBENCH_ASSIGN_OR_RETURN(mean_unmatch_, reader->ReadDoubleVec());
  RLBENCH_ASSIGN_OR_RETURN(var_unmatch_, reader->ReadDoubleVec());
  RLBENCH_ASSIGN_OR_RETURN(prior_match_, reader->ReadDouble());
  if (mean_match_.size() != dim || var_match_.size() != dim ||
      mean_unmatch_.size() != dim || var_unmatch_.size() != dim) {
    return Status::IOError("gmm: component arity mismatch");
  }
  if (dim > 0 && !(prior_match_ > 0.0 && prior_match_ < 1.0)) {
    return Status::IOError("gmm: match prior outside (0, 1)");
  }
  for (const auto* vars : {&var_match_, &var_unmatch_}) {
    for (double v : *vars) {
      if (!(v > 0.0)) return Status::IOError("gmm: non-positive variance");
    }
  }
  dim_ = static_cast<size_t>(dim);
  return Status::OK();
}

double GaussianMixtureMatcher::PredictScore(std::span<const float> row) const {
  if (dim_ == 0) return 0.0;
  double lm = std::log(prior_match_) + LogDensity(row, mean_match_, var_match_);
  double lu = std::log(1.0 - prior_match_) +
              LogDensity(row, mean_unmatch_, var_unmatch_);
  double mx = std::max(lm, lu);
  double log_sum = mx + std::log(std::exp(lm - mx) + std::exp(lu - mx));
  return std::exp(lm - log_sum);
}

}  // namespace rlbench::ml
