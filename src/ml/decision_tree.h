// CART-style binary decision tree with Gini impurity splits. Backs
// Magellan-DT and the trees inside the random forest.
#ifndef RLBENCH_SRC_ML_DECISION_TREE_H_
#define RLBENCH_SRC_ML_DECISION_TREE_H_

#include <cstdint>
#include <vector>

#include "common/blob.h"
#include "ml/classifier.h"

namespace rlbench {
class Rng;
}

namespace rlbench::ml {

struct DecisionTreeOptions {
  int max_depth = 12;
  size_t min_samples_split = 4;
  size_t min_samples_leaf = 2;
  /// Number of features considered per split; 0 means all features. Random
  /// forests set this to sqrt(d).
  size_t max_features = 0;
  /// Weight positive samples by inverse class frequency in impurity and
  /// leaf probabilities.
  bool balance_classes = true;
  uint64_t seed = 42;
};

/// \brief Axis-aligned binary classification tree.
class DecisionTree : public Classifier {
 public:
  explicit DecisionTree(DecisionTreeOptions options = {})
      : options_(options) {}

  std::string name() const override { return "DecisionTree"; }
  void Fit(const Dataset& train, const Dataset& valid) override;

  /// Fit on a subset identified by row indices (bootstrap bagging).
  void FitOnIndices(const Dataset& train, std::vector<size_t> indices);

  double PredictScore(std::span<const float> row) const override;

  size_t num_nodes() const { return nodes_.size(); }

  /// Snapshot hooks (src/serve/): serialize the fitted tree — node table
  /// plus the class weight — bit-exactly. Load validates child indices so
  /// a corrupt snapshot cannot make PredictScore walk out of bounds.
  void Save(BlobWriter* writer) const;
  /// `num_features`, when non-zero, additionally bounds split feature
  /// indices (callers that know the serving arity should pass it).
  [[nodiscard]] Status Load(BlobReader* reader, size_t num_features = 0);

 private:
  struct Node {
    // Internal node: feature/threshold + children; leaf: score only.
    int feature = -1;
    float threshold = 0.0F;
    int left = -1;
    int right = -1;
    double score = 0.0;  // P(match) at a leaf
    bool IsLeaf() const { return feature < 0; }
  };

  int BuildNode(const Dataset& data, std::vector<size_t>& indices,
                size_t begin, size_t end, int depth, Rng* rng);
  int MakeLeaf(const Dataset& data, const std::vector<size_t>& indices,
               size_t begin, size_t end);

  DecisionTreeOptions options_;
  double pos_weight_ = 1.0;
  std::vector<Node> nodes_;
};

}  // namespace rlbench::ml

#endif  // RLBENCH_SRC_ML_DECISION_TREE_H_
