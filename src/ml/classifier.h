// Common interface for all supervised binary classifiers in the substrate.
#ifndef RLBENCH_SRC_ML_CLASSIFIER_H_
#define RLBENCH_SRC_ML_CLASSIFIER_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.h"
#include "ml/metrics.h"

namespace rlbench::ml {

/// \brief Supervised binary classifier over dense feature rows.
///
/// Implementations are deterministic given their constructor seed. The
/// validation set may be used for model selection (epoch choice, decision
/// threshold); it must never leak into gradient updates.
class Classifier {
 public:
  virtual ~Classifier() = default;

  virtual std::string name() const = 0;

  /// Train on `train`; `valid` is available for model selection only.
  virtual void Fit(const Dataset& train, const Dataset& valid) = 0;

  /// Match probability (or calibrated score) in [0, 1] for one row.
  virtual double PredictScore(std::span<const float> row) const = 0;

  /// Hard decision; default thresholds PredictScore at 0.5.
  virtual bool Predict(std::span<const float> row) const {
    return PredictScore(row) >= 0.5;
  }

  /// Predict all rows of a dataset.
  std::vector<uint8_t> PredictAll(const Dataset& data) const;

  /// Convenience: F1 of Predict over the dataset's labels.
  double EvaluateF1(const Dataset& data) const;
};

}  // namespace rlbench::ml

#endif  // RLBENCH_SRC_ML_CLASSIFIER_H_
