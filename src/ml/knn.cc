#include "ml/knn.h"

#include <limits>

namespace rlbench::ml {

size_t NearestNeighbor(const std::vector<LabeledPoint>& points,
                       const std::vector<double>& query,
                       const DistanceFn& distance, size_t exclude) {
  size_t best = std::numeric_limits<size_t>::max();
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < points.size(); ++i) {
    if (i == exclude) continue;
    double d = distance(points[i].x, query);
    if (d < best_dist) {
      best_dist = d;
      best = i;
    }
  }
  return best;
}

double LeaveOneOut1NnErrorRate(const std::vector<LabeledPoint>& points,
                               const DistanceFn& distance) {
  if (points.size() < 2) return 0.0;
  size_t errors = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    size_t nn = NearestNeighbor(points, points[i].x, distance, i);
    if (points[nn].label != points[i].label) ++errors;
  }
  return static_cast<double>(errors) / static_cast<double>(points.size());
}

}  // namespace rlbench::ml
