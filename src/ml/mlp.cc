#include "ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "text/kernels.h"

namespace rlbench::ml {

namespace {

double Sigmoid(double z) {
  if (z >= 0.0) return 1.0 / (1.0 + std::exp(-z));
  double e = std::exp(z);
  return e / (1.0 + e);
}

/// Adam state over one flat parameter group.
struct Adam {
  std::vector<double> m, v;
  double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  size_t t = 0;

  explicit Adam(size_t n) : m(n, 0.0), v(n, 0.0) {}

  void Step(std::vector<double>* params, const std::vector<double>& grad,
            double lr, double l2) {
    ++t;
    double correction1 = 1.0 - std::pow(beta1, static_cast<double>(t));
    double correction2 = 1.0 - std::pow(beta2, static_cast<double>(t));
    for (size_t i = 0; i < params->size(); ++i) {
      double g = grad[i] + l2 * (*params)[i];
      m[i] = beta1 * m[i] + (1.0 - beta1) * g;
      v[i] = beta2 * v[i] + (1.0 - beta2) * g * g;
      double mhat = m[i] / correction1;
      double vhat = v[i] / correction2;
      (*params)[i] -= lr * mhat / (std::sqrt(vhat) + eps);
    }
  }
};

}  // namespace

double Mlp::Forward(std::span<const float> x, const Params& p,
                    std::vector<double>* z1, std::vector<double>* pre1,
                    std::vector<double>* pre_t, std::vector<double>* pre_h,
                    std::vector<double>* z2) const {
  size_t h = options_.hidden;
  size_t d = input_dim_;
  pre1->assign(h, 0.0);
  for (size_t i = 0; i < h; ++i) {
    double sum = p.b1[i];
    const double* row = &p.w1[i * d];
    for (size_t j = 0; j < d; ++j) sum += row[j] * x[j];
    (*pre1)[i] = sum;
  }
  z1->assign(h, 0.0);
  for (size_t i = 0; i < h; ++i) (*z1)[i] = std::max(0.0, (*pre1)[i]);

  pre_t->assign(h, 0.0);
  pre_h->assign(h, 0.0);
  for (size_t i = 0; i < h; ++i) {
    double st = p.bt[i];
    double sh = p.bh[i];
    const double* rt = &p.wt[i * h];
    const double* rh = &p.wh[i * h];
    for (size_t j = 0; j < h; ++j) {
      st += rt[j] * (*z1)[j];
      sh += rh[j] * (*z1)[j];
    }
    (*pre_t)[i] = st;
    (*pre_h)[i] = sh;
  }
  z2->assign(h, 0.0);
  for (size_t i = 0; i < h; ++i) {
    double t = Sigmoid((*pre_t)[i]);
    double g = std::max(0.0, (*pre_h)[i]);
    (*z2)[i] = t * g + (1.0 - t) * (*z1)[i];
  }
  double logit = p.b2;
  for (size_t i = 0; i < h; ++i) logit += p.w2[i] * (*z2)[i];
  return logit;
}

void Mlp::Fit(const Dataset& train, const Dataset& valid) {
  scaler_.Fit(train);
  Dataset scaled = scaler_.TransformAll(train);
  Dataset scaled_valid = scaler_.TransformAll(valid);

  input_dim_ = scaled.num_features();
  size_t h = options_.hidden;
  size_t d = input_dim_;

  Rng rng(options_.seed);
  auto init = [&](std::vector<double>* w, size_t n, double scale) {
    w->resize(n);
    for (double& x : *w) x = rng.Gaussian(0.0, scale);
  };
  double s1 = std::sqrt(2.0 / static_cast<double>(d + 1));
  double s2 = std::sqrt(2.0 / static_cast<double>(h + 1));
  init(&params_.w1, h * d, s1);
  params_.b1.assign(h, 0.0);
  init(&params_.wt, h * h, s2);
  // Bias the transform gate towards the carry behaviour initially, the
  // standard highway initialisation.
  params_.bt.assign(h, -1.0);
  init(&params_.wh, h * h, s2);
  params_.bh.assign(h, 0.0);
  init(&params_.w2, h, s2);
  params_.b2 = 0.0;

  if (scaled.empty()) return;

  double positives = static_cast<double>(scaled.CountPositives());
  double negatives = static_cast<double>(scaled.size()) - positives;
  double pos_weight = 1.0;
  if (options_.balance_classes && positives > 0.0 && negatives > 0.0) {
    pos_weight = negatives / positives;
  }

  Adam adam_w1(h * d), adam_b1(h), adam_wt(h * h), adam_bt(h), adam_wh(h * h),
      adam_bh(h), adam_w2(h), adam_b2(1);

  std::vector<size_t> order(scaled.size());
  std::iota(order.begin(), order.end(), size_t{0});

  std::vector<double> z1, pre1, pre_t, pre_h, z2;
  std::vector<double> g_w1(h * d), g_b1(h), g_wt(h * h), g_bt(h), g_wh(h * h),
      g_bh(h), g_w2(h), g_b2(1);
  std::vector<double> dz1(h), dz2(h), dpre_t(h), dpre_h(h), dpre1(h);

  Params best = params_;
  best_valid_f1_ = -1.0;
  best_epoch_ = -1;

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t start = 0; start < order.size();
         start += options_.batch_size) {
      size_t end = std::min(order.size(), start + options_.batch_size);
      std::fill(g_w1.begin(), g_w1.end(), 0.0);
      std::fill(g_b1.begin(), g_b1.end(), 0.0);
      std::fill(g_wt.begin(), g_wt.end(), 0.0);
      std::fill(g_bt.begin(), g_bt.end(), 0.0);
      std::fill(g_wh.begin(), g_wh.end(), 0.0);
      std::fill(g_bh.begin(), g_bh.end(), 0.0);
      std::fill(g_w2.begin(), g_w2.end(), 0.0);
      g_b2[0] = 0.0;

      for (size_t k = start; k < end; ++k) {
        auto x = scaled.row(order[k]);
        double y = scaled.label(order[k]) ? 1.0 : 0.0;
        double logit =
            Forward(x, params_, &z1, &pre1, &pre_t, &pre_h, &z2);
        double p = Sigmoid(logit);
        double weight = scaled.label(order[k]) ? pos_weight : 1.0;
        double dlogit = weight * (p - y);

        for (size_t i = 0; i < h; ++i) g_w2[i] += dlogit * z2[i];
        g_b2[0] += dlogit;

        for (size_t i = 0; i < h; ++i) dz2[i] = dlogit * params_.w2[i];

        // Highway backward.
        std::fill(dz1.begin(), dz1.end(), 0.0);
        for (size_t i = 0; i < h; ++i) {
          double t = Sigmoid(pre_t[i]);
          double g = std::max(0.0, pre_h[i]);
          double dt = dz2[i] * (g - z1[i]);
          double dg = dz2[i] * t;
          dz1[i] += dz2[i] * (1.0 - t);
          dpre_t[i] = dt * t * (1.0 - t);
          dpre_h[i] = pre_h[i] > 0.0 ? dg : 0.0;
        }
        for (size_t i = 0; i < h; ++i) {
          double* gt = &g_wt[i * h];
          double* gh = &g_wh[i * h];
          const double* rt = &params_.wt[i * h];
          const double* rh = &params_.wh[i * h];
          for (size_t j = 0; j < h; ++j) {
            gt[j] += dpre_t[i] * z1[j];
            gh[j] += dpre_h[i] * z1[j];
            dz1[j] += rt[j] * dpre_t[i] + rh[j] * dpre_h[i];
          }
          g_bt[i] += dpre_t[i];
          g_bh[i] += dpre_h[i];
        }

        // Dense backward.
        for (size_t i = 0; i < h; ++i) {
          dpre1[i] = pre1[i] > 0.0 ? dz1[i] : 0.0;
        }
        for (size_t i = 0; i < h; ++i) {
          double* gw = &g_w1[i * d];
          for (size_t j = 0; j < d; ++j) gw[j] += dpre1[i] * x[j];
          g_b1[i] += dpre1[i];
        }
      }

      double inv = 1.0 / static_cast<double>(end - start);
      for (double& g : g_w1) g *= inv;
      for (double& g : g_b1) g *= inv;
      for (double& g : g_wt) g *= inv;
      for (double& g : g_bt) g *= inv;
      for (double& g : g_wh) g *= inv;
      for (double& g : g_bh) g *= inv;
      for (double& g : g_w2) g *= inv;
      g_b2[0] *= inv;

      double lr = options_.learning_rate;
      double l2 = options_.l2;
      adam_w1.Step(&params_.w1, g_w1, lr, l2);
      adam_b1.Step(&params_.b1, g_b1, lr, 0.0);
      adam_wt.Step(&params_.wt, g_wt, lr, l2);
      adam_bt.Step(&params_.bt, g_bt, lr, 0.0);
      adam_wh.Step(&params_.wh, g_wh, lr, l2);
      adam_bh.Step(&params_.bh, g_bh, lr, 0.0);
      adam_w2.Step(&params_.w2, g_w2, lr, l2);
      std::vector<double> b2vec = {params_.b2};
      adam_b2.Step(&b2vec, g_b2, lr, 0.0);
      params_.b2 = b2vec[0];
    }

    if (options_.select_best_epoch_on_valid && !scaled_valid.empty()) {
      // Evaluate the current epoch's model on the validation set.
      Confusion c;
      std::vector<double> tz1, tpre1, tpre_t, tpre_h, tz2;
      for (size_t i = 0; i < scaled_valid.size(); ++i) {
        double logit = Forward(scaled_valid.row(i), params_, &tz1, &tpre1,
                               &tpre_t, &tpre_h, &tz2);
        bool predicted = logit >= 0.0;
        if (scaled_valid.label(i)) {
          predicted ? ++c.true_positives : ++c.false_negatives;
        } else {
          predicted ? ++c.false_positives : ++c.true_negatives;
        }
      }
      double f1 = c.F1();
      if (f1 > best_valid_f1_) {
        best_valid_f1_ = f1;
        best_epoch_ = epoch;
        best = params_;
      }
    }
  }

  if (options_.select_best_epoch_on_valid && best_epoch_ >= 0) {
    params_ = best;
  }
  // Diverged training (non-finite parameters) must fail loudly rather than
  // emit NaN scores downstream.
  for (double w : params_.w1) RLBENCH_CHECK_FINITE(w);
  for (double w : params_.w2) RLBENCH_CHECK_FINITE(w);
}

void Mlp::PredictScoresBatch(const Dataset& rows, std::span<double> out) const {
  RLBENCH_CHECK_EQ(out.size(), rows.size());
  if (rows.empty()) return;
  RLBENCH_CHECK_EQ(rows.num_features(), input_dim_);
  namespace k = text::kernels;
  size_t h = options_.hidden;
  size_t d = input_dim_;
  // Rows per panel: large enough that each weight matrix read is amortised
  // over the whole panel, small enough that the double scratch stays in
  // cache for typical hidden sizes.
  constexpr size_t kBlock = 128;
  size_t blocks = (rows.size() + kBlock - 1) / kBlock;
  ParallelFor(0, blocks, 1, [&](size_t blk) {
    size_t begin = blk * kBlock;
    size_t batch = std::min(rows.size() - begin, kBlock);
    // One arena per worker thread, sized for a full block so the size never
    // oscillates: a fresh ~200KB allocation per block costs an mmap plus
    // page faults every time, while a thread-local arena pays that once and
    // stays hot across blocks and calls. Every slice is fully overwritten
    // before it is read.
    static thread_local std::vector<float> fscratch;
    static thread_local std::vector<double> dscratch;
    fscratch.resize(d + d * kBlock);
    dscratch.resize(4 * h * kBlock + kBlock);
    float* scaled = fscratch.data();
    float* xt = scaled + d;
    double* z1 = dscratch.data();
    double* pre_t = z1 + h * batch;
    double* pre_h = pre_t + h * batch;
    double* z2 = pre_h + h * batch;
    double* logits = z2 + h * batch;
    // Scale each row exactly as PredictScore does, then transpose the
    // panel to column-major so the affine kernels walk contiguous floats.
    for (size_t r = 0; r < batch; ++r) {
      auto row = rows.row(begin + r);
      std::copy(row.begin(), row.end(), scaled);
      scaler_.Transform(std::span<float>(scaled, d));
      for (size_t j = 0; j < d; ++j) xt[j * batch + r] = scaled[j];
    }
    // The [unit * batch + r] output layout of one affine is exactly the
    // column-major input layout the next one consumes, so the panel flows
    // through the network with no further transposes. Every accumulator
    // walks its inputs in the same ascending order as Forward, so each
    // score carries the identical bits (the differential tests pin it).
    k::BatchedAffineF32(params_.w1.data(), params_.b1.data(), h, d, xt,
                        batch, z1);
    for (size_t i = 0; i < h * batch; ++i) z1[i] = std::max(0.0, z1[i]);
    k::DualBatchedAffineF64(params_.wt.data(), params_.bt.data(),
                            params_.wh.data(), params_.bh.data(), h, h, z1,
                            batch, pre_t, pre_h);
    for (size_t i = 0; i < h * batch; ++i) {
      double t = Sigmoid(pre_t[i]);
      double g = std::max(0.0, pre_h[i]);
      z2[i] = t * g + (1.0 - t) * z1[i];
    }
    k::BatchedAffineF64(params_.w2.data(), &params_.b2, 1, h, z2, batch,
                        logits);
    for (size_t r = 0; r < batch; ++r) {
      RLBENCH_DCHECK_FINITE(logits[r]);
      double score = Sigmoid(logits[r]);
      RLBENCH_DCHECK_PROB(score);
      out[begin + r] = score;
    }
  });
}

double Mlp::PredictScore(std::span<const float> row) const {
  std::vector<float> scaled(row.begin(), row.end());
  scaler_.Transform(scaled);
  std::vector<double> z1, pre1, pre_t, pre_h, z2;
  double logit = Forward(scaled, params_, &z1, &pre1, &pre_t, &pre_h, &z2);
  RLBENCH_DCHECK_FINITE(logit);
  double score = Sigmoid(logit);
  RLBENCH_DCHECK_PROB(score);
  return score;
}

}  // namespace rlbench::ml
