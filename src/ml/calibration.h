// Score calibration and model-selection utilities: Platt scaling (turning
// raw margins into probabilities) and stratified k-fold cross-validation.
#ifndef RLBENCH_SRC_ML_CALIBRATION_H_
#define RLBENCH_SRC_ML_CALIBRATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ml/classifier.h"

namespace rlbench::ml {

/// \brief Platt scaling: fit p(y=1|s) = sigmoid(A*s + B) on held-out
/// (score, label) pairs by gradient descent on the log loss.
class PlattScaler {
 public:
  void Fit(const std::vector<double>& scores,
           const std::vector<uint8_t>& labels);

  /// Calibrated probability for a raw score.
  double Transform(double score) const;

  double slope() const { return a_; }
  double intercept() const { return b_; }

 private:
  double a_ = 1.0;
  double b_ = 0.0;
};

/// Stratified k-fold cross-validated F1 of classifiers produced by
/// `factory` (one fresh classifier per fold). Returns the per-fold F1s.
std::vector<double> CrossValidateF1(
    const std::function<std::unique_ptr<Classifier>()>& factory,
    const Dataset& data, size_t folds, uint64_t seed);

}  // namespace rlbench::ml

#endif  // RLBENCH_SRC_ML_CALIBRATION_H_
