#include "ml/calibration.h"

#include <cmath>

#include "common/check.h"

#include "common/rng.h"
#include "ml/metrics.h"

namespace rlbench::ml {

namespace {
double Sigmoid(double z) {
  if (z >= 0.0) return 1.0 / (1.0 + std::exp(-z));
  double e = std::exp(z);
  return e / (1.0 + e);
}
}  // namespace

void PlattScaler::Fit(const std::vector<double>& scores,
                      const std::vector<uint8_t>& labels) {
  RLBENCH_CHECK_EQ(scores.size(), labels.size());
  a_ = 1.0;
  b_ = 0.0;
  if (scores.empty()) return;
  double n = static_cast<double>(scores.size());
  double learning_rate = 0.5;
  for (int iter = 0; iter < 400; ++iter) {
    double grad_a = 0.0;
    double grad_b = 0.0;
    for (size_t i = 0; i < scores.size(); ++i) {
      double err = Sigmoid(a_ * scores[i] + b_) -
                   (labels[i] != 0 ? 1.0 : 0.0);
      grad_a += err * scores[i];
      grad_b += err;
    }
    a_ -= learning_rate * grad_a / n;
    b_ -= learning_rate * grad_b / n;
  }
}

double PlattScaler::Transform(double score) const {
  double calibrated = Sigmoid(a_ * score + b_);
  RLBENCH_DCHECK_PROB(calibrated);
  return calibrated;
}

std::vector<double> CrossValidateF1(
    const std::function<std::unique_ptr<Classifier>()>& factory,
    const Dataset& data, size_t folds, uint64_t seed) {
  folds = std::max<size_t>(2, folds);
  // Stratified fold assignment: positives and negatives are dealt out
  // round-robin after a seeded shuffle.
  std::vector<size_t> positives;
  std::vector<size_t> negatives;
  for (size_t i = 0; i < data.size(); ++i) {
    (data.label(i) ? positives : negatives).push_back(i);
  }
  Rng rng(seed);
  rng.Shuffle(&positives);
  rng.Shuffle(&negatives);
  std::vector<size_t> fold_of(data.size(), 0);
  size_t counter = 0;
  for (size_t i : positives) fold_of[i] = counter++ % folds;
  counter = 0;
  for (size_t i : negatives) fold_of[i] = counter++ % folds;

  std::vector<double> f1s;
  f1s.reserve(folds);
  for (size_t fold = 0; fold < folds; ++fold) {
    Dataset train(data.num_features());
    Dataset test(data.num_features());
    for (size_t i = 0; i < data.size(); ++i) {
      auto row = data.row(i);
      std::vector<float> values(row.begin(), row.end());
      (fold_of[i] == fold ? test : train).Add(values, data.label(i));
    }
    auto model = factory();
    model->Fit(train, {});
    f1s.push_back(model->EvaluateF1(test));
  }
  return f1s;
}

}  // namespace rlbench::ml
