// Bagged ensemble of decision trees with per-split feature subsampling.
// Backs Magellan-RF, typically the strongest classical baseline.
#ifndef RLBENCH_SRC_ML_RANDOM_FOREST_H_
#define RLBENCH_SRC_ML_RANDOM_FOREST_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/classifier.h"
#include "ml/decision_tree.h"

namespace rlbench::ml {

struct RandomForestOptions {
  size_t num_trees = 48;
  DecisionTreeOptions tree;
  uint64_t seed = 42;
};

/// \brief Random forest (bootstrap bagging + feature subsampling).
class RandomForest : public Classifier {
 public:
  explicit RandomForest(RandomForestOptions options = {})
      : options_(options) {}

  std::string name() const override { return "RandomForest"; }
  void Fit(const Dataset& train, const Dataset& valid) override;

  /// Mean of the tree leaf probabilities.
  double PredictScore(std::span<const float> row) const override;

  size_t num_trees() const { return trees_.size(); }

  /// Snapshot hooks (src/serve/): every fitted tree in ensemble order.
  void Save(BlobWriter* writer) const;
  [[nodiscard]] Status Load(BlobReader* reader, size_t num_features = 0);

 private:
  RandomForestOptions options_;
  std::vector<DecisionTree> trees_;
};

}  // namespace rlbench::ml

#endif  // RLBENCH_SRC_ML_RANDOM_FOREST_H_
