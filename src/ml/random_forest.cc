#include "ml/random_forest.h"

#include <cmath>

#include "common/rng.h"

namespace rlbench::ml {

void RandomForest::Fit(const Dataset& train, const Dataset& valid) {
  (void)valid;
  trees_.clear();
  trees_.reserve(options_.num_trees);
  Rng rng(options_.seed);

  size_t dim = train.num_features();
  size_t per_split = options_.tree.max_features;
  if (per_split == 0) {
    per_split = std::max<size_t>(
        1, static_cast<size_t>(std::lround(std::sqrt(dim))));
  }

  for (size_t t = 0; t < options_.num_trees; ++t) {
    DecisionTreeOptions tree_options = options_.tree;
    tree_options.max_features = per_split;
    tree_options.seed = rng.Fork();
    DecisionTree tree(tree_options);

    // Bootstrap sample: n draws with replacement.
    std::vector<size_t> sample(train.size());
    for (size_t i = 0; i < train.size(); ++i) {
      sample[i] = rng.Index(train.size());
    }
    tree.FitOnIndices(train, std::move(sample));
    trees_.push_back(std::move(tree));
  }
}

void RandomForest::Save(BlobWriter* writer) const {
  writer->WriteU64(trees_.size());
  for (const auto& tree : trees_) tree.Save(writer);
}

Status RandomForest::Load(BlobReader* reader, size_t num_features) {
  RLBENCH_ASSIGN_OR_RETURN(uint64_t count, reader->ReadU64());
  // Each serialized tree is at least 16 bytes (weight + node count).
  if (count > reader->Remaining() / 16) {
    return Status::IOError("random forest: truncated tree table");
  }
  std::vector<DecisionTree> trees;
  trees.reserve(count);
  for (uint64_t t = 0; t < count; ++t) {
    DecisionTree tree;
    RLBENCH_RETURN_NOT_OK(tree.Load(reader, num_features));
    trees.push_back(std::move(tree));
  }
  trees_ = std::move(trees);
  return Status::OK();
}

double RandomForest::PredictScore(std::span<const float> row) const {
  if (trees_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& tree : trees_) total += tree.PredictScore(row);
  return total / static_cast<double>(trees_.size());
}

}  // namespace rlbench::ml
