// Feed-forward neural network: Dense+ReLU -> Highway -> sigmoid output,
// trained with mini-batch Adam. This is the classification head shared by
// all simulated DL matchers; the highway layer mirrors DeepMatcher's
// two-layer HighwayNet classifier. The validation set selects the best
// epoch (the paper aligned EMTransformer to do exactly this).
#ifndef RLBENCH_SRC_ML_MLP_H_
#define RLBENCH_SRC_ML_MLP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "ml/classifier.h"
#include "ml/scaler.h"

namespace rlbench::ml {

struct MlpOptions {
  size_t hidden = 32;
  int epochs = 15;
  size_t batch_size = 32;
  double learning_rate = 2e-3;
  double l2 = 1e-5;
  bool balance_classes = true;
  /// Snapshot the parameters after every epoch and keep the snapshot with
  /// the best validation F1.
  bool select_best_epoch_on_valid = true;
  uint64_t seed = 42;
};

/// \brief Two-layer highway MLP binary classifier.
class Mlp : public Classifier {
 public:
  explicit Mlp(MlpOptions options = {}) : options_(options) {}

  std::string name() const override { return "MLP"; }
  void Fit(const Dataset& train, const Dataset& valid) override;
  double PredictScore(std::span<const float> row) const override;

  /// Score every row of `rows` into `out` (same length). Bit-identical to
  /// calling PredictScore per row; internally transposes blocks of rows
  /// into column-major panels and runs the batched affine kernels
  /// (text/kernels.h), so each weight matrix streams once per block
  /// instead of once per row.
  void PredictScoresBatch(const Dataset& rows, std::span<double> out) const;

  /// Validation F1 of the selected snapshot (for diagnostics).
  double best_valid_f1() const { return best_valid_f1_; }
  int best_epoch() const { return best_epoch_; }

 private:
  struct Params {
    // Dense input layer: hidden x input.
    std::vector<double> w1, b1;
    // Highway transform gate and candidate: hidden x hidden.
    std::vector<double> wt, bt, wh, bh;
    // Output layer: hidden -> 1.
    std::vector<double> w2;
    double b2 = 0.0;
  };

  double Forward(std::span<const float> scaled_row, const Params& params,
                 std::vector<double>* z1, std::vector<double>* pre1,
                 std::vector<double>* pre_t, std::vector<double>* pre_h,
                 std::vector<double>* z2) const;

  MlpOptions options_;
  StandardScaler scaler_;
  size_t input_dim_ = 0;
  Params params_;
  double best_valid_f1_ = 0.0;
  int best_epoch_ = -1;
};

}  // namespace rlbench::ml

#endif  // RLBENCH_SRC_ML_MLP_H_
