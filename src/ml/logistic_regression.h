// L2-regularised logistic regression trained with mini-batch SGD.
// The linear classifier behind Magellan-LR.
#ifndef RLBENCH_SRC_ML_LOGISTIC_REGRESSION_H_
#define RLBENCH_SRC_ML_LOGISTIC_REGRESSION_H_

#include <cstdint>

#include "common/blob.h"
#include "ml/classifier.h"
#include "ml/scaler.h"

namespace rlbench::ml {

struct LogisticRegressionOptions {
  int epochs = 100;
  double learning_rate = 0.1;
  double l2 = 1e-4;
  size_t batch_size = 32;
  /// Weight positive examples by the inverse class frequency so that the
  /// minority (match) class is not drowned by the imbalance ratio.
  bool balance_classes = true;
  uint64_t seed = 42;
};

/// \brief Binary logistic regression.
class LogisticRegression : public Classifier {
 public:
  explicit LogisticRegression(LogisticRegressionOptions options = {})
      : options_(options) {}

  std::string name() const override { return "LogisticRegression"; }
  void Fit(const Dataset& train, const Dataset& valid) override;
  double PredictScore(std::span<const float> row) const override;

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

  /// Snapshot hooks (src/serve/): fitted scaler + weights + bias. A
  /// non-zero `num_features` rejects blobs fitted for a different schema.
  void Save(BlobWriter* writer) const;
  [[nodiscard]] Status Load(BlobReader* reader, size_t num_features = 0);

 private:
  LogisticRegressionOptions options_;
  StandardScaler scaler_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace rlbench::ml

#endif  // RLBENCH_SRC_ML_LOGISTIC_REGRESSION_H_
