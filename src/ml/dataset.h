// Dense feature-matrix dataset used by all classifiers. Rows are candidate
// pairs, columns are similarity / interaction features in [0, 1] (or
// standardised values after scaling).
#ifndef RLBENCH_SRC_ML_DATASET_H_
#define RLBENCH_SRC_ML_DATASET_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/status.h"

namespace rlbench::ml {

/// \brief Row-major dense dataset with binary labels.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(size_t num_features) : num_features_(num_features) {}

  size_t num_features() const { return num_features_; }
  size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }

  /// Append one row. InvalidArgument when `features.size()` differs from
  /// num_features(); use this on rows derived from external input.
  [[nodiscard]] Status Append(const std::vector<float>& features, bool label);

  /// Append one row whose arity is an internal invariant; CHECK-fails on
  /// mismatch. Prefer Append for anything input-derived.
  void Add(const std::vector<float>& features, bool label);

  /// \brief Assemble a dataset by filling index-addressed rows in parallel.
  ///
  /// `fill(i, row)` writes row i's features into the pre-sized span and
  /// returns its label. Because every row is owned by exactly one index,
  /// the result is bit-identical to the serial loop at any thread count
  /// (common/parallel.h contract). This is the batch path the matcher
  /// training-set assembly uses. InvalidArgument when num_features == 0
  /// (reachable from an imported benchmark with a degenerate schema).
  [[nodiscard]] static Result<Dataset> BuildParallel(
      size_t num_features, size_t rows,
      const std::function<bool(size_t, std::span<float>)>& fill);

  std::span<const float> row(size_t i) const {
    return {&values_[DcheckedIndex(i, size()) * num_features_],
            num_features_};
  }
  std::span<float> mutable_row(size_t i) {
    return {&values_[DcheckedIndex(i, size()) * num_features_],
            num_features_};
  }
  bool label(size_t i) const {
    return labels_[DcheckedIndex(i, size())] != 0;
  }
  const std::vector<uint8_t>& labels() const { return labels_; }

  size_t CountPositives() const;

  void Reserve(size_t rows) {
    values_.reserve(rows * num_features_);
    labels_.reserve(rows);
  }

 private:
  size_t num_features_ = 0;
  std::vector<float> values_;
  std::vector<uint8_t> labels_;
};

}  // namespace rlbench::ml

#endif  // RLBENCH_SRC_ML_DATASET_H_
