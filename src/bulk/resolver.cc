#include "bulk/resolver.h"

#include <algorithm>
#include <array>
#include <charconv>
#include <deque>
#include <filesystem>
#include <limits>
#include <memory>
#include <queue>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/strings.h"
#include "data/columnar.h"
#include "data/feature_cache.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "obs/trace.h"
#include "text/kernels.h"
#include "text/tokenizer.h"

namespace rlbench::bulk {

namespace {

/// Records generated per streaming wave: the wave is the unit of bounded
/// memory AND of parallelism (a ParallelFor fills per-position slots, then
/// a serial pass appends them in position order, so the spill sequence is
/// one fixed stream at any thread count).
constexpr size_t kWaveRecords = 8192;
constexpr size_t kWaveGrain = 64;

/// Candidate pairs scored per batch-kernel call (one ParallelFor chunk).
constexpr size_t kScoreGrain = 512;

std::string ShardTag(size_t shard) {
  std::string tag = std::to_string(shard);
  if (tag.size() < 2) tag.insert(tag.begin(), '0');
  return tag;
}

Status ParseBucketKey(std::string_view key, uint64_t* out) {
  const char* begin = key.data();
  const char* end = begin + key.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  if (ec != std::errc() || ptr != end || key.empty()) {
    return Status::InvalidArgument("bulk: malformed bucket key '" +
                                   std::string(key) + "'");
  }
  return Status::OK();
}

/// Smallest band-bucket key present in both arrays; the bucket with that
/// key owns the pair. UINT64_MAX when disjoint (cannot happen for two
/// members of one bucket). Arrays are band-count sized, so O(bands^2) is
/// cheaper than sorting copies.
uint64_t MinSharedKey(const std::vector<uint64_t>& a,
                      const std::vector<uint64_t>& b) {
  uint64_t best = std::numeric_limits<uint64_t>::max();
  for (uint64_t x : a) {
    if (x >= best) continue;
    for (uint64_t y : b) {
      if (x == y) {
        best = x;
        break;
      }
    }
  }
  return best;
}

/// Streams one side of the source through `build` in bounded waves,
/// appending the produced entries to the writer in position order.
/// `build(position, record)` returns the (shard, entry) list the record
/// spills to — one entry for key-range partitioning, one per band for
/// bucket partitioning.
template <typename BuildFn>
void StreamSideToWriter(const datagen::BulkSourceGenerator& source,
                        size_t side, const BuildFn& build, ShardWriter* writer,
                        uint64_t* bytes_streamed) {
  uint64_t total = source.size(side);
  std::vector<std::vector<std::pair<size_t, SpillEntry>>> slots;
  std::vector<uint64_t> bytes;
  for (uint64_t wave = 0; wave < total; wave += kWaveRecords) {
    uint64_t end = std::min<uint64_t>(wave + kWaveRecords, total);
    size_t n = static_cast<size_t>(end - wave);
    slots.assign(n, {});
    bytes.assign(n, 0);
    ParallelFor(0, n, kWaveGrain, [&](size_t i) {
      data::Record record = source.RecordAt(side, wave + i);
      uint64_t b = record.id.size();
      for (const std::string& value : record.values) b += value.size();
      bytes[i] = b;
      slots[i] = build(wave + i, std::move(record));
    });
    for (size_t i = 0; i < n; ++i) {
      *bytes_streamed += bytes[i];
      for (auto& [shard, entry] : slots[i]) {
        writer->Append(shard, std::move(entry));
      }
    }
    RLBENCH_COUNTER_ADD("bulk/records_streamed", n);
  }
}

/// K-way merge over sorted run files: emits every entry in SpillEntryLess
/// order. The order is strict ((side, position) is unique per entry), so
/// the merged sequence is a single well-defined stream. Read or decode
/// failures abort the merge — the runs are the only copy of the data, so
/// this is an infrastructure failure, not a per-shard one.
Status MergeSortedRunFiles(
    const std::vector<std::string>& files,
    const std::function<void(SpillEntry)>& emit) {
  std::vector<ShardReader> readers;
  readers.reserve(files.size());
  for (const std::string& file : files) {
    readers.emplace_back(std::vector<std::string>{file});
  }
  std::vector<SpillEntry> heads(files.size());
  auto greater = [&heads](size_t a, size_t b) {
    return SpillEntryLess(heads[b], heads[a]);
  };
  std::priority_queue<size_t, std::vector<size_t>, decltype(greater)> queue(
      greater);
  for (size_t r = 0; r < readers.size(); ++r) {
    bool done = false;
    RLBENCH_RETURN_NOT_OK(readers[r].Next(&heads[r], &done));
    if (!done) queue.push(r);
  }
  while (!queue.empty()) {
    size_t r = queue.top();
    queue.pop();
    emit(std::move(heads[r]));
    bool done = false;
    RLBENCH_RETURN_NOT_OK(readers[r].Next(&heads[r], &done));
    if (!done) queue.push(r);
  }
  return Status::OK();
}

/// Accumulates the merged key-range stream into per-shard part files.
/// Parts cap at max(1 MiB, budget / (2 * shards)) so re-reading a shard
/// streams through bounded buffers. A part-write failure poisons only the
/// owning shard; the merge keeps feeding the others.
class SnChunkSink {
 public:
  SnChunkSink(std::string dir, std::string stem, size_t num_shards,
              size_t part_cap)
      : dir_(std::move(dir)),
        stem_(std::move(stem)),
        part_cap_(part_cap),
        chunks_(num_shards) {}

  void Add(size_t shard, SpillEntry entry, bool context) {
    Chunk& c = chunks_[shard];
    if (!c.status.ok()) return;
    entry.context = context;
    c.buffer += EncodeSpillEntry(entry);
    c.buffer += '\n';
    if (c.buffer.size() >= part_cap_) Flush(shard);
  }

  void Flush(size_t shard) {
    Chunk& c = chunks_[shard];
    if (c.buffer.empty() || !c.status.ok()) return;
    std::string path = dir_ + "/" + stem_ + "_shard" + std::to_string(shard) +
                       "_part" + std::to_string(c.parts) + ".spill";
    ++c.parts;
    size_t bytes = c.buffer.size();
    Status write = data::FileSource::WriteAtomic(path, c.buffer);
    c.buffer.clear();
    if (!write.ok()) {
      c.status = write;
      RLBENCH_COUNTER_INC("bulk/part_write_failures");
      return;
    }
    part_bytes_ += bytes;
    c.files.push_back(std::move(path));
  }

  void FlushAll() {
    for (size_t shard = 0; shard < chunks_.size(); ++shard) Flush(shard);
  }

  std::vector<std::string>& files(size_t shard) {
    return chunks_[shard].files;
  }
  const Status& status(size_t shard) const { return chunks_[shard].status; }
  uint64_t part_bytes() const { return part_bytes_; }

 private:
  struct Chunk {
    std::string buffer;
    int parts = 0;
    std::vector<std::string> files;
    Status status;
  };

  std::string dir_;
  std::string stem_;
  size_t part_cap_;
  uint64_t part_bytes_ = 0;
  std::vector<Chunk> chunks_;
};

/// Splits the merged key-range stream into `num_shards` contiguous chunks
/// (entry-count balanced), each prefixed by the previous window-1 entries
/// flagged as context. A window pair is generated by the chunk owning its
/// later entry, so every global pair lands in exactly one chunk.
Status BuildSnChunks(const std::vector<std::string>& run_files,
                     uint64_t total_entries, size_t window, size_t num_shards,
                     SnChunkSink* sink) {
  size_t context_len = window > 0 ? window - 1 : 0;
  std::deque<SpillEntry> tail;
  uint64_t g = 0;
  size_t cur = 0;
  auto bound = [&](size_t s) { return total_entries * s / num_shards; };
  Status merged = MergeSortedRunFiles(run_files, [&](SpillEntry entry) {
    while (cur + 1 < num_shards && g >= bound(cur + 1)) {
      ++cur;
      for (const SpillEntry& t : tail) sink->Add(cur, t, /*context=*/true);
    }
    tail.push_back(entry);
    if (tail.size() > context_len) tail.pop_front();
    sink->Add(cur, std::move(entry), /*context=*/false);
    ++g;
  });
  RLBENCH_RETURN_NOT_OK(merged);
  sink->FlushAll();
  return Status::OK();
}

/// Key-range candidates: slide the window over the chunk's merged order;
/// a pair is generated at its later entry, which must be owned (context
/// prefixes provide neighbours only). Each record occurs once in the
/// order, so no pair can arise twice.
void SnCandidates(const std::vector<SpillEntry>& entries, size_t window,
                  std::vector<std::pair<size_t, size_t>>* pairs) {
  for (size_t j = 0; j < entries.size(); ++j) {
    if (entries[j].context) continue;
    size_t lo = j >= window ? j - window + 1 : 0;
    for (size_t i = lo; i < j; ++i) {
      if (entries[i].side == entries[j].side) continue;
      size_t d1 = entries[i].side == 0 ? i : j;
      size_t d2 = entries[i].side == 0 ? j : i;
      pairs->emplace_back(d1, d2);
    }
  }
}

/// Band-bucket candidates. Every entry of a bucket lives in this shard, so
/// the decisions are purely local: skip the bucket when its d2 membership
/// (with multiplicity, like the in-memory index) exceeds the stop-bucket
/// cap, and emit a pair only from the bucket of its minimal shared key —
/// the rule that makes the global pair set independent of sharding. With
/// the cap effectively off, the pair set equals "records sharing at least
/// one band key", the in-memory candidate set.
Status MinHashCandidates(const std::vector<SpillEntry>& entries,
                         size_t max_bucket_size,
                         std::vector<std::pair<size_t, size_t>>* pairs) {
  std::unordered_map<uint64_t, std::vector<size_t>> buckets;
  for (size_t i = 0; i < entries.size(); ++i) {
    uint64_t key = 0;
    RLBENCH_RETURN_NOT_OK(ParseBucketKey(entries[i].key, &key));
    buckets[key].push_back(i);
  }
  std::unordered_set<uint64_t> seen;
  for (const auto& [key, members] : buckets) {
    size_t d2_count = 0;
    for (size_t idx : members) {
      if (entries[idx].side == 1) ++d2_count;
    }
    if (d2_count > max_bucket_size) {
      RLBENCH_COUNTER_INC("bulk/stop_buckets");
      continue;
    }
    for (size_t i : members) {
      if (entries[i].side != 0) continue;
      for (size_t j : members) {
        if (entries[j].side != 1) continue;
        if (MinSharedKey(entries[i].band_keys, entries[j].band_keys) != key) {
          continue;
        }
        uint64_t pair_key =
            (entries[i].position << 32) | entries[j].position;
        if (seen.insert(pair_key).second) pairs->emplace_back(i, j);
      }
    }
  }
  return Status::OK();
}

/// Scores candidate pairs: build per-side mini tables of the involved
/// records (rows in ascending position order), intern their tokens in the
/// columnar store, and run the batched Jaccard kernel over disjoint score
/// slots. Rank interning is a monotone bijection on the token hashes, so
/// each score is bit-identical no matter which other records share the
/// shard — the keystone of the cross-shard byte-identity contract.
void ScorePairs(const datagen::BulkSourceGenerator& source,
                const BulkOptions& options,
                const std::vector<SpillEntry>& entries,
                const std::vector<std::pair<size_t, size_t>>& pairs,
                std::vector<MatchedPair>* matches, uint64_t* matched) {
  std::array<std::vector<uint64_t>, 2> positions;
  std::array<std::unordered_map<uint64_t, size_t>, 2> entry_of;
  for (const auto& [a, b] : pairs) {
    positions[0].push_back(entries[a].position);
    positions[1].push_back(entries[b].position);
  }
  for (size_t i = 0; i < entries.size(); ++i) {
    entry_of[entries[i].side].emplace(entries[i].position, i);
  }
  std::array<std::unordered_map<uint64_t, size_t>, 2> row_of;
  std::array<data::Table, 2> tables = {
      data::Table(source.spec().d1_name, source.schema()),
      data::Table(source.spec().d2_name, source.schema())};
  for (size_t side = 0; side < 2; ++side) {
    std::vector<uint64_t>& pos = positions[side];
    std::sort(pos.begin(), pos.end());
    pos.erase(std::unique(pos.begin(), pos.end()), pos.end());
    tables[side].Reserve(pos.size());
    const std::string& name =
        side == 0 ? source.spec().d1_name : source.spec().d2_name;
    for (uint64_t p : pos) {
      row_of[side].emplace(p, tables[side].size());
      data::Record record;
      record.id = name + std::to_string(p);
      record.values = entries[entry_of[side].at(p)].values;
      tables[side].Add(std::move(record));
    }
  }

  data::RecordFeatureCache left_cache(&tables[0]);
  data::RecordFeatureCache right_cache(&tables[1]);
  data::ColumnarStore store(left_cache, right_cache);
  left_cache.Freeze();
  right_cache.Freeze();

  size_t n = pairs.size();
  std::vector<text::kernels::U32SetPair> set_pairs(n);
  std::vector<double> scores(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    auto a = store.TokenIdsAll(data::ColumnarStore::kLeft,
                               row_of[0].at(entries[pairs[i].first].position));
    auto b = store.TokenIdsAll(
        data::ColumnarStore::kRight,
        row_of[1].at(entries[pairs[i].second].position));
    set_pairs[i] = {a.data(), b.data(), static_cast<uint32_t>(a.size()),
                    static_cast<uint32_t>(b.size())};
  }
  size_t batches = (n + kScoreGrain - 1) / kScoreGrain;
  ParallelFor(0, batches, 1, [&](size_t batch) {
    size_t first = batch * kScoreGrain;
    size_t last = std::min(n, first + kScoreGrain);
    text::kernels::JaccardSortedU32Batch(set_pairs.data() + first,
                                         last - first, scores.data() + first);
  });

  for (size_t i = 0; i < n; ++i) {
    if (scores[i] < options.threshold) continue;
    matches->push_back({entries[pairs[i].first].position,
                        entries[pairs[i].second].position, scores[i]});
    ++*matched;
  }
}

/// Runs one shard end to end (read -> candidates -> score), recording the
/// phases in the shard's run manifest when manifests are enabled. Any
/// failure stops the shard, marks the failing phase, and leaves the other
/// shards untouched.
void ProcessShard(const datagen::BulkSourceGenerator& source,
                  const BulkOptions& options, size_t shard, size_t num_shards,
                  const std::vector<std::string>& files,
                  const Status& pre_status, ShardOutcome* outcome,
                  std::vector<MatchedPair>* matches) {
  outcome->shard = shard;
  std::unique_ptr<obs::RunManifest> manifest;
  if (!options.manifest_dir.empty()) {
    manifest = std::make_unique<obs::RunManifest>(options.manifest_stem +
                                                  "_shard" + ShardTag(shard));
    manifest->set_threads(ParallelThreadCount());
    manifest->set_hardware_concurrency(std::thread::hardware_concurrency());
    manifest->set_seed(
        SplitSeed(source.spec().seed, static_cast<uint64_t>(shard)));
    manifest->AddDataset(source.spec().id);
    manifest->AddConfig("mode", std::string(BulkModeName(options.mode)));
    manifest->AddConfig("shard", static_cast<int64_t>(shard));
    manifest->AddConfig("shards", static_cast<int64_t>(num_shards));
  }

  Status status = pre_status;
  std::vector<SpillEntry> entries;
  if (manifest) manifest->BeginPhase("read");
  if (status.ok()) {
    ShardReader reader(files);
    while (true) {
      SpillEntry entry;
      bool done = false;
      Status next = reader.Next(&entry, &done);
      if (!next.ok()) {
        status = next;
        break;
      }
      if (done) break;
      entries.push_back(std::move(entry));
    }
  }
  if (manifest) {
    if (!status.ok()) manifest->FailPhase(status.message());
    manifest->EndPhase();
  }
  outcome->entries = entries.size();

  std::vector<std::pair<size_t, size_t>> pairs;
  if (status.ok()) {
    if (manifest) manifest->BeginPhase("candidates");
    if (options.mode == BulkMode::kSortedNeighborhood) {
      SnCandidates(entries, std::max<size_t>(1, options.sn.window), &pairs);
    } else {
      status = MinHashCandidates(entries, options.minhash.max_bucket_size,
                                 &pairs);
    }
    if (manifest) {
      if (!status.ok()) manifest->FailPhase(status.message());
      manifest->EndPhase();
    }
  }
  outcome->candidates = pairs.size();
  RLBENCH_COUNTER_ADD("bulk/candidates", pairs.size());

  if (status.ok()) {
    if (manifest) manifest->BeginPhase("score");
    if (!pairs.empty()) {
      ScorePairs(source, options, entries, pairs, matches,
                 &outcome->matched);
    }
    if (manifest) manifest->EndPhase();
  }
  RLBENCH_COUNTER_ADD("bulk/matched", outcome->matched);
  outcome->status = status;

  if (manifest) {
    manifest->set_peak_rss_bytes(obs::PeakRssBytes());
    manifest->Finalize();
    std::string path = options.manifest_dir + "/" + options.manifest_stem +
                       ".shard_" + ShardTag(shard) + ".manifest.json";
    Status write = data::FileSource::WriteAtomic(path, manifest->ToJson());
    if (write.ok()) {
      outcome->manifest_path = std::move(path);
    } else if (outcome->status.ok()) {
      outcome->status = write;
    }
  }
}

}  // namespace

const char* BulkModeName(BulkMode mode) {
  switch (mode) {
    case BulkMode::kSortedNeighborhood:
      return "sn";
    case BulkMode::kMinHash:
      return "minhash";
  }
  return "unknown";
}

std::string SortedNeighborhoodKey(const data::Record& record,
                                  size_t key_tokens) {
  auto tokens = text::Tokenize(record.ConcatenatedValues());
  std::sort(tokens.begin(), tokens.end());
  tokens.resize(std::min(tokens.size(), key_tokens));
  return Join(tokens, " ");
}

std::vector<uint64_t> BandKeysOf(const data::Record& record,
                                 const block::MinHashOptions& options) {
  size_t bands = std::max<size_t>(1, options.bands);
  size_t rows = std::max<size_t>(1, options.num_hashes / bands);
  auto signature = block::MinHashSignature(
      text::TokenSet::FromText(record.ConcatenatedValues()), bands * rows,
      options.seed);
  std::vector<uint64_t> keys(bands);
  for (size_t b = 0; b < bands; ++b) {
    uint64_t key = 0xCBF29CE484222325ULL ^ (b + 1);
    for (size_t r = 0; r < rows; ++r) {
      key = SplitMix64(key ^ signature[b * rows + r]);
    }
    keys[b] = key;
  }
  return keys;
}

std::string SerializeMatches(const std::vector<MatchedPair>& matches) {
  std::string out = "left,right,score\n";
  for (const MatchedPair& match : matches) {
    out += std::to_string(match.left);
    out += ',';
    out += std::to_string(match.right);
    out += ',';
    out += FormatDouble(match.score, 17);
    out += '\n';
  }
  return out;
}

Result<BulkResult> BulkResolve(const datagen::BulkSourceGenerator& source,
                               const BulkOptions& options) {
  RLBENCH_TRACE_SPAN("bulk/resolve");
  if (options.spill_dir.empty()) {
    return Status::InvalidArgument("bulk: spill_dir is required");
  }
  constexpr uint64_t kMaxSide = std::numeric_limits<uint32_t>::max();
  if (source.size(0) > kMaxSide || source.size(1) > kMaxSide) {
    return Status::InvalidArgument("bulk: side exceeds uint32 positions");
  }
  std::error_code ec;
  std::filesystem::create_directories(options.spill_dir, ec);
  if (ec) {
    return Status::IOError("bulk: cannot create spill dir '" +
                           options.spill_dir + "': " + ec.message());
  }
  if (!options.manifest_dir.empty()) {
    std::filesystem::create_directories(options.manifest_dir, ec);
    if (ec) {
      return Status::IOError("bulk: cannot create manifest dir '" +
                             options.manifest_dir + "': " + ec.message());
    }
  }

  size_t num_shards = std::max<size_t>(1, options.shards);
  BulkResult result;
  result.records_streamed = source.size(0) + source.size(1);

  std::vector<std::vector<std::string>> shard_files(num_shards);
  std::vector<Status> pre_status(num_shards);

  if (options.mode == BulkMode::kSortedNeighborhood) {
    // Phase 1: spill sorted runs of the one global key order.
    size_t key_tokens = options.sn.key_tokens;
    ShardWriter writer(options.spill_dir, "bulk_sn", 1,
                       options.memory_budget_bytes, /*sorted_runs=*/true);
    for (size_t side = 0; side < 2; ++side) {
      StreamSideToWriter(
          source, side,
          [&](uint64_t position, data::Record record) {
            SpillEntry entry;
            entry.key = SortedNeighborhoodKey(record, key_tokens);
            entry.side = static_cast<uint8_t>(side);
            entry.position = position;
            entry.values = std::move(record.values);
            std::vector<std::pair<size_t, SpillEntry>> out;
            out.emplace_back(0, std::move(entry));
            return out;
          },
          &writer, &result.bytes_streamed);
    }
    writer.Finish();
    result.spilled_bytes += writer.spilled_bytes();
    // The runs are the only copy of the stream; losing one loses data for
    // every downstream shard, so this failure is fatal to the run.
    RLBENCH_RETURN_NOT_OK(writer.shard_status(0));

    // Phase 2: merge the runs and slice the order into context-prefixed
    // chunk part files, one chunk per shard.
    size_t part_cap = std::max<size_t>(
        1u << 20, options.memory_budget_bytes / (2 * num_shards));
    SnChunkSink sink(options.spill_dir, "bulk_sn", num_shards, part_cap);
    RLBENCH_RETURN_NOT_OK(BuildSnChunks(
        writer.shard_files(0), writer.total_entries(),
        std::max<size_t>(1, options.sn.window), num_shards, &sink));
    for (size_t s = 0; s < num_shards; ++s) {
      shard_files[s] = std::move(sink.files(s));
      pre_status[s] = sink.status(s);
    }
    result.spilled_bytes += sink.part_bytes();
    // The merged chunks supersede the runs; drop them before the scoring
    // phase so peak disk stays near one copy of the spill.
    for (const std::string& run : writer.shard_files(0)) {
      std::filesystem::remove(run, ec);
    }
  } else {
    // Band-bucket mode partitions by bucket key, so a bucket (and every
    // decision about it) lives wholly inside one shard.
    ShardWriter writer(options.spill_dir, "bulk_mh", num_shards,
                       options.memory_budget_bytes, /*sorted_runs=*/false);
    for (size_t side = 0; side < 2; ++side) {
      StreamSideToWriter(
          source, side,
          [&](uint64_t position, data::Record record) {
            std::vector<uint64_t> keys = BandKeysOf(record, options.minhash);
            std::vector<std::pair<size_t, SpillEntry>> out;
            out.reserve(keys.size());
            for (uint64_t key : keys) {
              SpillEntry entry;
              entry.key = std::to_string(key);
              entry.side = static_cast<uint8_t>(side);
              entry.position = position;
              entry.band_keys = keys;
              entry.values = record.values;
              out.emplace_back(
                  static_cast<size_t>(SplitMix64(key) % num_shards),
                  std::move(entry));
            }
            return out;
          },
          &writer, &result.bytes_streamed);
    }
    writer.Finish();
    result.spilled_bytes += writer.spilled_bytes();
    for (size_t s = 0; s < num_shards; ++s) {
      shard_files[s] = writer.shard_files(s);
      pre_status[s] = writer.shard_status(s);
    }
  }

  // Phase 3: resolve each shard independently; failures degrade per shard.
  for (size_t s = 0; s < num_shards; ++s) {
    ShardOutcome outcome;
    ProcessShard(source, options, s, num_shards, shard_files[s],
                 pre_status[s], &outcome, &result.matches);
    result.candidate_pairs += outcome.candidates;
    if (!outcome.status.ok()) {
      ++result.shards_failed;
      RLBENCH_COUNTER_INC("bulk/shards_failed");
    }
    result.shards.push_back(std::move(outcome));
    for (const std::string& file : shard_files[s]) {
      std::filesystem::remove(file, ec);
    }
  }
  if (result.shards_failed == num_shards) {
    for (const ShardOutcome& outcome : result.shards) {
      if (!outcome.status.ok()) {
        return Status::Internal("bulk: all shards failed; first: " +
                                outcome.status.message());
      }
    }
  }

  std::sort(result.matches.begin(), result.matches.end(),
            [](const MatchedPair& a, const MatchedPair& b) {
              if (a.left != b.left) return a.left < b.left;
              return a.right < b.right;
            });
  if (!options.output_path.empty()) {
    RLBENCH_RETURN_NOT_OK(data::FileSource::WriteAtomic(
        options.output_path, SerializeMatches(result.matches)));
    result.output_path = options.output_path;
  }
  return result;
}

}  // namespace rlbench::bulk
