// Spill-to-disk shard IO for the bulk pipeline: a line-oriented entry
// codec, a budget-bounded ShardWriter that flushes sorted (or raw) runs
// per partition, and a ShardReader that streams a partition's runs back
// entry by entry.
//
// All writes go through data::FileSource::WriteAtomic and all reads
// through data::LineReader, so atomicity, bounded retry and the
// fault-injection failpoints apply without any code here knowing about
// them. A flush or read failure poisons only its own shard: the writer
// records a per-shard Status and keeps accepting entries for healthy
// shards, which is what lets the resolver degrade per shard instead of
// dying.
#ifndef RLBENCH_SRC_BULK_SHARD_IO_H_
#define RLBENCH_SRC_BULK_SHARD_IO_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "data/file_source.h"

namespace rlbench::bulk {

/// One spilled record occurrence: the blocking key it was partitioned
/// under, which source it came from, its output position there, and the
/// attribute values needed to score it later. MinHash entries also carry
/// the record's full band-key array (for the cross-shard min-band
/// deduplication rule); sorted-neighborhood chunk entries use `context`
/// to mark window-overlap prefixes that provide neighbours but must not
/// initiate pairs.
struct SpillEntry {
  std::string key;
  uint8_t side = 0;  // 0 = d1, 1 = d2
  bool context = false;
  uint64_t position = 0;
  std::vector<uint64_t> band_keys;
  std::vector<std::string> values;
};

/// Serialise one entry as a single line (no trailing newline). Tabs,
/// newlines, carriage returns and backslashes inside key/values are
/// backslash-escaped, so the line never contains a raw terminator.
std::string EncodeSpillEntry(const SpillEntry& entry);

/// Parse one encoded line. Damaged input (injected corruption included)
/// surfaces as InvalidArgument, never as undefined behaviour.
[[nodiscard]] Status DecodeSpillEntry(std::string_view line,
                                      SpillEntry* entry);

/// Total order used for sorted runs and the merge: (key, side, position).
/// Strict and total — unlike the in-memory sorted-neighborhood sort, ties
/// cannot be broken arbitrarily, which is what makes the sharded pair set
/// independent of shard count and thread count.
bool SpillEntryLess(const SpillEntry& a, const SpillEntry& b);

/// \brief Buffers entries per shard and spills runs once the global
/// budget is exceeded.
///
/// Run files are named "<dir>/<stem>_shard<S>_run<K>.spill". When
/// `sorted_runs` is set every run is sorted by SpillEntryLess before it
/// lands (the raw material for the external merge); otherwise entries
/// keep arrival order. Flush failures poison the owning shard only.
class ShardWriter {
 public:
  ShardWriter(std::string dir, std::string stem, size_t num_shards,
              size_t budget_bytes, bool sorted_runs);

  /// Buffer one entry; flushes the largest shard buffers when the global
  /// budget is exceeded. Entries for poisoned shards are dropped.
  void Append(size_t shard, SpillEntry entry);

  /// Flush every remaining buffer. Idempotent.
  void Finish();

  size_t num_shards() const { return shards_.size(); }
  const std::vector<std::string>& shard_files(size_t shard) const;
  /// OK, or the first flush failure that poisoned the shard.
  const Status& shard_status(size_t shard) const;
  uint64_t shard_entries(size_t shard) const;
  uint64_t total_entries() const;
  uint64_t spilled_bytes() const { return spilled_bytes_; }

 private:
  struct Shard {
    std::vector<SpillEntry> buffered;
    size_t buffered_bytes = 0;
    uint64_t entries = 0;
    int runs = 0;
    std::vector<std::string> files;
    Status status;
  };

  void FlushShard(size_t shard);

  std::string dir_;
  std::string stem_;
  size_t budget_bytes_;
  bool sorted_runs_;
  size_t buffered_bytes_ = 0;
  uint64_t spilled_bytes_ = 0;
  std::vector<Shard> shards_;
};

/// \brief Streams the entries of one shard back from its run files, in
/// file order, through data::LineReader.
class ShardReader {
 public:
  explicit ShardReader(
      std::vector<std::string> files,
      size_t buffer_bytes = data::LineReader::kDefaultBufferBytes);

  /// Next entry, or *done = true after the last file. IO and decode
  /// failures surface as Status errors.
  [[nodiscard]] Status Next(SpillEntry* entry, bool* done);

 private:
  std::vector<std::string> files_;
  size_t buffer_bytes_;
  size_t file_index_ = 0;
  std::optional<data::LineReader> reader_;
  std::string line_;
};

}  // namespace rlbench::bulk

#endif  // RLBENCH_SRC_BULK_SHARD_IO_H_
