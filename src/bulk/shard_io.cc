#include "bulk/shard_io.h"

#include <algorithm>

#include "common/check.h"
#include "obs/metrics.h"

namespace rlbench::bulk {

namespace {

// Fixed per-entry overhead charged against the memory budget on top of the
// payload bytes (struct, vector headers, flush bookkeeping).
constexpr size_t kEntryOverheadBytes = 64;

void AppendEscaped(std::string* out, std::string_view field) {
  for (char c : field) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        out->push_back(c);
    }
  }
}

Status Unescape(std::string_view field, std::string* out) {
  out->clear();
  out->reserve(field.size());
  for (size_t i = 0; i < field.size(); ++i) {
    char c = field[i];
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (++i >= field.size()) {
      return Status::InvalidArgument("spill entry: dangling escape");
    }
    switch (field[i]) {
      case '\\':
        out->push_back('\\');
        break;
      case 't':
        out->push_back('\t');
        break;
      case 'n':
        out->push_back('\n');
        break;
      case 'r':
        out->push_back('\r');
        break;
      default:
        return Status::InvalidArgument("spill entry: unknown escape");
    }
  }
  return Status::OK();
}

Status ParseU64(std::string_view field, uint64_t* out) {
  if (field.empty() || field.size() > 20) {
    return Status::InvalidArgument("spill entry: bad integer field");
  }
  uint64_t value = 0;
  for (char c : field) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("spill entry: bad integer field");
    }
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return Status::InvalidArgument("spill entry: integer overflow");
    }
    value = value * 10 + digit;
  }
  *out = value;
  return Status::OK();
}

size_t EntryBudgetBytes(const SpillEntry& entry) {
  size_t bytes = kEntryOverheadBytes + entry.key.size() +
                 entry.band_keys.size() * sizeof(uint64_t);
  for (const std::string& value : entry.values) bytes += value.size() + 16;
  return bytes;
}

}  // namespace

std::string EncodeSpillEntry(const SpillEntry& entry) {
  std::string out;
  AppendEscaped(&out, entry.key);
  out += '\t';
  out += entry.side == 0 ? '0' : '1';
  out += '\t';
  out += entry.context ? '1' : '0';
  out += '\t';
  out += std::to_string(entry.position);
  out += '\t';
  out += std::to_string(entry.band_keys.size());
  for (uint64_t band : entry.band_keys) {
    out += '\t';
    out += std::to_string(band);
  }
  out += '\t';
  out += std::to_string(entry.values.size());
  for (const std::string& value : entry.values) {
    out += '\t';
    AppendEscaped(&out, value);
  }
  return out;
}

Status DecodeSpillEntry(std::string_view line, SpillEntry* entry) {
  // Escapes never emit a raw tab, so a plain split is safe.
  std::vector<std::string_view> fields;
  size_t start = 0;
  while (true) {
    size_t tab = line.find('\t', start);
    if (tab == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
  if (fields.size() < 5) {
    return Status::InvalidArgument("spill entry: too few fields");
  }
  RLBENCH_RETURN_NOT_OK(Unescape(fields[0], &entry->key));
  if (fields[1] != "0" && fields[1] != "1") {
    return Status::InvalidArgument("spill entry: bad side");
  }
  entry->side = fields[1] == "0" ? 0 : 1;
  if (fields[2] != "0" && fields[2] != "1") {
    return Status::InvalidArgument("spill entry: bad context flag");
  }
  entry->context = fields[2] == "1";
  RLBENCH_RETURN_NOT_OK(ParseU64(fields[3], &entry->position));
  uint64_t band_count = 0;
  RLBENCH_RETURN_NOT_OK(ParseU64(fields[4], &band_count));
  size_t next = 5;
  if (band_count > 1024 || fields.size() < next + band_count + 1) {
    return Status::InvalidArgument("spill entry: bad band count");
  }
  entry->band_keys.clear();
  entry->band_keys.reserve(static_cast<size_t>(band_count));
  for (uint64_t b = 0; b < band_count; ++b) {
    uint64_t band = 0;
    RLBENCH_RETURN_NOT_OK(ParseU64(fields[next++], &band));
    entry->band_keys.push_back(band);
  }
  uint64_t value_count = 0;
  RLBENCH_RETURN_NOT_OK(ParseU64(fields[next++], &value_count));
  if (value_count > 4096 || fields.size() != next + value_count) {
    return Status::InvalidArgument("spill entry: bad value count");
  }
  entry->values.clear();
  entry->values.reserve(static_cast<size_t>(value_count));
  for (uint64_t v = 0; v < value_count; ++v) {
    std::string value;
    RLBENCH_RETURN_NOT_OK(Unescape(fields[next++], &value));
    entry->values.push_back(std::move(value));
  }
  return Status::OK();
}

bool SpillEntryLess(const SpillEntry& a, const SpillEntry& b) {
  if (a.key != b.key) return a.key < b.key;
  if (a.side != b.side) return a.side < b.side;
  return a.position < b.position;
}

ShardWriter::ShardWriter(std::string dir, std::string stem,
                         size_t num_shards, size_t budget_bytes,
                         bool sorted_runs)
    : dir_(std::move(dir)),
      stem_(std::move(stem)),
      budget_bytes_(std::max<size_t>(budget_bytes, 1u << 16)),
      sorted_runs_(sorted_runs),
      shards_(num_shards) {
  RLBENCH_CHECK_GT(num_shards, 0u);
}

void ShardWriter::Append(size_t shard, SpillEntry entry) {
  RLBENCH_DCHECK_INDEX(shard, shards_.size());
  Shard& s = shards_[shard];
  if (!s.status.ok()) return;  // poisoned: drop, the shard is already lost
  size_t bytes = EntryBudgetBytes(entry);
  s.buffered.push_back(std::move(entry));
  s.buffered_bytes += bytes;
  buffered_bytes_ += bytes;
  ++s.entries;
  // Flush the fattest buffers until the budget holds again. Decisions
  // depend only on the append sequence, so any run shape is reproducible.
  while (buffered_bytes_ > budget_bytes_) {
    size_t fattest = 0;
    for (size_t i = 1; i < shards_.size(); ++i) {
      if (shards_[i].buffered_bytes > shards_[fattest].buffered_bytes) {
        fattest = i;
      }
    }
    if (shards_[fattest].buffered.empty()) break;
    FlushShard(fattest);
  }
}

void ShardWriter::FlushShard(size_t shard) {
  Shard& s = shards_[shard];
  if (s.buffered.empty()) return;
  if (sorted_runs_) {
    std::sort(s.buffered.begin(), s.buffered.end(), SpillEntryLess);
  }
  std::string payload;
  for (const SpillEntry& entry : s.buffered) {
    payload += EncodeSpillEntry(entry);
    payload += '\n';
  }
  std::string path = dir_ + "/" + stem_ + "_shard" + std::to_string(shard) +
                     "_run" + std::to_string(s.runs) + ".spill";
  ++s.runs;
  buffered_bytes_ -= s.buffered_bytes;
  s.buffered_bytes = 0;
  s.buffered.clear();
  Status write = data::FileSource::WriteAtomic(path, payload);
  if (!write.ok()) {
    s.status = write;
    RLBENCH_COUNTER_INC("bulk/shard_flush_failures");
    return;
  }
  spilled_bytes_ += payload.size();
  s.files.push_back(std::move(path));
  RLBENCH_COUNTER_INC("bulk/shard_flushes");
}

void ShardWriter::Finish() {
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    FlushShard(shard);
  }
}

const std::vector<std::string>& ShardWriter::shard_files(size_t shard) const {
  RLBENCH_DCHECK_INDEX(shard, shards_.size());
  return shards_[shard].files;
}

const Status& ShardWriter::shard_status(size_t shard) const {
  RLBENCH_DCHECK_INDEX(shard, shards_.size());
  return shards_[shard].status;
}

uint64_t ShardWriter::shard_entries(size_t shard) const {
  RLBENCH_DCHECK_INDEX(shard, shards_.size());
  return shards_[shard].entries;
}

uint64_t ShardWriter::total_entries() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) total += shard.entries;
  return total;
}

ShardReader::ShardReader(std::vector<std::string> files, size_t buffer_bytes)
    : files_(std::move(files)), buffer_bytes_(buffer_bytes) {}

Status ShardReader::Next(SpillEntry* entry, bool* done) {
  *done = false;
  while (true) {
    if (!reader_.has_value()) {
      if (file_index_ >= files_.size()) {
        *done = true;
        return Status::OK();
      }
      auto opened = data::LineReader::Open(files_[file_index_], buffer_bytes_);
      RLBENCH_RETURN_NOT_OK(opened.status());
      reader_.emplace(std::move(opened).value());
    }
    bool file_done = false;
    RLBENCH_RETURN_NOT_OK(reader_->Next(&line_, &file_done));
    if (file_done) {
      reader_.reset();
      ++file_index_;
      continue;
    }
    if (line_.empty()) continue;  // tolerate stray blank lines
    return DecodeSpillEntry(line_, entry);
  }
}

}  // namespace rlbench::bulk
