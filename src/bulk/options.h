// Knobs for the out-of-core bulk resolution pipeline (ISSUE 8 tentpole).
#ifndef RLBENCH_SRC_BULK_OPTIONS_H_
#define RLBENCH_SRC_BULK_OPTIONS_H_

#include <cstddef>
#include <string>

#include "block/minhash_blocking.h"
#include "block/sorted_neighborhood.h"

namespace rlbench::bulk {

/// Which blocking strategy partitions the streamed records into shards.
enum class BulkMode {
  kSortedNeighborhood,  // external sort by key, windows over key ranges
  kMinHash,             // band buckets hash-partitioned across shards
};

const char* BulkModeName(BulkMode mode);

struct BulkOptions {
  BulkMode mode = BulkMode::kSortedNeighborhood;

  /// Number of spill partitions. The matched output is byte-identical for
  /// any shard count; shards trade peak memory against per-shard overhead.
  size_t shards = 4;

  /// Soft cap on buffered spill data before runs flush to disk. The
  /// streaming phases never hold more than roughly this many bytes of
  /// un-flushed entries.
  size_t memory_budget_bytes = 64u << 20;

  /// Jaccard threshold (over schema-agnostic token sets) at or above which
  /// a candidate pair counts as matched.
  double threshold = 0.5;

  block::SortedNeighborhoodOptions sn;
  block::MinHashOptions minhash;

  /// Directory for spill partitions (created if missing). Required.
  std::string spill_dir;

  /// Directory for per-shard run manifests; empty disables them.
  std::string manifest_dir;

  /// Stem of the per-shard manifest names:
  /// "<stem>.shard_<NN>.manifest.json".
  std::string manifest_stem = "macro_bulk";

  /// Path for the matched-pair CSV (written atomically); empty skips the
  /// file and leaves the result only in BulkResult::matches.
  std::string output_path;
};

}  // namespace rlbench::bulk

#endif  // RLBENCH_SRC_BULK_OPTIONS_H_
