// Out-of-core bulk resolution: stream a generated source pair of any size
// through sharded spill-to-disk blocking, score each shard's candidates
// with the columnar batch kernels, and merge the per-shard matches into
// one deterministic output.
//
// Determinism contract (tested in tests/bulk/resolver_invariance_test.cc):
// the matched pair set AND every score are byte-identical for any thread
// count, any shard count, and with the obs/fault gates armed or not.
// The pillars:
//
//   * Records come from BulkSourceGenerator, a pure function of
//     (spec, side, position) — streaming order cannot change a byte.
//   * Sorted-neighborhood entries are merged under the strict total order
//     SpillEntryLess (key, side, position); shard boundaries slice that
//     one global order into contiguous chunks with a (window-1)-entry
//     context prefix, and a window pair belongs to the chunk owning its
//     later entry — so the pair set is shard-count-invariant.
//   * MinHash buckets live wholly inside one shard (partitioned by bucket
//     key), and a pair is emitted only by the bucket of its lowest
//     colliding band (the min-band rule), so no pair can be emitted by
//     two shards. The stop-bucket cap applies to that canonical bucket.
//   * Scores are Jaccard over rank-interned token-id spans; interning is
//     a monotone bijection per shard, so the value is bit-identical to
//     the global TokenSet computation no matter which records share a
//     shard. Batched scoring writes disjoint slots under ParallelFor.
//
// Failure model: a shard whose spill files cannot be written, read, or
// decoded is recorded as failed (its manifest phase carries the error)
// and the remaining shards complete; only infrastructure failures (spill
// dir, the sorted merge inputs, the final output write) fail the run.
#ifndef RLBENCH_SRC_BULK_RESOLVER_H_
#define RLBENCH_SRC_BULK_RESOLVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bulk/options.h"
#include "bulk/shard_io.h"
#include "common/status.h"
#include "data/record.h"
#include "datagen/bulk_source.h"

namespace rlbench::bulk {

/// One matched pair: output positions into d1/d2 plus the Jaccard score.
struct MatchedPair {
  uint64_t left = 0;
  uint64_t right = 0;
  double score = 0.0;
};

/// Per-shard accounting, in shard order.
struct ShardOutcome {
  size_t shard = 0;
  Status status;
  uint64_t entries = 0;
  uint64_t candidates = 0;
  uint64_t matched = 0;
  std::string manifest_path;  // empty when manifests are disabled
};

struct BulkResult {
  uint64_t records_streamed = 0;
  /// Raw attribute-value bytes streamed: the floor of what a materialized
  /// run would hold resident (actual Tables cost several times more).
  uint64_t bytes_streamed = 0;
  uint64_t spilled_bytes = 0;
  uint64_t candidate_pairs = 0;
  size_t shards_failed = 0;
  std::vector<ShardOutcome> shards;
  /// Matched pairs sorted by (left, right); also serialised to
  /// options.output_path when set.
  std::vector<MatchedPair> matches;
  std::string output_path;
};

/// Run the full pipeline. Errors only on infrastructure failures; shard
/// failures degrade into BulkResult::shards_failed.
[[nodiscard]] Result<BulkResult> BulkResolve(
    const datagen::BulkSourceGenerator& source, const BulkOptions& options);

/// The sorted-neighborhood blocking key of one record: its `key_tokens`
/// lexicographically smallest tokens joined by spaces — exactly the
/// in-memory implementation's key, exposed for the edge-case tests.
std::string SortedNeighborhoodKey(const data::Record& record,
                                  size_t key_tokens);

/// The record's MinHash band bucket keys (band-salted fold of its
/// signature), matching the in-memory implementation bit for bit.
std::vector<uint64_t> BandKeysOf(const data::Record& record,
                                 const block::MinHashOptions& options);

/// Serialise matches as the output CSV ("left,right,score\n" rows after a
/// header; scores at full precision). Exposed for byte-identity tests.
std::string SerializeMatches(const std::vector<MatchedPair>& matches);

}  // namespace rlbench::bulk

#endif  // RLBENCH_SRC_BULK_RESOLVER_H_
